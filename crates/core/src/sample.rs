//! SMARTS-style sampled simulation: detailed measurement windows over a
//! functional-warming fast-forward (Wunderlich, Wenisch, Falsafi & Hoe,
//! ISCA 2003 — applied here to the paper's trace-driven methodology).
//!
//! A captured trace is divided into consecutive *sampling units* of
//! [`SamplingConfig::interval_ops`] instructions. Within each unit the
//! simulator:
//!
//! 1. **fast-forwards** through [`Simulator::warm_records`]: ops retire at
//!    near-emulator speed while I-cache tags and pre-decode, D-cache
//!    tags, write-cache lines and stream-buffer allocation keep evolving,
//!    so the long-history state a window depends on is warm;
//! 2. runs a **detailed warm-up** of [`SamplingConfig::warmup_ops`]
//!    instructions to re-fill the short-history state warming does not
//!    touch (scoreboard, ROB, FPU queues, in-flight misses, BIU busses);
//! 3. **measures** the final [`SamplingConfig::window_ops`] instructions
//!    as a delta of `(cycle, instructions)` around the window.
//!
//! Each window yields one per-unit CPI observation; the estimate is their
//! mean with a 95% confidence interval from the sample standard
//! deviation. Because the units partition the trace (systematic
//! sampling — the stratified design of SMARTS §3), phase behaviour is
//! represented in proportion to its length.
//!
//! Traces no longer than one sampling unit run fully detailed and report
//! the exact CPI with a zero-width interval.

use aurora_isa::{PackedOp, PackedTrace};

use crate::config::{MachineConfig, SamplingConfig};
use crate::sim::{Simulator, WarmDigest};

/// Two-sided 95% normal quantile used for the confidence interval.
const Z_95: f64 = 1.96;

/// The result of a sampled run: a CPI estimate with its sampling error,
/// plus enough bookkeeping to compute the detail fraction and speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledStats {
    /// Total instructions in the trace (fast-forwarded + detailed).
    pub instructions: u64,
    /// Instructions that ran through the detailed model (warm-ups and
    /// measured windows).
    pub detailed_instructions: u64,
    /// Measured windows contributing CPI observations.
    pub windows: usize,
    /// Mean per-window CPI — the point estimate.
    pub cpi: f64,
    /// Half-width of the 95% confidence interval on the mean CPI. Zero
    /// when the run was fully detailed or has a single window.
    pub ci_half_width: f64,
}

impl SampledStats {
    /// Estimated whole-trace cycles: mean CPI × instruction count.
    pub fn estimated_cycles(&self) -> f64 {
        self.cpi * self.instructions as f64
    }

    /// Fraction of the trace that ran through the detailed model.
    pub fn detail_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.detailed_instructions as f64 / self.instructions as f64
    }

    /// The confidence interval relative to the estimate
    /// (`ci_half_width / cpi`), the headline ±x% figure.
    pub fn relative_ci(&self) -> f64 {
        if self.cpi == 0.0 {
            return 0.0;
        }
        self.ci_half_width / self.cpi
    }
}

/// Runs `trace` under `cfg` in sampling mode and returns the CPI
/// estimate. See the [module docs](self) for the procedure.
///
/// # Panics
///
/// Panics if `sampling` fails [`SamplingConfig::validate`] (programming
/// error, mirroring [`Simulator::new`] on an invalid machine config).
pub fn run_sampled(
    cfg: &MachineConfig,
    sampling: &SamplingConfig,
    trace: &PackedTrace,
) -> SampledStats {
    run_sampled_inner(cfg, sampling, trace.records(), None)
}

/// [`run_sampled`] with the fast-forward driven by a pre-built
/// [`WarmDigest`] instead of raw record decode, amortizing the trace
/// scan across models and repetitions (the digest depends only on the
/// trace and line granule). Falls back to raw-record warming when the
/// digest's line granule does not match `cfg` — the result is defined
/// either way, the digest is purely a fast path.
pub fn run_sampled_digest(
    cfg: &MachineConfig,
    sampling: &SamplingConfig,
    ops: &[PackedOp],
    digest: &WarmDigest,
) -> SampledStats {
    let digest = (digest.line_bytes() == cfg.line_bytes).then_some(digest);
    run_sampled_inner(cfg, sampling, ops, digest)
}

fn run_sampled_inner(
    cfg: &MachineConfig,
    sampling: &SamplingConfig,
    ops: &[PackedOp],
    digest: Option<&WarmDigest>,
) -> SampledStats {
    sampling
        .validate()
        .unwrap_or_else(|e| panic!("invalid sampling config: {e}"));
    let unit = sampling.interval_ops;
    let mut sim = Simulator::new(cfg);
    if ops.len() <= unit {
        // Shorter than one sampling unit: the exact run *is* the estimate.
        sim.feed_records(ops);
        let stats = sim.finish();
        return SampledStats {
            instructions: stats.instructions,
            detailed_instructions: stats.instructions,
            windows: 1,
            cpi: stats.cpi(),
            ci_half_width: 0.0,
        };
    }

    let detail = sampling.warmup_ops + sampling.window_ops;
    // Free ops around the detailed chunk within one interval.
    let slots = unit - detail;
    let warm = |sim: &mut Simulator<'_>, lo: usize, hi: usize| match digest {
        Some(d) => sim.warm_digest(d, lo..hi),
        None => sim.warm_records(&ops[lo..hi]),
    };
    let mut cpis: Vec<f64> = Vec::with_capacity(ops.len() / unit.max(1) + 1);
    let mut detailed = 0u64;
    let mut i = 0usize;
    let mut k = 0u64;
    while i + unit <= ops.len() {
        // Place the detailed chunk at a per-interval offset drawn from a
        // fixed golden-ratio (Weyl) hash of the interval index. A
        // systematic placement (always at the interval's end) aliases
        // with any loop whose period divides the interval — every
        // window then lands on the same code phase and the estimate is
        // *biased*, not just noisy. The hash sequence is deterministic,
        // so runs stay exactly reproducible, while the positions are
        // incommensurate with any workload period.
        let off = ((k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize) % (slots + 1);
        warm(&mut sim, i, i + off);
        sim.feed_records(&ops[i + off..i + off + sampling.warmup_ops]);
        let (c0, n0) = (sim.cycle(), sim.retired_instructions());
        sim.feed_records(&ops[i + off + sampling.warmup_ops..i + off + detail]);
        let (c1, n1) = (sim.cycle(), sim.retired_instructions());
        if n1 > n0 {
            cpis.push((c1 - c0) as f64 / (n1 - n0) as f64);
        }
        warm(&mut sim, i + off + detail, i + unit);
        detailed += detail as u64;
        i += unit;
        k += 1;
    }
    // The sub-unit tail is warmed, not measured: its share of the
    // estimate comes from the windows, weighted like every other
    // fast-forwarded stretch.
    warm(&mut sim, i.min(ops.len()), ops.len());

    let n = cpis.len();
    let mean = cpis.iter().sum::<f64>() / n.max(1) as f64;
    let ci = if n > 1 {
        let var = cpis.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        Z_95 * (var / n as f64).sqrt()
    } else {
        0.0
    };
    SampledStats {
        instructions: ops.len() as u64,
        detailed_instructions: detailed,
        windows: n,
        cpi: mean,
        ci_half_width: ci,
    }
}

/// [`run_sampled`] over a raw record slice (the harness's cached traces
/// hand out slices of a shared capture).
pub fn run_sampled_records(
    cfg: &MachineConfig,
    sampling: &SamplingConfig,
    ops: &[PackedOp],
) -> SampledStats {
    run_sampled_inner(cfg, sampling, ops, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IssueWidth, MachineModel};
    use crate::sim::replay;
    use aurora_isa::{ArchReg, MemWidth, OpKind, TraceOp};
    use aurora_mem::LatencyModel;

    const BASE: u32 = 0x0040_0000;

    /// A loop-heavy kernel with loads, stores and taken branches whose
    /// working set alternates between two phases. The phase period is
    /// deliberately *not* a divisor of the sampling interval: systematic
    /// end-of-unit windows then land at varied phase offsets, which is
    /// what real workloads look like (a commensurate period aliases any
    /// systematic sampler — SMARTS §3.1 discusses exactly this).
    fn phased_trace(n: u32) -> PackedTrace {
        PackedTrace::from_ops((0..n).map(|i| {
            let phase = (i / 3700) % 2;
            let code = BASE + 0x100 * phase;
            let data = 0x0010_0000 + 0x8000 * phase;
            let pc = code + 4 * (i % 48);
            match i % 6 {
                0 => TraceOp {
                    pc,
                    kind: OpKind::Load {
                        ea: data + 64 * (i % 300),
                        width: MemWidth::Word,
                    },
                    dst: Some(ArchReg::Int((8 + i % 4) as u8)),
                    src1: Some(ArchReg::Int(29)),
                    src2: None,
                },
                1 => TraceOp {
                    pc,
                    kind: OpKind::Store {
                        ea: data + 32 * (i % 128),
                        width: MemWidth::Word,
                    },
                    dst: None,
                    src1: Some(ArchReg::Int(29)),
                    src2: Some(ArchReg::Int(8)),
                },
                5 => TraceOp {
                    pc,
                    kind: OpKind::Branch {
                        taken: i % 2 == 0,
                        target: code + 4 * ((i + 7) % 48),
                    },
                    dst: None,
                    src1: Some(ArchReg::Int(8)),
                    src2: None,
                },
                _ => TraceOp {
                    pc,
                    kind: OpKind::IntAlu,
                    dst: Some(ArchReg::Int((8 + i % 4) as u8)),
                    src1: Some(ArchReg::Int((8 + (i + 1) % 4) as u8)),
                    src2: None,
                },
            }
        }))
    }

    #[test]
    fn short_trace_runs_fully_detailed() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let trace = phased_trace(1000);
        let sampled = run_sampled(&cfg, &SamplingConfig::recommended(), &trace);
        let exact = replay(&cfg, &trace);
        assert_eq!(sampled.windows, 1);
        assert_eq!(sampled.ci_half_width, 0.0);
        assert_eq!(sampled.detailed_instructions, sampled.instructions);
        assert!((sampled.cpi - exact.cpi()).abs() < 1e-12);
    }

    #[test]
    fn sampled_cpi_tracks_ground_truth_on_steady_kernel() {
        // A steady loop kernel — the shape of the bench suite — must
        // estimate within 2% at a small detail fraction.
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::average_17());
        let trace = PackedTrace::from_ops((0..300_000u32).map(|i| {
            let pc = BASE + 4 * (i % 48);
            match i % 6 {
                0 => TraceOp {
                    pc,
                    kind: OpKind::Load {
                        ea: 0x0010_0000 + 64 * (i % 300),
                        width: MemWidth::Word,
                    },
                    dst: Some(ArchReg::Int((8 + i % 4) as u8)),
                    src1: Some(ArchReg::Int(29)),
                    src2: None,
                },
                1 => TraceOp {
                    pc,
                    kind: OpKind::Store {
                        ea: 0x0070_0000 + 32 * (i % 128),
                        width: MemWidth::Word,
                    },
                    dst: None,
                    src1: Some(ArchReg::Int(29)),
                    src2: Some(ArchReg::Int(8)),
                },
                _ => TraceOp {
                    pc,
                    kind: OpKind::IntAlu,
                    dst: Some(ArchReg::Int((8 + i % 4) as u8)),
                    src1: Some(ArchReg::Int((8 + (i + 1) % 4) as u8)),
                    src2: None,
                },
            }
        }));
        let exact = replay(&cfg, &trace).cpi();
        let sampled = run_sampled(&cfg, &SamplingConfig::recommended(), &trace);
        let err = (sampled.cpi - exact).abs() / exact;
        assert!(
            err < 0.02,
            "sampled {} vs exact {exact}: {:.2}% error",
            sampled.cpi,
            err * 100.0
        );
        assert!(sampled.windows >= 20, "windows {}", sampled.windows);
        assert!(
            sampled.detail_fraction() < 0.15,
            "detail fraction {}",
            sampled.detail_fraction()
        );
    }

    #[test]
    fn phased_workload_interval_is_honest() {
        // An adversarial workload with strong cache-thrashing phases:
        // per-window CPI is highly variable, so the point estimate may
        // wander — but the reported confidence interval must say so, and
        // truth must lie within it.
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::average_17());
        let trace = phased_trace(400_000);
        let exact = replay(&cfg, &trace).cpi();
        let sampling = SamplingConfig {
            window_ops: 256,
            warmup_ops: 256,
            interval_ops: 4096,
        };
        let sampled = run_sampled(&cfg, &sampling, &trace);
        let err = (sampled.cpi - exact).abs();
        assert!(
            err < 2.0 * sampled.ci_half_width,
            "truth {exact} outside 2x CI: {} ± {}",
            sampled.cpi,
            sampled.ci_half_width
        );
        assert!(sampled.windows >= 50, "windows {}", sampled.windows);
        assert!(sampled.ci_half_width > 0.0);
    }

    #[test]
    fn estimator_is_deterministic() {
        let cfg = MachineModel::Small.config(IssueWidth::Single, LatencyModel::average_35());
        let trace = phased_trace(60_000);
        let a = run_sampled(&cfg, &SamplingConfig::recommended(), &trace);
        let b = run_sampled(&cfg, &SamplingConfig::recommended(), &trace);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid sampling config")]
    fn invalid_sampling_config_panics() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let bad = SamplingConfig {
            window_ops: 0,
            warmup_ops: 0,
            interval_ops: 8,
        };
        run_sampled(&cfg, &bad, &phased_trace(100));
    }

    /// Manual component-rate benchmark for the fast-forward paths. Run
    /// with:
    ///
    /// ```text
    /// cargo test --release -p aurora-core -- --ignored warm_component_rates --nocapture
    /// ```
    #[test]
    #[ignore = "manual benchmark; run with --release --ignored --nocapture"]
    fn warm_component_rates() {
        use std::time::Instant;
        let trace = phased_trace(4_000_000);
        let ops = trace.records();
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let rate = |ops: usize, secs: f64| ops as f64 / secs / 1e6;

        let t = Instant::now();
        let digest = WarmDigest::build(ops, cfg.line_bytes);
        let build = t.elapsed().as_secs_f64();

        let mut sim = Simulator::new(&cfg);
        let t = Instant::now();
        sim.warm_records(ops);
        let recs = t.elapsed().as_secs_f64();

        let mut sim = Simulator::new(&cfg);
        let t = Instant::now();
        sim.warm_digest(&digest, 0..ops.len());
        let dig = t.elapsed().as_secs_f64();

        let mut sim = Simulator::new(&cfg);
        let t = Instant::now();
        sim.feed_records(ops);
        let feed = t.elapsed().as_secs_f64();

        println!(
            "ops {} events {} ({:.1}%)\n\
             digest build   {:8.1} Mops/s\n\
             warm_records   {:8.1} Mops/s\n\
             warm_digest    {:8.1} Mops/s ({:.1} Mevents/s)\n\
             feed (detail)  {:8.1} Mops/s",
            ops.len(),
            digest.len(),
            100.0 * digest.len() as f64 / ops.len() as f64,
            rate(ops.len(), build),
            rate(ops.len(), recs),
            rate(ops.len(), dig),
            rate(digest.len(), dig),
            rate(ops.len(), feed),
        );
    }
}
