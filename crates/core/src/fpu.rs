//! Cycle-level model of the decoupled floating-point unit (paper §3).
//!
//! The FPU sits behind an instruction queue: the IPU transfers FP
//! instructions and keeps running, stalling only when the queue fills or
//! when it needs an FPU result. Inside, the FPU has a 32×64 register
//! file, a scoreboard, a reorder buffer, four functional units
//! (add/multiply/divide/convert — square root shares the divide hardware)
//! and two result busses. Up to two instructions issue per cycle from the
//! queue head under the dual-issue policy (§5.8).

use std::collections::VecDeque;

use aurora_isa::{
    ArchReg, OpKind, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, TraceOp,
};

use crate::config::{FpIssuePolicy, FpuConfig};
use crate::rob::ReorderBuffer;

/// Functional units inside the FPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Add,
    Mul,
    Div,
    Cvt,
    /// Register moves: no major unit, one cycle through the bypass.
    Move,
}

/// Outcome of handing FP load data to the load queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FpLoadNote {
    /// Cycle the value lands in the register file.
    pub rf_write: u64,
    /// Cycle the data could enter the queue; later than its arrival when
    /// the queue was full, in which case the LSU pipe is blocked until
    /// then.
    pub admitted: u64,
}

/// What the IPU learns from dispatching an FP instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FpuDispatch {
    /// Cycle the instruction issues inside the FPU (leaves the queue).
    pub issue_at: u64,
    /// Cycle its result is visible (register, condition code, or — for
    /// `mfc1` — the integer register on the IPU side).
    pub result_at: u64,
}

/// FPU-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FpuStats {
    /// Instructions dispatched into the queue.
    pub dispatched: u64,
    /// Instructions that issued in the same cycle as their predecessor
    /// (dual-issue pairs; counts the second member).
    pub dual_issues: u64,
}

/// The decoupled FPU timing engine.
#[derive(Debug, Clone)]
pub(crate) struct Fpu {
    cfg: FpuConfig,
    /// Queue entries: the cycle each queued instruction issues (leaves).
    iq: VecDeque<u64>,
    /// Load-data queue entries: the cycle each outstanding FP load's data
    /// is written into the register file.
    ldq: VecDeque<u64>,
    /// Store queue entries: the cycle each pending FP store's data leaves.
    stq: VecDeque<u64>,
    /// Ready cycle per even register pair.
    score: [u64; 16],
    fpcc_ready: u64,
    rob: ReorderBuffer,
    unit_free: [u64; 4],
    /// Completions scheduled per cycle (bounded by `result_busses`): a
    /// dense window of counts where slot `i` covers absolute cycle
    /// `bus_base + i`. The window spans only the live scheduling range
    /// (issue cycle to the latest booked completion), so it stays a few
    /// dozen entries and replaces the allocation-heavy per-cycle map the
    /// hot path used to rebuild.
    bus_load: VecDeque<u32>,
    bus_base: u64,
    last_issue_cycle: u64,
    issued_in_cycle: usize,
    /// Completion of the most recently issued instruction (for the
    /// in-order-completion policy) and the latest completion overall.
    prev_completion: u64,
    latest_event: u64,
    stats: FpuStats,
}

impl Fpu {
    pub(crate) fn new(cfg: FpuConfig) -> Fpu {
        let rob = ReorderBuffer::new(cfg.rob_entries);
        Fpu {
            cfg,
            iq: VecDeque::new(),
            ldq: VecDeque::new(),
            stq: VecDeque::new(),
            score: [0; 16],
            fpcc_ready: 0,
            rob,
            unit_free: [0; 4],
            bus_load: VecDeque::new(),
            bus_base: 0,
            last_issue_cycle: 0,
            issued_in_cycle: 0,
            prev_completion: 0,
            latest_event: 0,
            stats: FpuStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> FpuStats {
        self.stats
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats = FpuStats::default();
    }

    /// Cycle the FP condition code is valid (for `bc1t`/`bc1f`).
    pub(crate) fn fpcc_ready(&self) -> u64 {
        self.fpcc_ready
    }

    /// Ready cycle of an FP register (for FP store data).
    pub(crate) fn reg_ready(&self, reg: ArchReg) -> u64 {
        match reg {
            ArchReg::Fp(n) => self.score.get((n / 2) as usize).copied().unwrap_or(0),
            ArchReg::FpCond => self.fpcc_ready,
            _ => 0,
        }
    }

    /// Earliest cycle `>= now` with a free instruction-queue slot.
    pub(crate) fn iq_space_at(&mut self, now: u64) -> u64 {
        while matches!(self.iq.front(), Some(&leave) if leave <= now) {
            self.iq.pop_front();
        }
        if self.iq.len() < self.cfg.instr_queue {
            now
        } else {
            // The queue is non-empty here (its length is at capacity), so
            // the front is always present; `now` is a safe identity.
            self.iq.front().copied().unwrap_or(now)
        }
    }

    /// Instruction-queue occupancy at cycle `now`: entries whose issue
    /// (queue-departure) cycle lies after `now`. Side-effect free; used
    /// by the observability layer to sample queue depth at dispatch.
    pub(crate) fn iq_occupancy(&self, now: u64) -> u64 {
        self.iq.iter().filter(|&&leaves| leaves > now).count() as u64
    }

    /// Earliest cycle `>= now` with a free store-queue slot.
    pub(crate) fn stq_space_at(&mut self, now: u64) -> u64 {
        while matches!(self.stq.front(), Some(&t) if t <= now) {
            self.stq.pop_front();
        }
        if self.stq.len() < self.cfg.store_queue {
            now
        } else {
            self.stq.front().copied().unwrap_or(now)
        }
    }

    /// Records an FP load whose data arrives from the LSU at `data_at`;
    /// returns the cycle the value is usable in the register file.
    ///
    /// The load queue buffers *arrived* data until a register-file write
    /// slot is free — RF writes share the result busses with the
    /// functional units (§3.1), so heavy computation backs load data up.
    /// When every queue entry still holds unwritten data, the new line
    /// must wait in the LSU for the oldest entry to drain.
    pub(crate) fn note_fp_load(&mut self, dst: Option<ArchReg>, data_at: u64) -> FpLoadNote {
        while matches!(self.ldq.front(), Some(&t) if t <= data_at) {
            self.ldq.pop_front();
        }
        let mut admitted = if self.ldq.len() < self.cfg.load_queue {
            data_at
        } else {
            // At capacity the queue is non-empty, so the pop yields the
            // oldest entry; an empty queue simply imposes no wait.
            match self.ldq.pop_front() {
                Some(oldest) => oldest.max(data_at),
                None => data_at,
            }
        };
        // Strict in-order completion has a single in-order register-file
        // write stream: load data cannot be written ahead of an older FP
        // instruction's result.
        if self.cfg.issue_policy == FpIssuePolicy::InOrderComplete {
            admitted = admitted.max(self.prev_completion);
        }
        let rf_write = self.schedule_result_bus(admitted + 1);
        if self.cfg.issue_policy == FpIssuePolicy::InOrderComplete {
            self.prev_completion = self.prev_completion.max(rf_write);
        }
        #[cfg(feature = "fpu-trace")]
        if trace_enabled(data_at) {
            // lint:allow(L013): compiled out unless the opt-in fpu-trace
            // debugging feature is enabled — never present in a sweep build
            eprintln!("FPU load data={data_at} admit={admitted} rf={rf_write}");
        }
        self.ldq.push_back(rf_write);
        if let Some(ArchReg::Fp(n)) = dst {
            if let Some(slot) = self.score.get_mut((n / 2) as usize) {
                *slot = rf_write;
            }
        }
        self.latest_event = self.latest_event.max(rf_write);
        FpLoadNote { rf_write, admitted }
    }

    /// Records an FP store dispatched at `now` whose data is produced at
    /// `data_at`; returns when the data is handed to the write cache.
    ///
    /// Call only after waiting for [`Fpu::stq_space_at`].
    pub(crate) fn note_fp_store(&mut self, now: u64, data_at: u64) -> u64 {
        let leaves = now.max(data_at) + 1;
        self.stq.push_back(leaves);
        self.latest_event = self.latest_event.max(leaves);
        leaves
    }

    /// Dispatches an FPU arithmetic/move/compare instruction that the IPU
    /// transfers at cycle `now`.
    ///
    /// Call only after waiting for [`Fpu::iq_space_at`]. Returns the issue
    /// and result cycles.
    pub(crate) fn dispatch(&mut self, op: &TraceOp, now: u64) -> FpuDispatch {
        self.stats.dispatched += 1;
        let unit = unit_of(op.kind);
        let latency = self.latency_of(op.kind) as u64;

        // Transfer into the queue takes one cycle.
        let arrive = now + 1;
        let src_ready = op.sources().map(|r| self.reg_ready(r)).max().unwrap_or(0);
        let max_per_cycle = match self.cfg.issue_policy {
            FpIssuePolicy::OutOfOrderDual => 2,
            _ => 1,
        };

        // The issue constraints are all monotone max() bounds that do not
        // depend on the issue cycle itself, so their fixpoint is the
        // plain maximum, applied once. The one conditional bump — a full
        // issue slot in the in-order stream — can only fire at
        // `last_issue_cycle`, and every later constraint keeps `t` at or
        // above it, so applying the bump first is exact.
        // In-order issue: never before the previous instruction.
        let mut t = arrive.max(src_ready).max(self.last_issue_cycle);
        if t == self.last_issue_cycle && self.issued_in_cycle >= max_per_cycle {
            t += 1;
        }
        // In-order completion policy: previous op must have finished.
        if self.cfg.issue_policy == FpIssuePolicy::InOrderComplete {
            t = t.max(self.prev_completion);
        }
        // Functional unit availability.
        if let Some(u) = unit_index(unit) {
            t = t.max(self.unit_free.get(u).copied().unwrap_or(0));
        }
        // Reorder-buffer space (a full ROB always has a next-free time).
        self.rob.drain(t);
        if !self.rob.has_space() {
            if let Some(free) = self.rob.next_free_at() {
                t = t.max(free);
            }
            self.rob.drain(t);
        }

        // Completion plus a result-bus slot.
        let completion = self.schedule_result_bus(t + latency);

        // Commit state updates.
        if t == self.last_issue_cycle {
            self.issued_in_cycle = self.issued_in_cycle.saturating_add(1);
            if self.issued_in_cycle > 1 {
                self.stats.dual_issues += 1;
            }
        } else {
            self.last_issue_cycle = t;
            self.issued_in_cycle = 1;
        }
        if let Some(u) = unit_index(unit) {
            let pipelined = match unit {
                Unit::Add => self.cfg.add_pipelined,
                Unit::Mul => self.cfg.mul_pipelined,
                // Divide is iterative (never pipelined, §3.1); conversion
                // is short enough to treat as pipelined.
                Unit::Div => false,
                _ => true,
            };
            if let Some(slot) = self.unit_free.get_mut(u) {
                *slot = if pipelined { t + 1 } else { completion };
            }
        }
        let pushed = self.rob.try_push(completion);
        debug_assert!(pushed, "rob space was ensured above");
        match op.dst {
            Some(ArchReg::Fp(n)) => {
                if let Some(slot) = self.score.get_mut((n / 2) as usize) {
                    *slot = completion;
                }
            }
            Some(ArchReg::FpCond) => self.fpcc_ready = completion,
            _ => {}
        }
        self.prev_completion = completion;
        self.latest_event = self.latest_event.max(completion);
        self.iq.push_back(t);
        // Prune stale bus slots: nothing can be scheduled before `t` again.
        // (Pruned cycles that do get re-requested — e.g. old load data —
        // start back at zero, exactly as a map rebuild would behave.)
        if t > self.bus_base {
            let drop = ((t - self.bus_base) as usize).min(self.bus_load.len());
            self.bus_load.drain(..drop);
            self.bus_base = t;
        }
        #[cfg(feature = "fpu-trace")]
        if trace_enabled(now) {
            // lint:allow(L013): compiled out unless the opt-in fpu-trace
            // debugging feature is enabled — never present in a sweep build
            eprintln!(
                "FPU {:?} now={now} arrive={arrive} src={src_ready} issue={t} done={completion} prevC={}",
                op.kind, self.prev_completion
            );
        }

        FpuDispatch {
            issue_at: t,
            result_at: completion + 1,
        }
    }

    /// Cycle by which everything in flight has completed.
    pub(crate) fn drained_at(&self) -> u64 {
        self.latest_event.max(self.rob.drained_at())
    }

    /// The next cycle after `now` at which an FPU queue drains or an
    /// in-flight instruction retires — the earliest moment the unit could
    /// unblock a waiting dispatcher. Part of the event-horizon protocol.
    pub(crate) fn next_event_cycle(&self, now: u64) -> Option<u64> {
        [
            self.iq.front().copied(),
            self.ldq.front().copied(),
            self.stq.front().copied(),
            self.rob.next_free_at(),
        ]
        .into_iter()
        .flatten()
        .filter(|&t| t > now)
        .min()
    }

    fn latency_of(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::FpAdd | OpKind::FpCmp => self.cfg.add_latency,
            OpKind::FpMul => self.cfg.mul_latency,
            OpKind::FpDiv | OpKind::FpSqrt => self.cfg.div_latency,
            OpKind::FpCvt => self.cfg.cvt_latency,
            OpKind::FpMove => 1,
            // lint:allow(L002): dispatch is only reached for kinds where
            // `is_fpu()` holds; a non-FPU kind here is a decoder bug that
            // must not be silently timed
            other => unreachable!("{other:?} is not an FPU op"),
        }
    }

    /// Books a result-bus slot at or after `completion`.
    fn schedule_result_bus(&mut self, completion: u64) -> u64 {
        if self.bus_load.is_empty() {
            self.bus_base = completion;
        } else if completion < self.bus_base {
            // A request below the window (stale load data after a prune):
            // grow the window downward so the counts stay addressable.
            for _ in completion..self.bus_base {
                self.bus_load.push_front(0);
            }
            self.bus_base = completion;
        }
        let mut idx = (completion - self.bus_base) as usize;
        loop {
            if idx >= self.bus_load.len() {
                self.bus_load.resize(idx + 1, 0);
            }
            // The resize above makes the slot addressable, so the `None`
            // arm is unreachable and simply advances like a full slot.
            match self.bus_load.get_mut(idx) {
                Some(slot) if (*slot as usize) < self.cfg.result_busses => {
                    *slot += 1;
                    return self.bus_base + idx as u64;
                }
                _ => idx += 1,
            }
        }
    }
}

impl Snapshot for Fpu {
    /// Every scheduling structure is state: the three queues, the register
    /// scoreboard, the FPU ROB, unit horizons, the result-bus window and
    /// the issue/completion bookkeeping. `FpuConfig` itself is
    /// configuration and is not recorded.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"FPU_");
        w.put_len(self.iq.len());
        for &t in &self.iq {
            w.put_u64(t);
        }
        w.put_len(self.ldq.len());
        for &t in &self.ldq {
            w.put_u64(t);
        }
        w.put_len(self.stq.len());
        for &t in &self.stq {
            w.put_u64(t);
        }
        for &t in &self.score {
            w.put_u64(t);
        }
        w.put_u64(self.fpcc_ready);
        self.rob.save(w);
        for &t in &self.unit_free {
            w.put_u64(t);
        }
        w.put_len(self.bus_load.len());
        for &n in &self.bus_load {
            w.put_u32(n);
        }
        w.put_u64(self.bus_base);
        w.put_u64(self.last_issue_cycle);
        w.put_len(self.issued_in_cycle);
        w.put_u64(self.prev_completion);
        w.put_u64(self.latest_event);
        w.put_u64(self.stats.dispatched);
        w.put_u64(self.stats.dual_issues);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"FPU_")?;
        // Dual dispatch admits an FP pair against a single non-reserving
        // space check, so the instruction and store queues can sit one
        // entry over capacity until the next `*_space_at` prune — a
        // reachable state the image must round-trip. The load queue is
        // self-limiting (it pops its oldest entry at capacity), so its
        // bound stays exact.
        let iq = r.len(self.cfg.instr_queue + 1)?;
        self.iq.clear();
        for _ in 0..iq {
            self.iq.push_back(r.u64()?);
        }
        let ldq = r.len(self.cfg.load_queue)?;
        self.ldq.clear();
        for _ in 0..ldq {
            self.ldq.push_back(r.u64()?);
        }
        let stq = r.len(self.cfg.store_queue + 1)?;
        self.stq.clear();
        for _ in 0..stq {
            self.stq.push_back(r.u64()?);
        }
        for slot in self.score.iter_mut() {
            *slot = r.u64()?;
        }
        self.fpcc_ready = r.u64()?;
        self.rob.restore(r)?;
        for slot in self.unit_free.iter_mut() {
            *slot = r.u64()?;
        }
        // The bus window spans the live scheduling range, which is bounded
        // by the longest op latency plus queued completions — far under
        // this cap in any reachable state.
        let bus = r.len(1 << 16)?;
        self.bus_load.clear();
        for _ in 0..bus {
            self.bus_load.push_back(r.u32()?);
        }
        self.bus_base = r.u64()?;
        self.last_issue_cycle = r.u64()?;
        self.issued_in_cycle = r.len(2)?;
        self.prev_completion = r.u64()?;
        self.latest_event = r.u64()?;
        self.stats.dispatched = r.u64()?;
        self.stats.dual_issues = r.u64()?;
        Ok(())
    }
}

#[cfg(feature = "fpu-trace")]
fn trace_enabled(cycle: u64) -> bool {
    static FROM: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let from = *FROM.get_or_init(|| {
        std::env::var("FPU_TRACE_FROM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    });
    cycle >= from
}

fn unit_of(kind: OpKind) -> Unit {
    match kind {
        OpKind::FpAdd | OpKind::FpCmp => Unit::Add,
        OpKind::FpMul => Unit::Mul,
        OpKind::FpDiv | OpKind::FpSqrt => Unit::Div,
        OpKind::FpCvt => Unit::Cvt,
        _ => Unit::Move,
    }
}

fn unit_index(unit: Unit) -> Option<usize> {
    match unit {
        Unit::Add => Some(0),
        Unit::Mul => Some(1),
        Unit::Div => Some(2),
        Unit::Cvt => Some(3),
        Unit::Move => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_op(kind: OpKind, dst: u8, src1: u8, src2: u8) -> TraceOp {
        TraceOp {
            pc: 0,
            kind,
            dst: Some(ArchReg::Fp(dst)),
            src1: Some(ArchReg::Fp(src1)),
            src2: Some(ArchReg::Fp(src2)),
        }
    }

    fn cfg(policy: FpIssuePolicy) -> FpuConfig {
        FpuConfig {
            issue_policy: policy,
            ..FpuConfig::recommended()
        }
    }

    #[test]
    fn independent_adds_pipeline_under_ooo() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderSingle));
        let a = fpu.dispatch(&fp_op(OpKind::FpAdd, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpAdd, 8, 10, 12), 0);
        // In-order single issue: one per cycle, but overlapped execution.
        assert_eq!(b.issue_at, a.issue_at + 1);
        assert_eq!(b.result_at, a.result_at + 1);
    }

    #[test]
    fn in_order_completion_serialises() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::InOrderComplete));
        let a = fpu.dispatch(&fp_op(OpKind::FpAdd, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpAdd, 8, 10, 12), 0);
        // The second op cannot even issue until the first completes.
        assert!(b.issue_at >= a.result_at - 1);
    }

    #[test]
    fn dual_issue_pairs_independent_ops() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderDual));
        let a = fpu.dispatch(&fp_op(OpKind::FpAdd, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpMul, 8, 10, 12), 0);
        assert_eq!(
            a.issue_at, b.issue_at,
            "different units, no deps: same cycle"
        );
        assert_eq!(fpu.stats().dual_issues, 1);
        let c = fpu.dispatch(&fp_op(OpKind::FpCvt, 14, 16, 16), 0);
        assert_eq!(c.issue_at, a.issue_at + 1, "third op of the cycle waits");
    }

    #[test]
    fn true_dependency_waits_for_producer() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderDual));
        let a = fpu.dispatch(&fp_op(OpKind::FpMul, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpAdd, 8, 2, 6), 0);
        assert!(
            b.issue_at >= a.result_at - 1,
            "consumer waits for mul result"
        );
    }

    #[test]
    fn iterative_divider_blocks_back_to_back_divides() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderDual));
        let a = fpu.dispatch(&fp_op(OpKind::FpDiv, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpDiv, 8, 10, 12), 0);
        assert!(b.issue_at >= a.result_at - 1, "divider is not pipelined");
    }

    #[test]
    fn non_pipelined_multiplier_blocks() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderDual)); // mul_pipelined = false
        let a = fpu.dispatch(&fp_op(OpKind::FpMul, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpMul, 8, 10, 12), 0);
        assert!(b.issue_at >= a.issue_at + 5);

        let mut pipelined = cfg(FpIssuePolicy::OutOfOrderDual);
        pipelined.mul_pipelined = true;
        let mut fpu = Fpu::new(pipelined);
        let a = fpu.dispatch(&fp_op(OpKind::FpMul, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpMul, 8, 10, 12), 0);
        assert_eq!(b.issue_at, a.issue_at + 1);
    }

    #[test]
    fn sqrt_shares_divide_hardware() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderDual));
        let a = fpu.dispatch(&fp_op(OpKind::FpSqrt, 2, 4, 4), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpDiv, 8, 10, 12), 0);
        assert!(b.issue_at >= a.result_at - 1);
    }

    #[test]
    fn queue_fills_and_frees() {
        let mut small = cfg(FpIssuePolicy::InOrderComplete);
        small.instr_queue = 2;
        small.div_latency = 19;
        let mut fpu = Fpu::new(small);
        // Two slow divides fill the 2-entry queue (second waits to issue).
        fpu.dispatch(&fp_op(OpKind::FpDiv, 2, 4, 6), 0);
        fpu.dispatch(&fp_op(OpKind::FpDiv, 8, 10, 12), 0);
        // Space only opens once the second entry issues.
        let space = fpu.iq_space_at(0);
        assert!(space > 0, "queue full at dispatch time");
    }

    #[test]
    fn result_bus_limits_simultaneous_completions() {
        let mut one_bus = cfg(FpIssuePolicy::OutOfOrderDual);
        one_bus.result_busses = 1;
        one_bus.add_latency = 3;
        one_bus.cvt_latency = 3; // same latency: both would complete together
        let mut fpu = Fpu::new(one_bus);
        let a = fpu.dispatch(&fp_op(OpKind::FpAdd, 2, 4, 6), 0);
        let b = fpu.dispatch(&fp_op(OpKind::FpCvt, 8, 10, 10), 0);
        assert_eq!(a.issue_at, b.issue_at, "dual issue to different units");
        assert!(b.result_at > a.result_at, "single bus staggers completions");
    }

    #[test]
    fn store_queue_bounds_outstanding_stores() {
        let mut c = cfg(FpIssuePolicy::OutOfOrderDual);
        c.store_queue = 1;
        let mut fpu = Fpu::new(c);
        assert_eq!(fpu.stq_space_at(0), 0);
        let left = fpu.note_fp_store(0, 50);
        assert_eq!(left, 51);
        assert_eq!(fpu.stq_space_at(10), 51);
    }

    #[test]
    fn full_load_queue_delays_rf_writes() {
        let mut c = cfg(FpIssuePolicy::OutOfOrderDual);
        c.load_queue = 1;
        c.result_busses = 1;
        let mut fpu = Fpu::new(c);
        // Data arriving back to back: with a single-entry queue the second
        // write waits for the first entry to drain.
        let w1 = fpu.note_fp_load(Some(ArchReg::Fp(2)), 10);
        let w2 = fpu.note_fp_load(Some(ArchReg::Fp(4)), 10);
        assert_eq!(w1.rf_write, 11);
        assert!(
            w2.rf_write > w1.rf_write,
            "second write delayed: {w2:?} vs {w1:?}"
        );
        assert!(
            w2.admitted >= w1.rf_write,
            "LSU blocked until the queue drains"
        );

        // With two entries and two busses, simultaneous arrivals coexist.
        let mut roomy = cfg(FpIssuePolicy::OutOfOrderDual);
        roomy.load_queue = 2;
        let mut fpu = Fpu::new(roomy);
        let w1 = fpu.note_fp_load(Some(ArchReg::Fp(2)), 10);
        let w2 = fpu.note_fp_load(Some(ArchReg::Fp(4)), 10);
        assert_eq!(w1.rf_write, 11);
        assert_eq!(w2.rf_write, 11, "two busses write both arrivals");
    }

    #[test]
    fn fp_load_feeds_scoreboard() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderSingle));
        fpu.note_fp_load(Some(ArchReg::Fp(2)), 20);
        let add = fpu.dispatch(&fp_op(OpKind::FpAdd, 4, 2, 2), 0);
        assert!(add.issue_at >= 21, "add waits for the load's RF write");
    }

    #[test]
    fn compare_sets_condition_code() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderSingle));
        let op = TraceOp {
            pc: 0,
            kind: OpKind::FpCmp,
            dst: Some(ArchReg::FpCond),
            src1: Some(ArchReg::Fp(2)),
            src2: Some(ArchReg::Fp(4)),
        };
        let d = fpu.dispatch(&op, 0);
        assert_eq!(fpu.fpcc_ready(), d.result_at - 1);
    }

    #[test]
    fn drained_at_covers_all_events() {
        let mut fpu = Fpu::new(cfg(FpIssuePolicy::OutOfOrderSingle));
        let d = fpu.dispatch(&fp_op(OpKind::FpDiv, 2, 4, 6), 0);
        assert!(fpu.drained_at() >= d.result_at - 1);
        fpu.note_fp_load(Some(ArchReg::Fp(8)), 1000);
        assert!(fpu.drained_at() >= 1001);
    }
}
