//! The trace-driven cycle-level simulator of the Aurora III IPU.
//!
//! The model replays a dynamic [`TraceOp`] stream against a
//! [`MachineConfig`], tracking per-resource availability cycles rather
//! than individual pipeline latches — the standard approach for
//! trace-driven studies like the paper's own. Every mechanism §2 and §3
//! describe is represented:
//!
//! * aligned EVEN/ODD pair fetch with the pre-decoded DI/CONT/NEXT fields
//!   and branch folding,
//! * dual-issue constraints (intra-pair dependency, one memory op per
//!   cycle),
//! * the register scoreboard, forwarding (1-cycle effective ALU latency)
//!   and the in-order-retirement reorder buffer,
//! * the LSU with a 3-cycle pipelined external data cache, a coalescing
//!   write cache with MMU write validation, MSHRs reserved by every
//!   memory instruction in flight, and line fills occupying the data
//!   busses,
//! * Jouppi stream buffers shared between the I and D streams,
//! * the split-transaction BIU with configurable secondary latency,
//! * the decoupled FPU behind instruction/load/store queues.
//!
//! Whole-pipeline stall cycles are attributed to their binding cause,
//! reproducing the breakdown of paper Figure 6.
//!
//! # Event-horizon scheduling
//!
//! The clock advances in one jump per issue group: the binding constraint
//! (the latest per-unit ready time) *is* the next event horizon for the
//! stalled front end, and every unit exposes a `next_event_cycle()` hook
//! reporting the earliest cycle its own state can change. Unit
//! maintenance inside a jump is deferred and applied at the target cycle
//! in arrival order, which is sound because all of it is monotone and
//! path-independent (see `docs/MODEL.md`). A naive reference mode
//! (`MachineConfig::cycle_skip = false`) instead walks every intervening
//! cycle performing maintenance each time; both modes produce bit-equal
//! [`SimStats`] and the differential suite enforces it.

use std::collections::VecDeque;
use std::ops::Range;

use aurora_isa::{
    ArchReg, BlockTemplate, BlockTrace, EmuError, Emulator, OpKind, PackedOp, PackedTrace, Program,
    SegPlan, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, TraceOp, HILO_BIT,
};
use aurora_mem::{
    Biu, DecodedICache, DirectMappedCache, Geometry, LineAddr, MshrFile, PairInfo, StreamBuffers,
    StreamProbe, StreamStats, TransferKind, WriteCache,
};

use crate::config::{IssueWidth, MachineConfig};
use crate::fpu::Fpu;
use crate::obs::{ObsEvent, ObsEventKind, Observer, StallCause};
use crate::rob::ReorderBuffer;
use crate::stats::SimStats;

/// Cycles to move a load that hits the on-chip write cache into a register.
const WRITE_CACHE_LOAD_LATENCY: u64 = 2;
/// Cycles a store spends in the LSU pipe before it parks in the write cache.
const STORE_PIPE_LATENCY: u64 = 2;
/// Extra cycles the data busses are blocked while a fill streams into the
/// data cache (the "LSU using the data busses to fill the cache" of §5.3).
const FILL_BLOCK_CYCLES: u64 = 2;
/// Cycles to move a stream-buffer line into the primary cache.
const STREAM_TRANSFER_CYCLES: u64 = 1;
/// HI/LO latencies for the integer multiply/divide.
const INT_MUL_LATENCY: u64 = 5;
const INT_DIV_LATENCY: u64 = 20;
/// How long a *hitting* access reserves its MSHR: the register frees once
/// the tag check resolves (§2.3 reserves an MSHR per memory instruction in
/// the LSU pipe; misses keep theirs until the fill returns).
const MSHR_HIT_HOLD: u64 = 2;
/// Capacity of the fixed observer staging buffer. An issue group emits at
/// most ~8 events (fetch, miss, two issues, stalls, MSHR traffic, retire
/// ×2), so one group never forces more than one mid-group flush even in
/// the worst case.
const OBS_BATCH: usize = 24;
/// Minimum remaining batchable-run length worth entering the block fast
/// path: below this the entry checks cost more than the per-group
/// savings.
const MIN_FAST_RUN: usize = 2;
/// Upper bound on the serialized pending-queue blob inside a checkpoint.
/// The look-ahead queue holds at most one op between public calls, so a
/// longer blob can only come from a corrupt image.
const PENDING_BLOB_CAP: usize = 4096;

/// A taken control transfer awaiting its post-delay-slot fetch.
#[derive(Debug, Clone, Copy)]
struct Redirect {
    branch_pc: u64,
    foldable: bool,
}

/// One instruction as seen by the issue stage — the unit of the optional
/// issue log (see [`Simulator::enable_issue_log`]), useful for pipeline
/// visualisation and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRecord {
    /// Cycle the instruction issued.
    pub cycle: u64,
    /// Its address.
    pub pc: u32,
    /// What it was.
    pub kind: OpKind,
    /// Whether it issued as the second member of a dual pair.
    pub dual_with_prev: bool,
    /// Whole-pipeline stall cycles charged immediately before this issue.
    pub stall_cycles: u64,
    /// The binding stall cause when `stall_cycles > 0`, in the
    /// fine-grained observability taxonomy. The coarse Figure 6 category
    /// is `cause.kind()`.
    pub stall_cause: Option<StallCause>,
}

/// The cycle-level simulator. Feed it a trace with [`Simulator::feed`]
/// (or use [`simulate`]) and collect [`SimStats`] from
/// [`Simulator::finish`].
///
/// ```
/// use aurora_core::{IssueWidth, MachineModel, Simulator};
/// use aurora_isa::{OpKind, TraceOp};
/// use aurora_mem::LatencyModel;
///
/// let cfg = MachineModel::Baseline.config(IssueWidth::Single, LatencyModel::Fixed(17));
/// let mut sim = Simulator::new(&cfg);
/// for i in 0..100u32 {
///     sim.feed(TraceOp::bare(0x400000 + 4 * (i % 16), OpKind::IntAlu));
/// }
/// let stats = sim.finish();
/// assert_eq!(stats.instructions, 100);
/// assert!(stats.cpi() >= 1.0);
/// ```
#[derive(Debug)]
pub struct Simulator<'cfg> {
    cfg: &'cfg MachineConfig,
    now: u64,
    // Front end.
    icache: DecodedICache,
    last_fetch_pair: Option<u64>,
    after_ctl: Option<Redirect>,
    delay_pending: Option<Redirect>,
    // Integer engine.
    int_score: [(u64, StallCause); 32],
    hilo: (u64, StallCause),
    rob: ReorderBuffer,
    // Memory system.
    dcache: DirectMappedCache,
    dcache_port_free: u64,
    pending_fills: Vec<(LineAddr, u64)>,
    /// Earliest arrival among `pending_fills` (`u64::MAX` when empty):
    /// the fill unit's event horizon, letting the hot path skip
    /// [`Simulator::apply_fills`] with one compare.
    next_fill_at: u64,
    write_cache: WriteCache,
    mshrs: MshrFile,
    streams: Option<StreamBuffers>,
    biu: Biu,
    istream: StreamStats,
    dstream: StreamStats,
    // Floating point.
    fpu: Fpu,
    // Issue buffering (one pair of look-ahead for dual issue).
    pending: VecDeque<TraceOp>,
    issue_log: Option<(usize, VecDeque<IssueRecord>)>,
    /// Fetch bubble charged by the most recent [`Simulator::fetch`] (0 or
    /// 1): lets stall attribution split an ICache-bound stall into its
    /// branch-bubble and miss-service parts without changing the coarse
    /// counters.
    fetch_bubble: u64,
    /// The observability recorder; `None` unless
    /// [`MachineConfig::observe`] is set or
    /// [`Simulator::enable_observer`] was called. Boxed so the disabled
    /// case costs one pointer-null test on the hot path.
    obs: Option<Box<Observer>>,
    /// Fixed staging buffer for observer events: the hot loop appends
    /// here (an inlined bounds-check and store) and flushes the batch to
    /// the outlined [`Observer::record_batch`] once per issue group,
    /// instead of paying a cold call per event. Always empty between
    /// public calls, so [`Simulator::observer`] stays consistent.
    obs_buf: [ObsEvent; OBS_BATCH],
    obs_buf_len: u8,
    warm_cycle_offset: u64,
    stats: SimStats,
    /// Debug-build cross-check for the event-horizon protocol: the last
    /// `(now, horizon)` reported by [`Simulator::next_event_cycle`].
    /// While the machine is quiescent (no issue in between) the horizon
    /// must never move backward; issuing invalidates the probe.
    #[cfg(debug_assertions)]
    horizon_probe: std::cell::Cell<Option<(u64, u64)>>,
}

impl<'cfg> Simulator<'cfg> {
    /// Creates a simulator borrowing `cfg` (no per-simulation clone).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn new(cfg: &'cfg MachineConfig) -> Simulator<'cfg> {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        let line = cfg.line_bytes;
        Simulator {
            cfg,
            now: 0,
            icache: DecodedICache::new(Geometry::new(cfg.icache_bytes, line)),
            last_fetch_pair: None,
            after_ctl: None,
            delay_pending: None,
            int_score: [(0, StallCause::RawDep); 32],
            hilo: (0, StallCause::RawDep),
            rob: ReorderBuffer::new(cfg.rob_entries),
            dcache: DirectMappedCache::new(Geometry::new(cfg.dcache_bytes, line)),
            dcache_port_free: 0,
            pending_fills: Vec::new(),
            next_fill_at: u64::MAX,
            write_cache: WriteCache::new(cfg.write_cache_lines),
            mshrs: MshrFile::new(cfg.mshr_entries),
            streams: cfg
                .prefetch_enabled
                .then(|| StreamBuffers::new(cfg.prefetch_buffers, cfg.prefetch_depth)),
            biu: Biu::new(cfg.memory_latency, line, cfg.seed),
            istream: StreamStats::default(),
            dstream: StreamStats::default(),
            fpu: Fpu::new(cfg.fpu.clone()),
            pending: VecDeque::with_capacity(2),
            issue_log: None,
            fetch_bubble: 0,
            obs: cfg
                .observe
                .then(|| Box::new(Observer::new(crate::obs::DEFAULT_RING_CAPACITY))),
            obs_buf: [ObsEvent {
                cycle: 0,
                kind: ObsEventKind::Retire,
            }; OBS_BATCH],
            obs_buf_len: 0,
            warm_cycle_offset: 0,
            stats: SimStats::default(),
            #[cfg(debug_assertions)]
            horizon_probe: std::cell::Cell::new(None),
        }
    }

    /// Discards all statistics gathered so far while keeping the
    /// microarchitectural state (cache contents, queues, in-flight work).
    /// Call after feeding a warm-up prefix so cold-start transients do not
    /// skew short measurements; the paper's multi-million-instruction
    /// traces amortise warm-up implicitly. The dual-issue look-ahead may
    /// carry at most one warm-up instruction across the mark.
    pub fn mark_warm(&mut self) {
        self.stats = SimStats::default();
        self.warm_cycle_offset = self.now;
        self.icache.reset_stats();
        self.dcache.reset_stats();
        self.write_cache.reset_stats();
        self.mshrs.reset_stats();
        self.biu.reset_stats();
        self.istream = StreamStats::default();
        self.dstream = StreamStats::default();
        self.fpu.reset_stats();
        self.obs_buf_len = 0;
        if let Some(o) = self.obs.as_deref_mut() {
            o.reset();
        }
    }

    /// Stages one observer event in the fixed batch buffer. Call only
    /// when an observer is attached; the buffer is flushed per issue
    /// group (and mid-group if it ever fills), preserving exact event
    /// order relative to per-event recording.
    #[inline]
    fn obs_record(&mut self, cycle: u64, kind: ObsEventKind) {
        debug_assert!(self.obs.is_some(), "staging without an observer");
        if usize::from(self.obs_buf_len) >= OBS_BATCH {
            self.flush_obs();
        }
        if let Some(slot) = self.obs_buf.get_mut(usize::from(self.obs_buf_len)) {
            *slot = ObsEvent { cycle, kind };
            self.obs_buf_len += 1;
        }
    }

    /// Flushes the staged events to the observer in insertion order.
    #[cold]
    #[inline(never)]
    fn flush_obs(&mut self) {
        let n = usize::from(self.obs_buf_len);
        self.obs_buf_len = 0;
        if let Some(o) = self.obs.as_deref_mut() {
            o.record_batch(self.obs_buf.get(..n).unwrap_or(&[]));
        }
    }

    /// Attaches (or replaces) a cycle-event [`Observer`] with a ring of
    /// `capacity` events, regardless of [`MachineConfig::observe`].
    /// Retrieve it with [`Simulator::observer`] or
    /// [`Simulator::finish_observed`].
    pub fn enable_observer(&mut self, capacity: usize) {
        self.obs = Some(Box::new(Observer::new(capacity)));
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&Observer> {
        self.obs.as_deref()
    }

    /// Keeps a rolling log of the most recent `capacity` issued
    /// instructions (cycle, stall attribution, pairing) for inspection
    /// with [`Simulator::issue_log`].
    pub fn enable_issue_log(&mut self, capacity: usize) {
        self.issue_log = Some((capacity.max(1), VecDeque::with_capacity(capacity.max(1))));
    }

    /// The rolling issue log, oldest first (empty unless
    /// [`Simulator::enable_issue_log`] was called).
    pub fn issue_log(&self) -> impl Iterator<Item = &IssueRecord> {
        self.issue_log.iter().flat_map(|(_, log)| log.iter())
    }

    fn log_issue(&mut self, rec: IssueRecord) {
        if let Some((cap, log)) = self.issue_log.as_mut() {
            if log.len() == *cap {
                log.pop_front();
            }
            log.push_back(rec);
        }
    }

    /// The configuration this simulator runs.
    pub fn config(&self) -> &MachineConfig {
        self.cfg
    }

    /// The current issue-clock cycle. Monotone within a run; the sampling
    /// estimator measures windows as deltas of
    /// `(cycle, retired_instructions)` pairs.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Instructions issued so far (the dual-issue look-ahead queue may
    /// hold one further op that has been fed but not yet issued).
    pub fn retired_instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Feeds one trace op; issues as soon as pairing look-ahead allows.
    pub fn feed(&mut self, op: TraceOp) {
        self.pending.push_back(op);
        while self.pending.len() >= 2 {
            self.issue_group();
        }
    }

    /// Feeds a whole captured trace, decoding packed records on the fly.
    ///
    /// This is the replay half of the capture-once / replay-many workflow
    /// (§4.1): the trace is borrowed, so one capture can drive any number
    /// of simulators — concurrently, behind an `Arc` — without
    /// re-emulating the workload or cloning the op buffer.
    ///
    /// The issue loop runs straight off the packed record slice: the
    /// pairing look-ahead reads `ops[i + 1]` in place, so the per-op
    /// queue shuffle [`Simulator::feed`] pays for incremental delivery
    /// disappears from the replay hot path.
    pub fn feed_packed(&mut self, trace: &PackedTrace) {
        self.feed_records(trace.records());
    }

    /// [`Simulator::feed_packed`] over a raw record slice. The sampling
    /// driver uses this to run an arbitrary window of a shared capture
    /// in detail without re-slicing the owning [`PackedTrace`].
    // lint:allow(L002): every index is bounds-guarded by the explicit
    // `i + 1 < ops.len()` checks on each loop path; `get()` would add an
    // unwrap branch per replayed record to the hottest loop in the tree
    pub fn feed_records(&mut self, ops: &[PackedOp]) {
        let mut i = 0;
        // Ops buffered by earlier feed() calls pair with the trace head.
        while i < ops.len() && !self.pending.is_empty() {
            self.feed(ops[i].unpack());
            i += 1;
        }
        if i + 1 < ops.len() {
            // Each record is decoded exactly once: the look-ahead partner
            // becomes the next head when the pair does not dual-issue.
            let mut first = ops[i].unpack();
            loop {
                let second = ops[i + 1].unpack();
                if self.issue_pair(&first, Some(&second)) {
                    // The loop was entered with `i + 1 < len`, so the
                    // pair path lands `i` on `len` (even tail: both
                    // consumed, nothing left), `len - 1` (odd tail: one
                    // unpaired record kept for the next feed), or
                    // earlier — it can never exceed `len`, and no record
                    // is ever skipped. The odd/single-record tails are
                    // pinned by regression tests in the block
                    // differential suite.
                    i += 2;
                    debug_assert!(i <= ops.len());
                    if i == ops.len() {
                        return;
                    }
                    if i + 1 == ops.len() {
                        self.pending.push_back(ops[i].unpack());
                        return;
                    }
                    first = ops[i].unpack();
                } else {
                    i += 1;
                    if i + 1 == ops.len() {
                        self.pending.push_back(second);
                        return;
                    }
                    first = second;
                }
            }
        }
        if i < ops.len() {
            // The final op has no pair partner yet; it issues on the next
            // feed or at finish(), exactly as incremental delivery would.
            self.pending.push_back(ops[i].unpack());
        }
    }

    /// Feeds a lowered [`BlockTrace`], replaying whole basic-block
    /// superinstructions at a time.
    ///
    /// Each dynamic block instance resolves to a pre-decoded template:
    /// no per-op unpack, and the template pool stays hot in cache while
    /// replay streams one `u32` id per block. Inside a block, maximal
    /// *batchable* runs — every op except control flow, pre-analysed
    /// at lowering time with their dynamic-source-check mask — execute
    /// through a specialised issue loop whose per-group work is
    /// trimmed to exactly the constraints the lowering could not
    /// discharge (ROB space, the data-cache port, MSHRs, the FPU issue
    /// queue, flagged sources, I-cache residency on fetch-pair
    /// transition). Runs may be entered at any interior op, so the
    /// fast path re-engages right after the delay-slot/redirect groups
    /// that follow a taken branch. Anything the loop does not model —
    /// an attached observer or issue log, naive cycle stepping — falls
    /// back to the full per-op [`issue_pair`](Simulator::feed) path,
    /// so [`SimStats`] stay bit-identical to per-op replay (asserted
    /// by the block differential suite).
    pub fn feed_blocks(&mut self, blocks: &BlockTrace) {
        // The fast path replicates the per-op walk only under the
        // default skip-mode semantics with no event consumers attached;
        // anything else falls back wholesale.
        let fast_ok = self.cfg.cycle_skip
            && self.cfg.block_replay
            && self.obs.is_none()
            && self.issue_log.is_none();
        for &tid in blocks.instances() {
            let Some(tmpl) = blocks.templates().get(tid as usize) else {
                debug_assert!(false, "block instance {tid} out of range");
                continue;
            };
            let ops = blocks.ops_of(tmpl);
            let mut i = 0usize;
            // Ops buffered by earlier feed() calls pair among themselves
            // first (only possible before the first block; block replay
            // itself carries at most one tail op)...
            while self.pending.len() >= 2 {
                self.issue_group();
            }
            // ...then the carried tail pairs with the block head through
            // one direct issue_pair call — the same (first, second)
            // arguments feed()'s queue would produce, without the
            // queue's issue-until-dual drain serialising the block.
            if let Some(&carry) = self.pending.front() {
                if let Some(&head) = ops.get(i) {
                    if self.issue_pair(&carry, Some(&head)) {
                        i += 1;
                    }
                    self.pending.pop_front();
                }
            }
            while i < ops.len() {
                if fast_ok {
                    if let Some(j) = self.try_fast_run(tmpl, ops, i) {
                        i = j;
                        continue;
                    }
                }
                let Some(first) = ops.get(i) else { break };
                match ops.get(i + 1) {
                    Some(second) => {
                        if self.issue_pair(first, Some(second)) {
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    None => {
                        // The block's last op may pair with the next
                        // block's head: defer it through the pending
                        // queue, exactly like feed_packed's odd tail.
                        self.pending.push_back(*first);
                        i += 1;
                    }
                }
            }
        }
    }

    /// Executes the batchable run containing op index `i` (entered at
    /// `i`, which may lie anywhere inside the run) through the
    /// superinstruction fast path. Returns the next op index (> `i`)
    /// when the run was taken, or `None` to fall back to the generic
    /// per-op path for this position.
    ///
    /// The loop is [`issue_pair`](Simulator::feed) with everything the
    /// lowering pre-resolved stripped out; what remains is exact, not
    /// approximate — it performs the same state updates in the same
    /// order, so [`SimStats`] stay bit-identical:
    ///
    /// * *Fetch* collapses to a residency check and probe on pair
    ///   transition. A resident line's probe is a guaranteed hit and
    ///   never binds (nothing in a run can evict an I-cache line); a
    ///   non-resident line exits the batch at the missing op, leaving
    ///   the miss to the generic path — so a run batches exactly its
    ///   resident prefix.
    /// * *Sources* are checked only for ops whose `need_src` bit is
    ///   set: live-in readers and readers of an in-run load or mul/div
    ///   result. A not-ready source binds the group's issue time with
    ///   the same first-wins attribution `issue_pair` would record, so
    ///   entry needs no readiness pre-check at all. Every other source
    ///   is forwarded one cycle after an earlier in-run ALU group —
    ///   ready no later than the group's fetch-bound lower bound —
    ///   whether that producer issued inside this batch or on the
    ///   generic path before a mid-run entry.
    /// * *ROB, data-cache port, MSHR and store-queue* constraints are
    ///   gathered per group exactly as `issue_pair` gathers them, in
    ///   the same first-wins order with the same lazy drains, and a
    ///   binding constraint stalls the group in place — the batch
    ///   never has to abort mid-run.
    /// * *Execution* is the shared [`execute`](Simulator::feed) arms:
    ///   loads, stores and FP loads/stores run their full LSU paths
    ///   (miss service, fills, MSHR traffic included). Batchable ops
    ///   never arm the fetch redirect, so the delay-slot chain the
    ///   loop skips is provably quiescent.
    fn try_fast_run(&mut self, tmpl: &BlockTemplate, ops: &[TraceOp], i: usize) -> Option<usize> {
        debug_assert!(self.pending.is_empty());
        let end = i + (tmpl.batch_mask >> (i as u32 & 63)).trailing_ones() as usize;
        if end < i + MIN_FAST_RUN {
            return None;
        }
        let dual_width = self.cfg.issue_width == IssueWidth::Dual;
        let mut j = i;
        // A group whose partner would lie beyond the run exits to the
        // generic path, which owns every cross-boundary pairing call.
        while j + 1 < end {
            // Superinstruction apply: a pre-compiled schedule covers
            // this position, no redirect is armed, and the grouping was
            // computed under this issue width — check its preconditions
            // once and apply the whole stretch in O(registers + lines).
            if bit(tmpl.plan_mask, j) && self.delay_pending.is_none() && self.after_ctl.is_none() {
                let rank = (tmpl.plan_mask & ((1u64 << (j as u32 & 63)) - 1)).count_ones() as usize;
                if let Some(plan) = tmpl.plans.get(rank) {
                    debug_assert_eq!(usize::from(plan.entry), j);
                    if dual_width || plan.duals == 0 {
                        if let Some(n) = self.try_apply_plan(plan, ops) {
                            j += n;
                            continue;
                        }
                    }
                }
            }
            #[cfg(debug_assertions)]
            self.horizon_probe.set(None);
            if self.next_fill_at <= self.now {
                self.apply_fills(self.now);
            }
            let Some(a) = ops.get(j) else { return Some(j) };
            // Fetch. The overwhelmingly common case — same pair, or a
            // transition onto a resident line with no redirect armed —
            // collapses to a compare (plus the per-op path's stats
            // probe on transition). A pending delay-slot redirect or a
            // non-resident line takes the full fetch call instead: the
            // redirect's folding bookkeeping and the miss service are
            // the *same calls* the generic path makes, so the batch
            // rides straight through taken branches and cold lines.
            let redirect = self.delay_pending.take();
            let pair = u64::from(a.pc) >> 3;
            let t_fetch = if redirect.is_some() {
                self.fetch(u64::from(a.pc), redirect)
            } else if self.last_fetch_pair != Some(pair) {
                if self.icache.contains(u64::from(a.pc)) {
                    self.last_fetch_pair = Some(pair);
                    self.fetch_bubble = 0;
                    let hit = self.icache.probe(u64::from(a.pc));
                    debug_assert!(hit, "residency-checked fetch line must hit");
                    self.now
                } else {
                    self.fetch(u64::from(a.pc), None)
                }
            } else {
                self.fetch_bubble = 0;
                self.now
            };
            // Constraint gathering in issue_pair's exact order — fetch,
            // sources, ROB, then memory — first-wins on ties.
            let mut binding = (t_fetch, StallCause::Icache);
            if bit(tmpl.need_src, j) {
                for src in a.sources() {
                    let cand = self.reg_ready(src);
                    if cand.0 > binding.0 {
                        binding = cand;
                    }
                }
            }
            if needs_rob(a.kind) && !self.rob.has_space() {
                self.rob.drain(self.now);
                if !self.rob.has_space() {
                    if let Some(free) = self.rob.next_free_at() {
                        if free > binding.0 {
                            binding = (free, StallCause::Structural);
                        }
                    }
                }
            }
            if a.kind.is_memory() {
                if self.dcache_port_free > binding.0 {
                    binding = (self.dcache_port_free, StallCause::DcacheStoreBufferFull);
                }
                self.mshrs.expire(self.now);
                if !self.mshrs.has_free() && !self.can_merge(a) {
                    if let Some(free) = self.mshrs.earliest_completion() {
                        if free > binding.0 {
                            binding = (free, StallCause::MshrFull);
                        }
                    }
                }
                if matches!(a.kind, OpKind::FpStore { .. }) {
                    let free = self.fpu.stq_space_at(self.now);
                    if free > binding.0 {
                        binding = (free, StallCause::FpuSyncQueue);
                    }
                }
            }
            if a.kind.is_fpu() {
                let free = self.fpu.iq_space_at(self.now);
                if free > binding.0 {
                    binding = (free, StallCause::FpuSyncQueue);
                }
            }
            let (t, cause) = binding;
            if t > self.now {
                // lint:allow(L002): StallKind indexing is a total
                // enum-to-array map via Index impl, not a fallible index
                self.stats.stalls[cause.kind()] += t - self.now;
            }
            // advance_to(t), with the MSHR expiry elided for non-memory
            // groups: expiry is lazy and idempotent, and every MSHR
            // reader (the memory-constraint block above, the dual check
            // below, the LSU execute paths) re-expires before reading,
            // so deferring it cannot change any observable state.
            if a.kind.is_memory() {
                self.advance_to(t);
            } else if self.next_fill_at <= t {
                self.apply_fills(t);
            }
            // Dual partner: the static rules were pre-resolved into
            // pair_ok; the partner's dynamic checks follow can_dual_issue
            // in its side-effect order (sources, ROB drain, memory).
            let mut dual = dual_width && bit(tmpl.pair_ok, j);
            if dual {
                let Some(b) = ops.get(j + 1) else {
                    return Some(j);
                };
                if bit(tmpl.need_src, j + 1) && b.sources().any(|s| self.reg_ready(s).0 > t) {
                    dual = false;
                }
                let rob_needed = usize::from(needs_rob(a.kind)) + usize::from(needs_rob(b.kind));
                if dual && rob_needed > 0 && self.rob.capacity() - self.rob.occupancy() < rob_needed
                {
                    self.rob.drain(t);
                    if self.rob.capacity() - self.rob.occupancy() < rob_needed {
                        dual = false;
                    }
                }
                if dual && b.kind.is_memory() {
                    if self.dcache_port_free > t {
                        dual = false;
                    } else {
                        self.mshrs.expire(t);
                        if (!self.mshrs.has_free() && !self.can_merge(b))
                            || (matches!(b.kind, OpKind::FpStore { .. })
                                && self.fpu.stq_space_at(t) > t)
                        {
                            dual = false;
                        }
                    }
                }
                if dual && b.kind.is_fpu() {
                    // can_dual_issue's two-slot admission check, call
                    // for call (iq_space_at is re-queried for the
                    // second slot's margin).
                    if self.fpu.iq_space_at(t) > t
                        || (1 + usize::from(a.kind.is_fpu()) == 2 && self.fpu.iq_space_at(t) > t)
                    {
                        dual = false;
                    }
                }
            }
            self.exec_batched(a, t);
            self.stats.instructions += 1;
            if dual {
                if let Some(b) = ops.get(j + 1) {
                    self.exec_batched(b, t);
                    self.stats.instructions += 1;
                    self.stats.dual_issues += 1;
                }
            }
            self.now = t + 1;
            j += if dual { 2 } else { 1 };
        }
        // A break on the very first group (non-resident fetch line at
        // the entry op) made no progress: report "not taken" so the
        // caller's generic path services the miss.
        (j > i).then_some(j)
    }

    /// Applies a pre-compiled segment schedule ([`SegPlan`]) when none
    /// of its dynamic preconditions can bind. Under those
    /// preconditions every group the batched loop would form resolves
    /// at the fetch lower bound — `t == now` for each group, one cycle
    /// apart — with the exact grouping the lowering computed:
    ///
    /// * every flagged source (live-in or slow in-run producer) ready
    ///   at entry — stricter than the per-group check at each group's
    ///   later issue time, so rejection only falls back, never
    ///   diverges. Flagged readers of *in-stretch* slow results were
    ///   excluded at lowering time;
    /// * ROB space for every op up front, after at most one eager
    ///   drain. Retirement times are fixed by the push sequence and
    ///   `drain` is idempotent, so draining earlier than the lazy
    ///   per-group drains is unobservable (peak occupancy is updated
    ///   inside `try_push` and the push times are identical);
    /// * for stretches with memory ops, an idle data-cache port and a
    ///   free MSHR per memory op. In-plan updates keep both
    ///   non-binding: each memory op holds the port exactly one cycle
    ///   and the next group issues a cycle later, and allocations
    ///   cannot exhaust the pre-counted registers (expiry only frees
    ///   more);
    /// * every fetch-pair transition lands on a resident line — the
    ///   per-group walk would probe each exactly once, all hits, and
    ///   nothing inside a stretch can evict an I-cache line.
    ///
    /// Pure-ALU stretches (`dynamic_ops == 0`, no fill due before the
    /// last group) then apply the pre-summed effects in
    /// O(registers + lines): `credit_hits` for the probes, one
    /// scoreboard write per live register, the ROB pushes. Stretches
    /// with loads, stores or mul/div walk their groups through a
    /// stripped schedule instead — only the LSU execution and the
    /// per-cycle fill-arrival check remain; a due fill stops the walk
    /// at that group boundary, where the state equals the per-group
    /// loop's, and hands the rest back.
    ///
    /// Returns the ops consumed, or `None` when any precondition
    /// fails and the caller's per-group loop must walk the stretch.
    fn try_apply_plan(&mut self, plan: &SegPlan, ops: &[TraceOp]) -> Option<usize> {
        let now = self.now;
        let entry = usize::from(plan.entry);
        let entry_pc = ops.get(entry).map_or(0, |op| op.pc);
        let mut srcs = plan.src_mask & ((1u64 << HILO_BIT) - 1);
        while srcs != 0 {
            let r = srcs.trailing_zeros() as usize;
            srcs &= srcs - 1;
            if self.int_score.get(r).is_some_and(|s| s.0 > now) {
                return None;
            }
        }
        if plan.src_mask >> HILO_BIT != 0 && self.hilo.0 > now {
            return None;
        }
        if plan.reads_fpcond && self.fpu.fpcc_ready() > now {
            return None;
        }
        let need = usize::from(plan.consumed);
        if self.rob.capacity() - self.rob.occupancy() < need {
            self.rob.drain(now);
            if self.rob.capacity() - self.rob.occupancy() < need {
                return None;
            }
        }
        if plan.mem_ops > 0 {
            if self.dcache_port_free > now {
                return None;
            }
            self.mshrs.expire(now);
            if self.mshrs.capacity() - self.mshrs.occupancy() < usize::from(plan.mem_ops) {
                return None;
            }
        }
        let entry_trans = self.last_fetch_pair != Some(u64::from(entry_pc) >> 3);
        if entry_trans && !self.icache.contains(u64::from(entry_pc)) {
            return None;
        }
        for &pc in &plan.probe_pcs {
            if !self.icache.contains(u64::from(pc)) {
                return None;
            }
        }
        #[cfg(debug_assertions)]
        self.horizon_probe.set(None);
        if plan.dynamic_ops == 0 {
            // Bulk apply: every effect is static. Requires no fill due
            // before the stretch's last group, matching the
            // `next_fill_at` checks the per-group loop makes at each
            // of its `groups` cycles.
            if self.next_fill_at < now + u64::from(plan.groups) {
                return None;
            }
            self.icache
                .credit_hits(plan.probe_pcs.len() as u64 + u64::from(entry_trans));
            self.last_fetch_pair = Some(u64::from(plan.final_pair));
            self.fetch_bubble = 0;
            for &(reg, g) in &plan.writes {
                if let Some(slot) = self.int_score.get_mut(usize::from(reg)) {
                    *slot = (now + u64::from(g) + 1, StallCause::RawDep);
                }
            }
            if let Some(g) = plan.hilo_write {
                self.hilo = (now + u64::from(g) + 1, StallCause::RawDep);
            }
            for &g in &plan.rob_groups {
                let pushed = self.rob.try_push(now + u64::from(g) + 2);
                debug_assert!(pushed, "plan pre-checked ROB space for every op");
            }
            self.stats.instructions += u64::from(plan.consumed);
            self.stats.dual_issues += u64::from(plan.duals);
            self.now = now + u64::from(plan.groups);
            return Some(usize::from(plan.consumed));
        }
        // Group walk with all issue decisions pre-resolved.
        let mut j = entry;
        let mut t = now;
        let mut walked = 0u64;
        let mut dual_groups = 0u64;
        for g in 0..usize::from(plan.groups) {
            if self.next_fill_at <= t {
                break;
            }
            if g == 0 {
                if entry_trans {
                    let hit = self.icache.probe(u64::from(entry_pc));
                    debug_assert!(hit, "plan pre-checked the entry line");
                    self.last_fetch_pair = Some(u64::from(entry_pc) >> 3);
                }
            } else if bit(plan.probe_mask, g) {
                let pc = ops.get(j).map_or(0, |op| u64::from(op.pc));
                let hit = self.icache.probe(pc);
                debug_assert!(hit, "plan pre-checked every transition line");
                self.last_fetch_pair = Some(pc >> 3);
            }
            let Some(a) = ops.get(j) else { break };
            let dual = bit(plan.dual_mask, g);
            // The per-group loop expires MSHRs at `t` before executing a
            // memory op (advance_to for a leader, the dual-partner check
            // for a partner); allocation-time occupancy — and thus
            // `peak_occupancy` — depends on it.
            if a.kind.is_memory() || (dual && ops.get(j + 1).is_some_and(|b| b.kind.is_memory())) {
                self.mshrs.expire(t);
            }
            self.exec_batched(a, t);
            walked += 1;
            if dual {
                if let Some(b) = ops.get(j + 1) {
                    self.exec_batched(b, t);
                    walked += 1;
                    dual_groups += 1;
                }
            }
            j += 1 + usize::from(dual);
            t += 1;
        }
        if j == entry {
            return None;
        }
        self.fetch_bubble = 0;
        self.stats.instructions += walked;
        self.stats.dual_issues += dual_groups;
        self.now = t;
        Some(j - entry)
    }

    /// [`execute`](Simulator::feed) for ops inside a batched run: the
    /// dominant ALU/nop arm is inlined ahead of the full dispatch. The
    /// delay-slot chain is replicated verbatim — a batch entered right
    /// behind a taken branch moves the armed redirect into
    /// `delay_pending` on its first op, exactly as the generic path
    /// would, and the next group's fetch consumes it.
    #[inline]
    fn exec_batched(&mut self, op: &TraceOp, t: u64) {
        if let Some(r) = self.after_ctl.take() {
            self.delay_pending = Some(r);
        }
        match op.kind {
            OpKind::IntAlu | OpKind::Nop => {
                self.write_int(op.dst, t + 1, StallCause::RawDep);
                self.push_rob(t + 2);
            }
            _ => self.execute(op, t),
        }
    }

    /// Flushes remaining ops and returns the final statistics.
    pub fn finish(self) -> SimStats {
        self.finish_observed().0
    }

    /// Like [`Simulator::finish`], but also hands back the attached
    /// [`Observer`] (if any) so callers can inspect the event ring,
    /// per-cause stall attribution and histograms after the run.
    pub fn finish_observed(mut self) -> (SimStats, Option<Observer>) {
        while !self.pending.is_empty() {
            self.issue_group();
        }
        let mut stats = self.stats;
        stats.cycles = self
            .now
            .max(self.rob.drained_at())
            .max(self.fpu.drained_at())
            .saturating_sub(self.warm_cycle_offset);
        stats.icache = self.icache.stats();
        stats.dcache = self.dcache.stats();
        stats.istream = self.istream;
        stats.dstream = self.dstream;
        stats.write_cache = self.write_cache.stats();
        stats.mshr = self.mshrs.stats();
        stats.biu = self.biu.stats();
        stats.fp_instructions = self.fpu.stats().dispatched;
        stats.fp_dual_issues = self.fpu.stats().dual_issues;
        (stats, self.obs.take().map(|b| *b))
    }

    /// Issues the next group from the pending queue (one instruction, or
    /// an aligned dual pair).
    fn issue_group(&mut self) {
        let Some(&first) = self.pending.front() else {
            return;
        };
        let second = self.pending.get(1).copied();
        let consumed_pair = self.issue_pair(&first, second.as_ref());
        self.pending.pop_front();
        if consumed_pair {
            self.pending.pop_front();
        }
    }

    /// Issues `first` — plus `second` in the same cycle when the
    /// dual-issue rules allow — and returns whether the partner was
    /// consumed. This is the whole issue stage; callers own op delivery
    /// (the pending queue for [`Simulator::feed`], the packed record
    /// slice for [`Simulator::feed_packed`]).
    fn issue_pair(&mut self, first: &TraceOp, second: Option<&TraceOp>) -> bool {
        // Issuing mutates unit state, so any previously probed event
        // horizon is void from here on.
        #[cfg(debug_assertions)]
        self.horizon_probe.set(None);
        if self.next_fill_at <= self.now {
            self.apply_fills(self.now);
        }

        // --- Constraint gathering for the first instruction -------------
        let redirect = self.delay_pending.take();
        let t_fetch = self.fetch(u64::from(first.pc), redirect);
        let mut binding = (t_fetch, StallCause::Icache);
        let consider = |cand: (u64, StallCause), binding: &mut (u64, StallCause)| {
            if cand.0 > binding.0 {
                *binding = cand;
            }
        };

        for src in first.sources() {
            consider(self.reg_ready(src), &mut binding);
        }
        if needs_rob(first.kind) && !self.rob.has_space() {
            // Retirement is in-order and monotone, so draining lazily —
            // only when the buffer looks full — frees exactly the same
            // entries an eager per-cycle drain would have.
            self.rob.drain(self.now);
            if !self.rob.has_space() {
                // A full ROB always has entries, so `next_free_at` is Some;
                // were it ever None there would simply be no constraint.
                if let Some(free) = self.rob.next_free_at() {
                    consider((free, StallCause::Structural), &mut binding);
                }
            }
        }
        if first.kind.is_memory() {
            consider(
                (self.dcache_port_free, StallCause::DcacheStoreBufferFull),
                &mut binding,
            );
            self.mshrs.expire(self.now);
            if !self.mshrs.has_free() && !self.can_merge(first) {
                // A full MSHR file always has an earliest completion.
                if let Some(free) = self.mshrs.earliest_completion() {
                    consider((free, StallCause::MshrFull), &mut binding);
                }
            }
            if matches!(first.kind, OpKind::FpStore { .. }) {
                consider(
                    (self.fpu.stq_space_at(self.now), StallCause::FpuSyncQueue),
                    &mut binding,
                );
            }
        }
        if first.kind.is_fpu() {
            consider(
                (self.fpu.iq_space_at(self.now), StallCause::FpuSyncQueue),
                &mut binding,
            );
        }

        let (t, cause) = binding;
        let pre_issue_now = self.now;
        let t = t.max(self.now);
        if t > self.now {
            // lint:allow(L002): StallKind indexing is a total enum-to-array
            // map via Index impl, not a fallible slice index
            self.stats.stalls[cause.kind()] += t - self.now;
            if self.obs.is_some() {
                self.note_stall(pre_issue_now, t - self.now, cause);
            }
        }
        self.advance_to(t);

        // --- Dual-issue check for the pair partner ----------------------
        let dual = second
            .map(|s| self.can_dual_issue(first, s, t))
            .unwrap_or(false);

        // --- Execute -----------------------------------------------------
        self.execute(first, t);
        self.stats.instructions += 1;
        if self.obs.is_some() {
            self.obs_record(
                t,
                ObsEventKind::Issue {
                    pc: first.pc,
                    dual: false,
                },
            );
        }
        if self.issue_log.is_some() {
            let stall_cycles = t.saturating_sub(pre_issue_now);
            self.log_issue(IssueRecord {
                cycle: t,
                pc: first.pc,
                kind: first.kind,
                dual_with_prev: false,
                stall_cycles,
                stall_cause: (stall_cycles > 0).then_some(cause),
            });
        }
        if let (true, Some(s)) = (dual, second) {
            self.execute(s, t);
            self.stats.instructions += 1;
            self.stats.dual_issues += 1;
            if self.obs.is_some() {
                self.obs_record(
                    t,
                    ObsEventKind::Issue {
                        pc: s.pc,
                        dual: true,
                    },
                );
            }
            if self.issue_log.is_some() {
                self.log_issue(IssueRecord {
                    cycle: t,
                    pc: s.pc,
                    kind: s.kind,
                    dual_with_prev: true,
                    stall_cycles: 0,
                    stall_cause: None,
                });
            }
        }
        // One cold flush per issue group; a single compare when no
        // observer is attached (the buffer is then always empty).
        if self.obs_buf_len > 0 {
            self.flush_obs();
        }
        self.now = t + 1;
        dual
    }

    /// Records a stall region in the observer, splitting an ICache-bound
    /// stall into its unfolded-branch bubble (if any) and the miss
    /// service proper. The split refines attribution only — both halves
    /// fold back onto [`StallKind::ICache`](crate::StallKind), so the
    /// coarse counters are untouched.
    #[cold]
    #[inline(never)]
    fn note_stall(&mut self, at: u64, cycles: u64, cause: StallCause) {
        let bubble = if cause == StallCause::Icache {
            self.fetch_bubble.min(cycles)
        } else {
            0
        };
        if self.obs.is_none() {
            return;
        }
        if bubble > 0 {
            self.obs_record(
                at,
                ObsEventKind::Stall {
                    cause: StallCause::Branch,
                    cycles: bubble,
                },
            );
        }
        if cycles > bubble {
            self.obs_record(
                at + bubble,
                ObsEventKind::Stall {
                    cause,
                    cycles: cycles - bubble,
                },
            );
        }
    }

    /// Advances unit state from `self.now` to the issue cycle `t`.
    ///
    /// In skip mode (the default) the clock jumps straight to `t`: the
    /// stall region is quiescent by construction — `t` is the binding
    /// constraint, the latest of the per-unit ready times — and deferred
    /// maintenance (fill application, ROB retirement, MSHR release) is
    /// monotone and path-independent, so performing it once at `t`
    /// reaches the same state as performing it each cycle. The naive
    /// reference mode walks every intervening cycle and performs
    /// maintenance at each, validating exactly that claim: both modes
    /// must produce bit-equal [`SimStats`].
    fn advance_to(&mut self, t: u64) {
        debug_assert!(t >= self.now, "clock moved backward: {} -> {t}", self.now);
        if self.cfg.cycle_skip {
            if self.next_fill_at <= t {
                self.apply_fills(t);
            }
            self.mshrs.expire(t);
        } else {
            let mut c = self.now;
            loop {
                self.apply_fills(c);
                self.rob.drain(c);
                self.mshrs.expire(c);
                if c >= t {
                    break;
                }
                c += 1;
            }
        }
    }

    /// The earliest cycle after the current one at which any unit's
    /// observable state can change: the aggregate event horizon. `None`
    /// means the machine is fully drained — nothing is in flight anywhere
    /// and only a new instruction can change state.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let now = self.now;
        let horizon = [
            (self.next_fill_at != u64::MAX).then_some(self.next_fill_at),
            self.mshrs.next_event_cycle(),
            self.rob.next_event_cycle(),
            self.biu.next_event_cycle(now),
            self.streams.as_ref().and_then(|s| s.next_event_cycle(now)),
            self.fpu.next_event_cycle(now),
            (self.dcache_port_free > now).then_some(self.dcache_port_free),
        ]
        .into_iter()
        .flatten()
        .filter(|&t| t > now)
        .min();
        // Monotonicity invariant: while the machine is quiescent (no issue
        // between two probes), the reported horizon must never move
        // backward — cycle skipping relies on exactly this to be safe.
        #[cfg(debug_assertions)]
        {
            let packed = horizon.unwrap_or(u64::MAX);
            if let Some((probe_now, probe_h)) = self.horizon_probe.get() {
                if probe_now == now {
                    debug_assert!(
                        packed >= probe_h,
                        "event horizon moved backward while quiescent at cycle {now}: \
                         {probe_h} -> {packed}"
                    );
                }
            }
            self.horizon_probe.set(Some((now, packed)));
        }
        horizon
    }

    /// Whether `second` can issue in the same cycle `t` as `first`.
    fn can_dual_issue(&mut self, first: &TraceOp, second: &TraceOp, t: u64) -> bool {
        if self.cfg.issue_width != IssueWidth::Dual {
            return false;
        }
        // Must be the aligned EVEN/ODD pair (Figure 3).
        if !first.pc.is_multiple_of(8) || second.pc != first.pc + 4 {
            return false;
        }
        // Only a single memory access instruction per cycle (§2).
        if first.kind.is_memory() && second.kind.is_memory() {
            return false;
        }
        // The DI bit: a true dependency inside the pair prohibits dual issue.
        if let Some(dst) = first.dst {
            if second.sources().any(|s| s == dst) {
                return false;
            }
        }
        // HI/LO and condition-code chains count as dependencies too.
        if matches!(first.kind, OpKind::FpCmp)
            && matches!(second.kind, OpKind::Branch { .. })
            && second.src1 == Some(ArchReg::FpCond)
        {
            return false;
        }
        // The partner's own operands and resources must be ready at `t`.
        if second.sources().any(|s| self.reg_ready(s).0 > t) {
            return false;
        }
        let rob_needed = usize::from(needs_rob(first.kind)) + usize::from(needs_rob(second.kind));
        if rob_needed > 0 && self.rob.capacity() - self.rob.occupancy() < rob_needed {
            self.rob.drain(t);
            if self.rob.capacity() - self.rob.occupancy() < rob_needed {
                return false;
            }
        }
        if second.kind.is_memory() {
            if self.dcache_port_free > t {
                return false;
            }
            self.mshrs.expire(t);
            if !self.mshrs.has_free() && !self.can_merge(second) {
                return false;
            }
            if matches!(second.kind, OpKind::FpStore { .. }) && self.fpu.stq_space_at(t) > t {
                return false;
            }
        }
        if second.kind.is_fpu() {
            let slots_needed = 1 + usize::from(first.kind.is_fpu());
            // iq_space_at only reports when one slot frees; for two slots
            // require space plus one in-queue margin.
            if self.fpu.iq_space_at(t) > t {
                return false;
            }
            if slots_needed == 2 && self.fpu.iq_space_at(t) > t {
                return false;
            }
        }
        true
    }

    /// Computes when the instruction at `pc` is available from the fetch
    /// unit, handling I-cache misses, stream buffers and branch folding.
    fn fetch(&mut self, pc: u64, redirect: Option<Redirect>) -> u64 {
        let pair = pc >> 3;
        let mut bubble = 0;
        if let Some(r) = redirect {
            if self.cfg.branch_folding && r.foldable && self.icache.can_fold(r.branch_pc, pc) {
                self.stats.folded_branches += 1;
            } else {
                self.stats.unfolded_branches += 1;
                bubble = 1;
            }
            self.last_fetch_pair = None;
        }
        if self.last_fetch_pair == Some(pair) {
            self.fetch_bubble = 0;
            return self.now;
        }
        self.last_fetch_pair = Some(pair);
        self.fetch_bubble = bubble;
        let t = self.now + bubble;
        if self.obs.is_some() {
            self.obs_record(t, ObsEventKind::Fetch { pc });
        }
        if self.icache.probe(pc) {
            return t;
        }
        // Instruction-cache miss: stream buffers, then the BIU.
        let line = self.icache.geometry().line(pc);
        let ready = self.service_miss(line, t, true);
        self.icache.fill(pc);
        if self.obs.is_some() {
            self.obs_record(
                t,
                ObsEventKind::IcacheMiss {
                    latency: ready.saturating_sub(t),
                },
            );
        }
        ready
    }

    /// Services a primary-cache miss for `line` at cycle `t`, returning
    /// when the line is on chip. `instr` selects the I or D stream for
    /// statistics and BIU priorities.
    fn service_miss(&mut self, line: LineAddr, t: u64, instr: bool) -> u64 {
        let kind = if instr {
            TransferKind::InstrFill
        } else {
            TransferKind::DataFill
        };
        let Some(streams) = self.streams.as_mut() else {
            return self.biu.request(t, kind);
        };
        let stats = if instr {
            &mut self.istream
        } else {
            &mut self.dstream
        };
        stats.probes += 1;
        match streams.probe(line, t) {
            StreamProbe::Hit { ready_at } => {
                stats.hits += 1;
                let biu = &mut self.biu;
                let mut issued = 0;
                streams.deepen(|_l| {
                    issued += 1;
                    biu.request(t, TransferKind::Prefetch)
                });
                stats.prefetches_issued += issued;
                ready_at.max(t) + STREAM_TRANSFER_CYCLES
            }
            StreamProbe::Miss => {
                let done = self.biu.request(t, kind);
                let biu = &mut self.biu;
                let mut issued = 0;
                streams.allocate(line, t, |_l| {
                    issued += 1;
                    biu.request(t, TransferKind::Prefetch)
                });
                stats.prefetches_issued += issued;
                stats.allocations += 1;
                done
            }
        }
    }

    /// Applies data-cache fills that have arrived by cycle `t`, in
    /// arrival order — the order a per-cycle walk would apply them, so
    /// skip and naive modes install lines into the cache identically.
    fn apply_fills(&mut self, t: u64) {
        if self.next_fill_at > t {
            return;
        }
        // lint:allow(L001): bounded stable sort — pending_fills is capped
        // by the MSHR file, and Rust's stable sort is allocation-free below
        // 21 elements; stability preserves skip/naive fill-order equality
        self.pending_fills.sort_by_key(|&(_, arrival)| arrival);
        let mut port = self.dcache_port_free;
        let mut due = 0;
        while let Some(&(line, arrival)) = self.pending_fills.get(due) {
            if arrival > t {
                break;
            }
            self.dcache.fill_line(line);
            // The fill occupies the data busses (§5.3 LSU-busy).
            port = port.max(arrival + FILL_BLOCK_CYCLES);
            due += 1;
        }
        self.pending_fills.drain(..due);
        self.next_fill_at = self.pending_fills.first().map_or(u64::MAX, |&(_, a)| a);
        self.dcache_port_free = port;
    }

    /// Ready time and stall attribution for a source register.
    fn reg_ready(&self, src: ArchReg) -> (u64, StallCause) {
        match src {
            ArchReg::Int(n) => self
                .int_score
                .get(n as usize)
                .copied()
                .unwrap_or((0, StallCause::RawDep)),
            ArchReg::HiLo => self.hilo,
            ArchReg::FpCond => (self.fpu.fpcc_ready(), StallCause::FpuSyncResult),
            // FP register timing lives inside the FPU; the IPU does not
            // wait on it at issue.
            ArchReg::Fp(_) => (0, StallCause::RawDep),
        }
    }

    /// Performs the effects of issuing `op` at cycle `t`.
    fn execute(&mut self, op: &TraceOp, t: u64) {
        // Delay-slot chaining: the op after a taken control transfer
        // arms the redirect for the *following* fetch.
        if let Some(r) = self.after_ctl.take() {
            self.delay_pending = Some(r);
        }

        match op.kind {
            OpKind::IntAlu | OpKind::Nop => {
                self.write_int(op.dst, t + 1, StallCause::RawDep);
                self.push_rob(t + 2);
            }
            OpKind::IntMul => {
                self.hilo = (t + INT_MUL_LATENCY, StallCause::RawDep);
                self.push_rob(t + 2);
            }
            OpKind::IntDiv => {
                self.hilo = (t + INT_DIV_LATENCY, StallCause::RawDep);
                self.push_rob(t + 2);
            }
            OpKind::Load { ea, width } => {
                let result = self.exec_load(u64::from(ea), width.bytes(), t);
                self.write_int(op.dst, result, StallCause::DcacheLoad);
                self.push_rob(result);
            }
            OpKind::Store { ea, width } => {
                self.exec_store(u64::from(ea), width.bytes(), t, t);
                self.push_rob(t + STORE_PIPE_LATENCY);
            }
            OpKind::FpLoad { ea, width } => {
                let result = self.exec_load(u64::from(ea), width.bytes(), t);
                let note = self.fpu.note_fp_load(op.dst, result);
                // A full load queue blocks the LSU pipe until it drains.
                self.dcache_port_free = self.dcache_port_free.max(note.admitted);
            }
            OpKind::FpStore { ea, width } => {
                let data_at = op.src2.map(|r| self.fpu.reg_ready(r)).unwrap_or(t);
                let commit = self.fpu.note_fp_store(t, data_at);
                self.exec_store(u64::from(ea), width.bytes(), t, commit);
            }
            OpKind::Branch { taken, target } => {
                self.record_ctl_pair(op.pc, Some(u64::from(target)));
                if taken {
                    self.after_ctl = Some(Redirect {
                        branch_pc: u64::from(op.pc),
                        foldable: true,
                    });
                }
                self.push_rob(t + 2);
            }
            OpKind::Jump { target, register } => {
                let static_target = (!register).then_some(u64::from(target));
                self.record_ctl_pair(op.pc, static_target);
                self.after_ctl = Some(Redirect {
                    branch_pc: u64::from(op.pc),
                    foldable: !register,
                });
                self.write_int(op.dst, t + 1, StallCause::RawDep);
                self.push_rob(t + 2);
            }
            kind if kind.is_fpu() => {
                let d = self.fpu.dispatch(op, t);
                if self.obs.is_some() {
                    let depth = self.fpu.iq_occupancy(t);
                    self.obs_record(t, ObsEventKind::FpQueueDepth { depth });
                }
                // `mfc1` delivers an integer result via the store queue.
                if let Some(ArchReg::Int(_)) = op.dst {
                    self.write_int(op.dst, d.result_at, StallCause::FpuSyncResult);
                }
            }
            // lint:allow(L002): the decoder emits only the kinds handled
            // above; a new OpKind must be wired in here, not silently
            // mistimed as an ALU op
            other => unreachable!("unhandled op kind {other:?}"),
        }
    }

    /// Executes a load's LSU/cache path, returning the register-write time.
    fn exec_load(&mut self, ea: u64, bytes: u32, t: u64) -> u64 {
        self.dcache_port_free = self.dcache_port_free.max(t + 1);
        let line = self.dcache.geometry().line(ea);
        if self.write_cache.load_probe(ea, bytes) {
            // On-chip hit: the MSHR frees as soon as the tags resolve.
            self.allocate_mshr_if_free(line, t, t + MSHR_HIT_HOLD);
            return t + WRITE_CACHE_LOAD_LATENCY;
        }
        if self.dcache.probe(ea) {
            self.allocate_mshr_if_free(line, t, t + MSHR_HIT_HOLD);
            return t + 1 + u64::from(self.cfg.dcache_latency);
        }
        if let Some(ready) = self.mshrs.lookup(line) {
            // Secondary miss: merge into the outstanding fill.
            return ready + 1;
        }
        let arrival = self.service_miss(line, t, false);
        self.pending_fills.push((line, arrival));
        self.next_fill_at = self.next_fill_at.min(arrival);
        let allocated = self.mshrs.allocate(line, arrival);
        debug_assert!(allocated.is_some(), "issue logic ensured a free MSHR");
        if self.obs.is_some() {
            let occupancy = self.mshrs.occupancy() as u64;
            self.obs_record(
                t,
                ObsEventKind::DcacheMiss {
                    latency: arrival - t,
                },
            );
            self.obs_record(t, ObsEventKind::MshrAlloc { occupancy });
            self.obs_record(arrival, ObsEventKind::MshrFree { held: arrival - t });
        }
        arrival + 1
    }

    /// Executes a store's LSU/write-cache path. `commit` is when the data
    /// is available (later than `t` for FP stores).
    fn exec_store(&mut self, ea: u64, bytes: u32, t: u64, commit: u64) {
        self.dcache_port_free = self.dcache_port_free.max(t + 1);
        let line = self.dcache.geometry().line(ea);
        let out = self.write_cache.store(ea, bytes, commit);
        if out.hit && self.obs.is_some() {
            self.obs_record(t, ObsEventKind::WriteCacheMerge);
        }
        if out.evicted.is_some() {
            self.biu.request(commit, TransferKind::WriteBack);
        }
        if out.needs_validation || !self.cfg.write_validation {
            self.biu.request(commit, TransferKind::Validation);
        }
        // Stores probe the data cache and allocate on miss *without*
        // fetching — Jouppi's write-validate policy (WRL 91/12, the
        // paper's reference [8]): the coalescing write cache supplies
        // whole lines with per-word valid bits, so no read traffic is
        // needed on a store miss.
        if !self.dcache.probe(ea) {
            self.dcache.fill(ea);
        }
        self.allocate_mshr_if_free(line, t, t + STORE_PIPE_LATENCY);
    }

    /// Reserves an MSHR for a memory instruction in the LSU pipe (§2.3:
    /// "an MSHR is reserved for each memory instruction active in the
    /// LSU"). The reservation starts at `t` and holds `until` the tags
    /// resolve. Hits release it when their data returns. If the file is
    /// momentarily full because the op merged instead, ride along.
    fn allocate_mshr_if_free(&mut self, line: LineAddr, t: u64, until: u64) {
        if self.mshrs.has_free() {
            let allocated = self.mshrs.allocate(line, until);
            debug_assert!(allocated.is_some(), "has_free was checked");
            if self.obs.is_some() {
                let occupancy = self.mshrs.occupancy() as u64;
                self.obs_record(t, ObsEventKind::MshrAlloc { occupancy });
                self.obs_record(
                    until,
                    ObsEventKind::MshrFree {
                        held: until.saturating_sub(t),
                    },
                );
            }
        }
    }

    /// Whether a memory op could merge into an outstanding MSHR entry.
    fn can_merge(&self, op: &TraceOp) -> bool {
        let Some(ea) = op.kind.effective_address() else {
            return false;
        };
        let is_load = matches!(op.kind, OpKind::Load { .. } | OpKind::FpLoad { .. });
        is_load && {
            let line = self.dcache.geometry().line(u64::from(ea));
            // A merge applies when the line misses but is already in
            // flight; probe is side-effect free, so no merge is counted
            // and no clone of the file is needed.
            !self.dcache.contains(u64::from(ea)) && self.mshrs.probe(line).is_some()
        }
    }

    #[inline]
    fn write_int(&mut self, dst: Option<ArchReg>, ready: u64, cause: StallCause) {
        match dst {
            Some(ArchReg::Int(n)) => {
                if let Some(slot) = self.int_score.get_mut(n as usize) {
                    *slot = (ready, cause);
                }
            }
            Some(ArchReg::HiLo) => self.hilo = (ready, cause),
            _ => {}
        }
    }

    #[inline]
    fn push_rob(&mut self, completes_at: u64) {
        if self.obs.is_some() {
            self.obs_record(completes_at, ObsEventKind::Retire);
        }
        if self.rob.try_push(completes_at) {
            return;
        }
        // Issue logic guaranteed space; a dual-issue partner may race
        // in degenerate configs, so fall back to draining.
        if let Some(free) = self.rob.next_free_at() {
            self.rob.drain(free);
        }
        let pushed = self.rob.try_push(completes_at);
        debug_assert!(pushed, "rob has space after draining to next_free_at");
    }

    /// Records the Figure 3 pre-decode fields for a control-flow pair.
    fn record_ctl_pair(&mut self, pc: u32, target: Option<u64>) {
        self.icache.record_pair(
            u64::from(pc),
            PairInfo {
                dual_issue_inhibit: false,
                has_control_flow: true,
                folded_target: target,
            },
        );
    }

    // --- Functional warming (SMARTS-style fast-forward) -----------------

    /// Fast-forwards over a captured trace with *functional warming*: ops
    /// retire at near-emulator speed — no issue constraints, no stall
    /// attribution, no clock movement — while the long-history state that
    /// determines a later window's accuracy keeps updating: I-cache tags
    /// and pre-decode, D-cache tags, write-cache lines, and stream-buffer
    /// allocation. Short-history state (scoreboard, ROB, queues, BIU
    /// busses) is left untouched; a detailed warm-up window re-fills it
    /// before measurement starts, exactly as SMARTS prescribes.
    ///
    /// Warming advances unit *state* silently: hit/miss/access counters
    /// do not move (residency checks are the stat-free `contains`
    /// variants), so statistics keep describing detailed execution
    /// only. A sampling estimator should nevertheless measure windows
    /// as *deltas* of `(cycle, instructions)` around the detailed
    /// region — which is what
    /// [`run_sampled`](crate::sample::run_sampled) does.
    pub fn warm_packed(&mut self, trace: &PackedTrace) {
        self.warm_records(trace.records());
    }

    /// [`Simulator::warm_packed`] over a raw record slice.
    pub fn warm_records(&mut self, ops: &[PackedOp]) {
        // Flush the dual-issue look-ahead through the detailed path so
        // warming starts from a consistent boundary, then drop any armed
        // control-transfer redirect: its timing context belongs to the
        // detailed region being abandoned.
        while !self.pending.is_empty() {
            self.issue_group();
        }
        self.after_ctl = None;
        self.delay_pending = None;
        // Warming never reads register operands: decode only pc + kind
        // (see `PackedOp::kind_only`). Two one-line memos elide repeated
        // probes of the line just touched: consecutive probes of one
        // line are idempotent on tag and LRU state (the first touch
        // makes it resident and most-recent; repeats change nothing),
        // so skipping them alters only probe counters — and warming
        // statistics are pollution the estimator ignores anyway. Each
        // memo is invalidated the moment a different line (or, for the
        // data side, any store) could disturb the residency it recalls.
        let mut warm_iline: Option<LineAddr> = None;
        let mut warm_dline: Option<LineAddr> = None;
        for rec in ops {
            let pc32 = rec.pc();
            let pc = u64::from(pc32);
            // I-stream: tag and pre-decode maintenance on pair
            // transition, mirroring fetch() minus all timing.
            if self.last_fetch_pair != Some(pc >> 3) {
                self.last_fetch_pair = Some(pc >> 3);
                let line = self.icache.geometry().line(pc);
                if warm_iline != Some(line) {
                    if !self.icache.contains(pc) {
                        self.warm_stream(line, true);
                        self.icache.fill(pc);
                    }
                    warm_iline = Some(line);
                }
            }
            match rec.kind_only() {
                OpKind::Load { ea, width } | OpKind::FpLoad { ea, width } => {
                    let ea = u64::from(ea);
                    let line = self.dcache.geometry().line(ea);
                    if warm_dline != Some(line) {
                        if !self.write_cache.load_covers(ea, width.bytes())
                            && !self.dcache.contains(ea)
                        {
                            self.warm_stream(line, false);
                            self.dcache.fill_line(line);
                        }
                        warm_dline = Some(line);
                    }
                }
                OpKind::Store { ea, width } | OpKind::FpStore { ea, width } => {
                    let ea = u64::from(ea);
                    // The eviction/validation outcome is bus traffic —
                    // timing state; warming only needs the line
                    // occupancy to evolve. A write-cache eviction or a
                    // data-cache fill here may displace whatever the
                    // load memo recalls, so drop it.
                    self.write_cache.warm_store(ea, width.bytes());
                    if !self.dcache.contains(ea) {
                        self.dcache.fill(ea);
                    }
                    warm_dline = None;
                }
                OpKind::Branch { target, .. } => {
                    self.record_ctl_pair(pc32, Some(u64::from(target)));
                }
                OpKind::Jump { target, register } => {
                    self.record_ctl_pair(pc32, (!register).then_some(u64::from(target)));
                }
                _ => {}
            }
        }
    }

    /// Stream-buffer maintenance for a warmed miss: the same probe /
    /// deepen / allocate sequence [`Simulator::service_miss`] performs,
    /// with zero-cycle issue callbacks in place of BIU requests so the
    /// allocation state (which buffer tracks which stream, LRU order,
    /// depths) evolves while the busses stay untouched.
    fn warm_stream(&mut self, line: LineAddr, instr: bool) {
        let Some(streams) = self.streams.as_mut() else {
            return;
        };
        let now = self.now;
        let stats = if instr {
            &mut self.istream
        } else {
            &mut self.dstream
        };
        stats.probes += 1;
        match streams.probe(line, now) {
            StreamProbe::Hit { .. } => {
                stats.hits += 1;
                let mut issued = 0;
                streams.deepen(|_l| {
                    issued += 1;
                    now
                });
                stats.prefetches_issued += issued;
            }
            StreamProbe::Miss => {
                let mut issued = 0;
                streams.allocate(line, now, |_l| {
                    issued += 1;
                    now
                });
                stats.prefetches_issued += issued;
                stats.allocations += 1;
            }
        }
    }

    /// Fast-forwards over the ops at `range` of the trace a
    /// [`WarmDigest`] was built from. Semantically this is
    /// [`Simulator::warm_records`] over the same slice — the digest just
    /// pre-extracts the events warming reacts to (cache-line
    /// transitions, memory references, control transfers) so the
    /// per-op decode and same-line skip checks are paid once per trace
    /// instead of once per model × sampling pass.
    ///
    /// The caller must build the digest with this machine's line size
    /// ([`WarmDigest::line_bytes`]); [`run_sampled`] falls back to
    /// [`Simulator::warm_records`] when the geometry disagrees.
    ///
    /// One deliberate divergence from `warm_records`: the fetch-pair
    /// tracker advances per line transition rather than per pair, so it
    /// may lag within the final line of the range. The first detailed
    /// fetch after warming then re-probes a pair that was already
    /// resident — a deterministic, warm-up-absorbed perturbation —
    /// while tags, pre-decode, write cache and stream allocation state
    /// evolve identically.
    ///
    /// [`run_sampled`]: crate::sample::run_sampled
    pub fn warm_digest(&mut self, digest: &WarmDigest, range: Range<usize>) {
        debug_assert_eq!(
            digest.line_bytes(),
            self.icache.geometry().line_bytes(),
            "digest line granule must match the machine's line size",
        );
        while !self.pending.is_empty() {
            self.issue_group();
        }
        self.after_ctl = None;
        self.delay_pending = None;
        let mut warm_dline: Option<LineAddr> = None;
        for ev in digest.events_in(range) {
            match ev.tag {
                WE_FETCH => {
                    // No same-line memo here: fetch events only exist at
                    // line transitions, so consecutive ones never repeat
                    // a line and a memo could never hit.
                    let pc = u64::from(ev.a);
                    self.last_fetch_pair = Some(pc >> 3);
                    if !self.icache.contains(pc) {
                        let line = self.icache.geometry().line(pc);
                        self.warm_stream(line, true);
                        self.icache.fill(pc);
                    }
                }
                WE_LOAD => {
                    let ea = u64::from(ev.a);
                    let line = self.dcache.geometry().line(ea);
                    if warm_dline != Some(line) {
                        if !self.write_cache.load_covers(ea, u32::from(ev.bytes))
                            && !self.dcache.contains(ea)
                        {
                            self.warm_stream(line, false);
                            self.dcache.fill_line(line);
                        }
                        warm_dline = Some(line);
                    }
                }
                WE_STORE => {
                    let ea = u64::from(ev.a);
                    self.write_cache.warm_store(ea, u32::from(ev.bytes));
                    if !self.dcache.contains(ea) {
                        self.dcache.fill(ea);
                    }
                    warm_dline = None;
                }
                WE_CTL => {
                    self.record_ctl_pair(ev.a, Some(u64::from(ev.b)));
                }
                _ => {
                    debug_assert_eq!(ev.tag, WE_CTL_INDIRECT);
                    self.record_ctl_pair(ev.a, None);
                }
            }
        }
    }

    // --- Whole-machine checkpoints ---------------------------------------

    /// Serializes the complete machine state — clock, front end,
    /// scoreboard, ROB, every memory-system unit (tags, MSHRs, stream
    /// buffers, write cache, BIU busses and RNG), the FPU, the pending
    /// look-ahead queue and all statistics — into a versioned binary
    /// image. Restoring it into a simulator built from the *same*
    /// [`MachineConfig`] and resuming produces bit-identical [`SimStats`]
    /// to the uninterrupted run (enforced by the checkpoint differential
    /// suite). Diagnostics (observer ring, issue log) are not captured.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(*b"SIM_");
        w.put_u64(self.now);
        w.put_opt_u64(self.last_fetch_pair);
        save_redirect(&mut w, self.after_ctl);
        save_redirect(&mut w, self.delay_pending);
        for &(ready, cause) in &self.int_score {
            w.put_u64(ready);
            w.put_u8(cause_code(cause));
        }
        w.put_u64(self.hilo.0);
        w.put_u8(cause_code(self.hilo.1));
        self.rob.save(&mut w);
        self.icache.save(&mut w);
        self.dcache.save(&mut w);
        w.put_u64(self.dcache_port_free);
        w.put_len(self.pending_fills.len());
        for &(line, arrival) in &self.pending_fills {
            w.put_u64(line.0);
            w.put_u64(arrival);
        }
        w.put_u64(self.next_fill_at);
        self.write_cache.save(&mut w);
        self.mshrs.save(&mut w);
        w.put_bool(self.streams.is_some());
        if let Some(streams) = &self.streams {
            streams.save(&mut w);
        }
        self.biu.save(&mut w);
        self.istream.save(&mut w);
        self.dstream.save(&mut w);
        self.fpu.save(&mut w);
        // The ≤1-op look-ahead queue rides along as an embedded packed
        // trace, reusing its validated codec.
        let queue = PackedTrace::from_ops(self.pending.iter().copied());
        let mut blob = Vec::new();
        let wrote = queue.write_to(&mut blob);
        debug_assert!(wrote.is_ok(), "writing to a Vec cannot fail");
        w.put_len(blob.len());
        w.put_bytes(&blob);
        w.put_u64(self.fetch_bubble);
        w.put_u64(self.warm_cycle_offset);
        self.stats.save(&mut w);
        w.finish()
    }

    /// Restores a [`Simulator::save_checkpoint`] image in place.
    ///
    /// The simulator must have been built from the same configuration
    /// that produced the image: capacities are configuration, so they are
    /// cross-checked rather than serialized, and any mismatch surfaces as
    /// [`SnapshotError::Corrupt`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed, truncated,
    /// version-mismatched or capacity-mismatched image; the simulator
    /// state is unspecified after an error (restore into a fresh one).
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        r.section(*b"SIM_")?;
        self.now = r.u64()?;
        self.last_fetch_pair = r.opt_u64()?;
        self.after_ctl = restore_redirect(&mut r)?;
        self.delay_pending = restore_redirect(&mut r)?;
        for slot in &mut self.int_score {
            *slot = (r.u64()?, cause_from(r.u8()?)?);
        }
        self.hilo = (r.u64()?, cause_from(r.u8()?)?);
        self.rob.restore(&mut r)?;
        self.icache.restore(&mut r)?;
        self.dcache.restore(&mut r)?;
        self.dcache_port_free = r.u64()?;
        // Every pending fill holds an MSHR, so the file's capacity bounds
        // the list.
        let fills = r.len(self.mshrs.capacity())?;
        self.pending_fills.clear();
        for _ in 0..fills {
            self.pending_fills.push((LineAddr(r.u64()?), r.u64()?));
        }
        self.next_fill_at = r.u64()?;
        self.write_cache.restore(&mut r)?;
        self.mshrs.restore(&mut r)?;
        if r.bool()? != self.streams.is_some() {
            return Err(SnapshotError::Corrupt("stream-buffer presence mismatch"));
        }
        if let Some(streams) = self.streams.as_mut() {
            streams.restore(&mut r)?;
        }
        self.biu.restore(&mut r)?;
        self.istream.restore(&mut r)?;
        self.dstream.restore(&mut r)?;
        self.fpu.restore(&mut r)?;
        let blob_len = r.len(PENDING_BLOB_CAP)?;
        let blob = r.bytes(blob_len)?;
        let queue = PackedTrace::read_from(&mut &blob[..])
            .map_err(|_| SnapshotError::Corrupt("pending-queue trace blob"))?;
        if queue.records().len() > 2 {
            return Err(SnapshotError::Corrupt("pending queue too long"));
        }
        self.pending.clear();
        for rec in queue.records() {
            self.pending.push_back(rec.unpack());
        }
        self.fetch_bubble = r.u64()?;
        self.warm_cycle_offset = r.u64()?;
        self.stats.restore(&mut r)?;
        r.finish()?;
        self.reset_transient_diagnostics();
        Ok(())
    }

    /// Clears the diagnostic state a checkpoint deliberately does not
    /// carry (observer batch buffer, debug horizon probe). Named and
    /// separate from [`Simulator::restore_checkpoint`] so the
    /// checkpoint-drift cross-check (L014) sees the codec touch only
    /// serialized fields — see the checkpoint codec checklist in
    /// docs/LINTS.md.
    fn reset_transient_diagnostics(&mut self) {
        self.obs_buf_len = 0;
        #[cfg(debug_assertions)]
        self.horizon_probe.set(None);
    }
}

/// Event tags for [`WarmDigest`] entries.
const WE_FETCH: u8 = 0;
const WE_LOAD: u8 = 1;
const WE_STORE: u8 = 2;
const WE_CTL: u8 = 3;
const WE_CTL_INDIRECT: u8 = 4;

/// One pre-extracted warming event: `a` holds the fetch/control PC or
/// the memory effective address, `b` a direct control target, `bytes`
/// the access width.
#[derive(Clone, Copy)]
struct WarmEvent {
    op_idx: u32,
    a: u32,
    b: u32,
    tag: u8,
    bytes: u8,
}

/// The subsequence of a trace that functional warming actually reacts
/// to, pre-extracted once so every warm pass skips the ops that cannot
/// change warm state.
///
/// Warming over raw records ([`Simulator::warm_records`]) decodes every
/// op only to ignore most of them: ALU and FP arithmetic touch no warm
/// state, and instruction-side probes collapse to one per cache-line
/// transition. A digest walks the trace once, keeps only line
/// transitions, memory references and control transfers — each stamped
/// with its op index — and [`Simulator::warm_digest`] then replays an
/// arbitrary index range by binary-searching the event list. The digest
/// depends on the trace and the line granule alone, never on a machine
/// model, so one digest serves every configuration sharing a line size
/// (every [`MachineModel`](crate::MachineModel) preset uses 32-byte
/// lines) across any number of sampling passes.
pub struct WarmDigest {
    line_bytes: u32,
    events: Vec<WarmEvent>,
}

impl WarmDigest {
    /// Extracts the warming events of `ops` at a `line_bytes` fetch
    /// granule (power of two, at least one 8-byte pair per line).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two at least 8, or if
    /// the trace holds `u32::MAX` ops or more (digest indices are
    /// 32-bit; captured traces are orders of magnitude smaller).
    #[must_use]
    pub fn build(ops: &[PackedOp], line_bytes: u32) -> WarmDigest {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 8,
            "line_bytes {line_bytes} invalid"
        );
        assert!(
            u32::try_from(ops.len()).is_ok(),
            "trace too large to digest"
        );
        let shift = line_bytes.trailing_zeros();
        let mut events = Vec::with_capacity(ops.len() / 2);
        let mut last_line = u64::MAX;
        for (idx, rec) in ops.iter().enumerate() {
            let op_idx = idx as u32;
            let pc = rec.pc();
            let line = u64::from(pc >> shift);
            if line != last_line {
                last_line = line;
                events.push(WarmEvent {
                    op_idx,
                    a: pc,
                    b: 0,
                    tag: WE_FETCH,
                    bytes: 0,
                });
            }
            match rec.kind_only() {
                OpKind::Load { ea, width } | OpKind::FpLoad { ea, width } => {
                    events.push(WarmEvent {
                        op_idx,
                        a: ea,
                        b: 0,
                        tag: WE_LOAD,
                        bytes: width.bytes() as u8,
                    });
                }
                OpKind::Store { ea, width } | OpKind::FpStore { ea, width } => {
                    events.push(WarmEvent {
                        op_idx,
                        a: ea,
                        b: 0,
                        tag: WE_STORE,
                        bytes: width.bytes() as u8,
                    });
                }
                OpKind::Branch { target, .. } => {
                    events.push(WarmEvent {
                        op_idx,
                        a: pc,
                        b: target,
                        tag: WE_CTL,
                        bytes: 0,
                    });
                }
                OpKind::Jump { target, register } => {
                    events.push(WarmEvent {
                        op_idx,
                        a: pc,
                        b: target,
                        tag: if register { WE_CTL_INDIRECT } else { WE_CTL },
                        bytes: 0,
                    });
                }
                _ => {}
            }
        }
        WarmDigest { line_bytes, events }
    }

    /// The fetch-line granule the digest was extracted at.
    #[must_use]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of warming events extracted (the density `len() /
    /// trace_ops` is the fraction of the trace warming actually
    /// touches).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the digest holds no events (an empty trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events whose source op index falls in `range`.
    fn events_in(&self, range: Range<usize>) -> &[WarmEvent] {
        let lo = self
            .events
            .partition_point(|e| (e.op_idx as usize) < range.start);
        // `partition_point` bounds `lo` and `hi` by the slice length, but
        // the panic-free forms keep the fetch hot path index-free.
        let tail = self.events.get(lo..).unwrap_or_default();
        let hi = tail.partition_point(|e| (e.op_idx as usize) < range.end);
        tail.get(..hi).unwrap_or_default()
    }
}

/// Serializes an optional fetch redirect (presence, branch PC, foldable).
fn save_redirect(w: &mut SnapshotWriter, r: Option<Redirect>) {
    w.put_bool(r.is_some());
    if let Some(r) = r {
        w.put_u64(r.branch_pc);
        w.put_bool(r.foldable);
    }
}

/// Inverse of [`save_redirect`].
fn restore_redirect(r: &mut SnapshotReader<'_>) -> Result<Option<Redirect>, SnapshotError> {
    Ok(if r.bool()? {
        Some(Redirect {
            branch_pc: r.u64()?,
            foldable: r.bool()?,
        })
    } else {
        None
    })
}

/// Stable wire code for a [`StallCause`]: its position in
/// [`StallCause::ALL`].
fn cause_code(c: StallCause) -> u8 {
    StallCause::ALL
        .iter()
        .position(|&x| x == c)
        .unwrap_or_default() as u8
}

/// Inverse of [`cause_code`].
fn cause_from(code: u8) -> Result<StallCause, SnapshotError> {
    StallCause::ALL
        .get(usize::from(code))
        .copied()
        .ok_or(SnapshotError::Corrupt("unknown stall-cause code"))
}

fn needs_rob(kind: OpKind) -> bool {
    !kind.is_fpu() && !matches!(kind, OpKind::FpLoad { .. } | OpKind::FpStore { .. })
}

/// Tests bit `j` of a per-op block bitmask. The shift amount is masked,
/// so the operation is total (block templates cap at 64 ops).
#[inline]
fn bit(mask: u64, j: usize) -> bool {
    (mask >> (j as u32 & 63)) & 1 != 0
}

/// Runs a full trace through a fresh simulator.
pub fn simulate<I>(cfg: &MachineConfig, trace: I) -> SimStats
where
    I: IntoIterator<Item = TraceOp>,
{
    let mut sim = Simulator::new(cfg);
    for op in trace {
        sim.feed(op);
    }
    sim.finish()
}

/// Replays a captured [`PackedTrace`] against `cfg` and returns the run's
/// statistics. Produces bit-identical [`SimStats`] to feeding the same
/// ops through [`simulate`], without re-emulating the workload.
///
/// ```
/// use aurora_core::{replay, simulate, IssueWidth, MachineModel};
/// use aurora_isa::{OpKind, PackedTrace, TraceOp};
/// use aurora_mem::LatencyModel;
///
/// let ops: Vec<TraceOp> = (0..64u32)
///     .map(|i| TraceOp::bare(0x400000 + 4 * (i % 16), OpKind::IntAlu))
///     .collect();
/// let capture = PackedTrace::from_ops(ops.iter().copied());
///
/// let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
/// // One capture can drive any number of replays — and a replay is
/// // bit-identical to streaming the live ops through `simulate`.
/// let replayed = replay(&cfg, &capture);
/// assert_eq!(replayed, simulate(&cfg, ops));
/// assert_eq!(replayed.instructions, 64);
/// ```
pub fn replay(cfg: &MachineConfig, trace: &PackedTrace) -> SimStats {
    let mut sim = Simulator::new(cfg);
    sim.feed_packed(trace);
    sim.finish()
}

/// Replays a lowered [`BlockTrace`] against `cfg` through the
/// block-granular engine ([`Simulator::feed_blocks`]) and returns the
/// run's statistics — bit-identical to [`replay`] on the source trace
/// and to [`simulate`] on the op stream, only faster: pre-decoded
/// superinstruction templates replace per-op unpacking, and
/// scoreboard-only runs execute with per-group work reduced to a few
/// stores.
///
/// ```
/// use aurora_core::{replay, replay_blocks, IssueWidth, MachineModel};
/// use aurora_isa::{BlockTrace, OpKind, PackedTrace, TraceOp};
/// use aurora_mem::LatencyModel;
///
/// let capture: PackedTrace = (0..64u32)
///     .map(|i| TraceOp::bare(0x400000 + 4 * (i % 16), OpKind::IntAlu))
///     .collect();
/// let blocks = BlockTrace::lower(&capture);
///
/// let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
/// assert_eq!(replay_blocks(&cfg, &blocks), replay(&cfg, &capture));
/// ```
pub fn replay_blocks(cfg: &MachineConfig, blocks: &BlockTrace) -> SimStats {
    let mut sim = Simulator::new(cfg);
    sim.feed_blocks(blocks);
    sim.finish()
}

/// Executes `program` functionally for up to `limit` instructions while
/// simulating it cycle by cycle — the full trace-driven pipeline of §4.
///
/// # Errors
///
/// Propagates functional-emulation errors ([`EmuError`]) from the program.
pub fn simulate_program(
    cfg: &MachineConfig,
    program: &Program,
    limit: u64,
) -> Result<SimStats, EmuError> {
    let mut sim = Simulator::new(cfg);
    let mut emu = Emulator::new(program);
    emu.run_traced(limit, |op| sim.feed(op))?;
    Ok(sim.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineModel;
    use crate::stats::StallKind;
    use aurora_isa::MemWidth;
    use aurora_mem::LatencyModel;

    const BASE: u32 = 0x0040_0000;

    fn cfg(model: MachineModel, issue: IssueWidth) -> MachineConfig {
        model.config(issue, LatencyModel::Fixed(17))
    }

    fn alu(pc: u32, dst: u8, src: u8) -> TraceOp {
        TraceOp {
            pc,
            kind: OpKind::IntAlu,
            dst: Some(ArchReg::Int(dst)),
            src1: Some(ArchReg::Int(src)),
            src2: None,
        }
    }

    fn load(pc: u32, dst: u8, ea: u32) -> TraceOp {
        TraceOp {
            pc,
            kind: OpKind::Load {
                ea,
                width: MemWidth::Word,
            },
            dst: Some(ArchReg::Int(dst)),
            src1: Some(ArchReg::Int(29)),
            src2: None,
        }
    }

    fn store(pc: u32, ea: u32) -> TraceOp {
        TraceOp {
            pc,
            kind: OpKind::Store {
                ea,
                width: MemWidth::Word,
            },
            dst: None,
            src1: Some(ArchReg::Int(29)),
            src2: Some(ArchReg::Int(8)),
        }
    }

    /// A straight-line loop body re-executed over a tiny footprint.
    fn tight_loop_trace(n: u32) -> Vec<TraceOp> {
        (0..n)
            .map(|i| {
                alu(
                    BASE + 4 * (i % 8),
                    8 + (i % 4) as u8,
                    8 + ((i + 1) % 4) as u8,
                )
            })
            .collect()
    }

    #[test]
    fn dual_issue_improves_independent_code() {
        // Independent ALU ops in aligned pairs.
        let trace: Vec<TraceOp> = (0..4000u32)
            .map(|i| alu(BASE + 4 * (i % 16), (8 + i % 2) as u8, (10 + i % 2) as u8))
            .collect();
        let single = simulate(
            &cfg(MachineModel::Baseline, IssueWidth::Single),
            trace.clone(),
        );
        let dual = simulate(&cfg(MachineModel::Baseline, IssueWidth::Dual), trace);
        assert!(single.cpi() > 0.95, "single CPI {}", single.cpi());
        assert!(
            dual.cpi() < 0.75 * single.cpi(),
            "dual {} vs single {}",
            dual.cpi(),
            single.cpi()
        );
        assert!(dual.dual_issue_rate() > 0.4);
    }

    #[test]
    fn dependent_pair_cannot_dual_issue() {
        // Each odd instruction consumes the even one's result: DI bit set.
        let trace: Vec<TraceOp> = (0..1000u32)
            .map(|i| {
                if i % 2 == 0 {
                    alu(BASE + 4 * (i % 16), 8, 9)
                } else {
                    alu(BASE + 4 * (i % 16), 10, 8) // reads r8
                }
            })
            .collect();
        let dual = simulate(&cfg(MachineModel::Baseline, IssueWidth::Dual), trace);
        assert!(dual.dual_issue_rate() < 0.05, "{}", dual.dual_issue_rate());
    }

    #[test]
    fn memory_pair_restriction() {
        // Two memory ops per pair: never dual-issued.
        let trace: Vec<TraceOp> = (0..1000u32)
            .map(|i| {
                load(
                    BASE + 4 * (i % 16),
                    (8 + i % 8) as u8,
                    0x1000 + 4 * (i % 64),
                )
            })
            .collect();
        let dual = simulate(&cfg(MachineModel::Baseline, IssueWidth::Dual), trace);
        assert_eq!(dual.dual_issues, 0);
    }

    #[test]
    fn load_use_stall_charged_to_load() {
        // load r8 ; use r8 immediately, repeatedly. Use addresses that hit
        // in the data cache after warm-up.
        let mut trace = Vec::new();
        for i in 0..500u32 {
            trace.push(load(BASE + 8 * (i % 8), 8, 0x2000));
            trace.push(alu(BASE + 8 * (i % 8) + 4, 9, 8));
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert!(
            stats.stalls[StallKind::Load] > 500,
            "load stalls {:?}",
            stats.stalls
        );
        // Roughly 3 cycles of dcache latency exposed per iteration.
        assert!(stats.cpi() > 2.0, "CPI {}", stats.cpi());
    }

    #[test]
    fn icache_miss_stalls_on_large_code_footprint() {
        // Code footprint far beyond the 1 KB small-model I-cache.
        let trace: Vec<TraceOp> = (0..20000u32)
            .map(|i| alu(BASE + 4 * (i % 4096), 8, 9))
            .collect();
        let stats = simulate(&cfg(MachineModel::Small, IssueWidth::Single), trace);
        assert!(stats.icache.hit_rate() < 0.95);
        assert!(stats.stalls[StallKind::ICache] > 0);
    }

    #[test]
    fn single_mshr_serialises_independent_loads() {
        // Independent loads to distinct cached lines: with one MSHR they
        // serialise; with four they pipeline.
        let mk = |n: u32| -> Vec<TraceOp> {
            (0..n)
                .map(|i| {
                    load(
                        BASE + 4 * (i % 16),
                        (8 + i % 16) as u8,
                        0x2000 + 32 * (i % 16),
                    )
                })
                .collect()
        };
        let mut small1 = cfg(MachineModel::Small, IssueWidth::Single);
        small1.prefetch_enabled = false;
        small1.rob_entries = 8; // roomy ROB isolates the MSHR effect
        let mut small4 = small1.clone();
        small4.mshr_entries = 4;
        let s1 = simulate(&small1, mk(3000));
        let s4 = simulate(&small4, mk(3000));
        assert!(
            s1.cpi() > 1.2 * s4.cpi(),
            "1-MSHR {} vs 4-MSHR {}",
            s1.cpi(),
            s4.cpi()
        );
        assert!(s1.stalls[StallKind::LsuBusy] > s4.stalls[StallKind::LsuBusy]);
    }

    #[test]
    fn stores_coalesce_in_write_cache() {
        let trace: Vec<TraceOp> = (0..2000u32)
            .map(|i| store(BASE + 4 * (i % 16), 0x3000 + 4 * (i % 8)))
            .collect();
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert!(stats.write_cache.hit_rate() > 0.9);
        assert!(stats.write_cache.traffic_ratio() < 0.1);
    }

    #[test]
    fn prefetch_helps_sequential_misses() {
        // Sequential walk over a large array: every line is a fresh miss;
        // stream buffers should catch most after the first.
        let mk = || -> Vec<TraceOp> {
            (0..6000u32)
                .map(|i| load(BASE + 4 * (i % 16), (8 + i % 8) as u8, 0x0010_0000 + 8 * i))
                .collect()
        };
        let with = cfg(MachineModel::Baseline, IssueWidth::Single);
        let mut without = with.clone();
        without.prefetch_enabled = false;
        let s_with = simulate(&with, mk());
        let s_without = simulate(&without, mk());
        assert!(
            s_with.dstream.hit_rate() > 0.5,
            "{}",
            s_with.dstream.hit_rate()
        );
        assert!(
            s_with.cpi() < s_without.cpi(),
            "prefetch {} vs none {}",
            s_with.cpi(),
            s_without.cpi()
        );
    }

    #[test]
    fn taken_branches_fold_after_warmup() {
        // A tight loop: branch at the end of the body, taken every time.
        let body = 8u32;
        let mut trace = Vec::new();
        for _ in 0..500 {
            for i in 0..body - 2 {
                trace.push(alu(BASE + 4 * i, 8, 9));
            }
            trace.push(TraceOp {
                pc: BASE + 4 * (body - 2),
                kind: OpKind::Branch {
                    taken: true,
                    target: BASE,
                },
                dst: None,
                src1: Some(ArchReg::Int(8)),
                src2: None,
            });
            trace.push(alu(BASE + 4 * (body - 1), 9, 9)); // delay slot
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert!(
            stats.folded_branches > 400,
            "folded {} unfolded {}",
            stats.folded_branches,
            stats.unfolded_branches
        );
    }

    #[test]
    fn register_jumps_never_fold() {
        let mut trace = Vec::new();
        for _ in 0..100 {
            trace.push(TraceOp {
                pc: BASE,
                kind: OpKind::Jump {
                    target: BASE + 64,
                    register: true,
                },
                dst: None,
                src1: Some(ArchReg::Int(31)),
                src2: None,
            });
            trace.push(alu(BASE + 4, 8, 9)); // delay slot
            trace.push(alu(BASE + 64, 8, 9));
            trace.push(TraceOp {
                pc: BASE + 68,
                kind: OpKind::Jump {
                    target: BASE,
                    register: true,
                },
                dst: None,
                src1: Some(ArchReg::Int(31)),
                src2: None,
            });
            trace.push(alu(BASE + 72, 8, 9)); // delay slot
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert_eq!(stats.folded_branches, 0);
        assert!(stats.unfolded_branches >= 190);
    }

    #[test]
    fn fp_ops_flow_through_queue() {
        let mut trace = Vec::new();
        for i in 0..300u32 {
            trace.push(TraceOp {
                pc: BASE + 8 * (i % 8),
                kind: OpKind::FpMul,
                dst: Some(ArchReg::Fp(2)),
                src1: Some(ArchReg::Fp(4)),
                src2: Some(ArchReg::Fp(6)),
            });
            trace.push(alu(BASE + 8 * (i % 8) + 4, 8, 9));
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert_eq!(stats.fp_instructions, 300);
        // The non-pipelined 5-cycle multiplier backs up the queue, which
        // eventually stalls the IPU.
        assert!(stats.stalls[StallKind::FpQueue] > 0, "{:?}", stats.stalls);
    }

    #[test]
    fn fp_branch_waits_for_condition_code() {
        let mut trace = Vec::new();
        for i in 0..200u32 {
            trace.push(TraceOp {
                pc: BASE + 16 * (i % 4),
                kind: OpKind::FpCmp,
                dst: Some(ArchReg::FpCond),
                src1: Some(ArchReg::Fp(2)),
                src2: Some(ArchReg::Fp(4)),
            });
            trace.push(TraceOp {
                pc: BASE + 16 * (i % 4) + 4,
                kind: OpKind::Branch {
                    taken: false,
                    target: BASE,
                },
                dst: None,
                src1: Some(ArchReg::FpCond),
                src2: None,
            });
            trace.push(alu(BASE + 16 * (i % 4) + 8, 8, 9)); // delay slot
            trace.push(alu(BASE + 16 * (i % 4) + 12, 9, 8));
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert!(
            stats.stalls[StallKind::FpResult] > 200,
            "{:?}",
            stats.stalls
        );
    }

    #[test]
    fn small_rob_stalls_behind_slow_loads() {
        // A miss at the head of the ROB followed by many fast ALU ops.
        let mut trace = Vec::new();
        for i in 0..300u32 {
            trace.push(load(BASE + 4 * (i % 16), 8, 0x0020_0000 + 4096 * i));
            for j in 0..6u32 {
                trace.push(alu(BASE + 4 * ((i + j) % 16), 9, 10));
            }
        }
        let mut tiny = cfg(MachineModel::Small, IssueWidth::Single);
        tiny.prefetch_enabled = false;
        tiny.mshr_entries = 4; // isolate the ROB effect from the MSHRs
        tiny.rob_entries = 2;
        let mut roomy = tiny.clone();
        roomy.rob_entries = 16;
        let s_tiny = simulate(&tiny, trace.clone());
        let s_roomy = simulate(&roomy, trace);
        assert!(s_tiny.stalls[StallKind::RobFull] > s_roomy.stalls[StallKind::RobFull]);
        assert!(s_tiny.cpi() >= s_roomy.cpi());
    }

    #[test]
    fn cpi_is_at_least_half_for_dual_and_one_for_single() {
        let trace = tight_loop_trace(2000);
        let s = simulate(&cfg(MachineModel::Large, IssueWidth::Single), trace.clone());
        assert!(s.cpi() >= 1.0 - 1e-9);
        let d = simulate(&cfg(MachineModel::Large, IssueWidth::Dual), trace);
        assert!(d.cpi() >= 0.5 - 1e-9);
    }

    #[test]
    fn mark_warm_excludes_cold_start() {
        // Same loop measured cold vs after a warm-up pass: the warm CPI
        // must be lower (no compulsory misses) and hit rates near 1.
        let trace: Vec<TraceOp> = (0..4000u32)
            .map(|i| {
                if i % 5 == 0 {
                    load(BASE + 4 * (i % 16), 8, 0x2000 + 4 * (i % 512))
                } else {
                    alu(BASE + 4 * (i % 16), 9, 10)
                }
            })
            .collect();
        let c = cfg(MachineModel::Small, IssueWidth::Single);
        let cold = simulate(&c, trace.clone());

        let mut sim = Simulator::new(&c);
        for op in &trace {
            sim.feed(*op);
        }
        sim.mark_warm();
        for op in &trace {
            sim.feed(*op);
        }
        let warm = sim.finish();
        // The pairing look-ahead may carry one warm-up op across the mark.
        assert!(
            (4000..=4001).contains(&warm.instructions),
            "{}",
            warm.instructions
        );
        assert!(
            warm.cpi() < cold.cpi(),
            "warm {} cold {}",
            warm.cpi(),
            cold.cpi()
        );
        assert!(warm.dcache.hit_rate() > 0.99, "{}", warm.dcache.hit_rate());
        assert!(warm.icache.hit_rate() > 0.99);
    }

    #[test]
    fn issue_log_records_pairing_and_stalls() {
        let cfg = cfg(MachineModel::Baseline, IssueWidth::Dual);
        let mut sim = Simulator::new(&cfg);
        sim.enable_issue_log(64);
        // Independent pair, then a load and its immediate consumer.
        sim.feed(alu(BASE, 8, 9));
        sim.feed(alu(BASE + 4, 10, 11));
        sim.feed(load(BASE + 8, 12, 0x2000));
        sim.feed(alu(BASE + 12, 13, 12));
        sim.feed(alu(BASE + 16, 14, 14));
        let records: Vec<IssueRecord> = {
            // finish() consumes; collect the log before.
            sim.issue_log().copied().collect()
        };
        let stats = sim.finish();
        assert_eq!(stats.instructions, 5);
        assert!(
            records.iter().any(|r| r.dual_with_prev),
            "pair should dual issue"
        );
        // At least one record carries a stall (icache cold miss or load use).
        assert!(records.iter().any(|r| r.stall_cycles > 0));
        assert!(records.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn stats_are_deterministic() {
        let trace = tight_loop_trace(5000);
        let a = simulate(
            &cfg(MachineModel::Baseline, IssueWidth::Dual),
            trace.clone(),
        );
        let b = simulate(&cfg(MachineModel::Baseline, IssueWidth::Dual), trace);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn write_validation_knob_controls_mmu_traffic() {
        let trace: Vec<TraceOp> = (0..500u32)
            .map(|i| store(BASE + 4 * (i % 16), 0x3000 + 4 * (i % 8)))
            .collect();
        let on = cfg(MachineModel::Baseline, IssueWidth::Single);
        let mut off = on.clone();
        off.write_validation = false;
        let s_on = simulate(&on, trace.clone());
        let s_off = simulate(&off, trace);
        // Same page throughout: the micro-TLB validates all but the first
        // store; without it every store queries the MMU.
        assert!(s_on.biu.validations <= 2, "{}", s_on.biu.validations);
        assert_eq!(s_off.biu.validations, 500);
    }

    #[test]
    fn branch_folding_knob_adds_bubbles() {
        let mut trace = Vec::new();
        for _ in 0..400 {
            trace.push(TraceOp {
                pc: BASE,
                kind: OpKind::Branch {
                    taken: true,
                    target: BASE + 32,
                },
                dst: None,
                src1: Some(ArchReg::Int(8)),
                src2: None,
            });
            trace.push(alu(BASE + 4, 8, 9)); // delay slot
            trace.push(alu(BASE + 32, 8, 9));
            trace.push(TraceOp {
                pc: BASE + 36,
                kind: OpKind::Branch {
                    taken: true,
                    target: BASE,
                },
                dst: None,
                src1: Some(ArchReg::Int(8)),
                src2: None,
            });
            trace.push(alu(BASE + 40, 9, 9)); // delay slot
        }
        let on = cfg(MachineModel::Baseline, IssueWidth::Single);
        let mut off = on.clone();
        off.branch_folding = false;
        let s_on = simulate(&on, trace.clone());
        let s_off = simulate(&off, trace);
        assert!(s_on.folded_branches > 700, "{}", s_on.folded_branches);
        assert_eq!(s_off.folded_branches, 0);
        assert!(s_off.cycles > s_on.cycles);
    }

    #[test]
    fn folded_plus_unfolded_equals_taken_transfers() {
        let mut taken = 0u64;
        let mut trace = Vec::new();
        for i in 0..300u32 {
            let take = i % 3 != 0;
            if take {
                taken += 1;
            }
            trace.push(TraceOp {
                pc: BASE + 16,
                kind: OpKind::Branch {
                    taken: take,
                    target: BASE,
                },
                dst: None,
                src1: Some(ArchReg::Int(8)),
                src2: None,
            });
            trace.push(alu(BASE + 20, 8, 9)); // delay slot
            trace.push(alu(BASE, 9, 9));
            trace.push(alu(BASE + 4, 9, 9));
            trace.push(alu(BASE + 8, 9, 9));
            trace.push(alu(BASE + 12, 9, 9));
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        assert_eq!(stats.folded_branches + stats.unfolded_branches, taken);
    }

    #[test]
    fn secondary_misses_merge_into_one_fill() {
        // Two loads to the same cold line in quick succession: one BIU
        // data fill, one MSHR merge.
        let trace = vec![
            load(BASE, 8, 0x0070_0000),
            load(BASE + 4, 9, 0x0070_0004),
            alu(BASE + 8, 10, 8),
        ];
        let mut c = cfg(MachineModel::Baseline, IssueWidth::Single);
        c.prefetch_enabled = false;
        let stats = simulate(&c, trace);
        assert_eq!(stats.biu.data_fills, 1);
        assert_eq!(stats.mshr.merges, 1);
    }

    #[test]
    fn disabling_prefetch_stops_prefetch_traffic() {
        let trace: Vec<TraceOp> = (0..2000u32)
            .map(|i| load(BASE + 4 * (i % 16), 8, 0x0050_0000 + 8 * i))
            .collect();
        let mut c = cfg(MachineModel::Baseline, IssueWidth::Single);
        c.prefetch_enabled = false;
        let stats = simulate(&c, trace);
        assert_eq!(stats.biu.prefetches, 0);
        assert_eq!(stats.dstream.probes, 0);
    }

    #[test]
    fn fp_store_waits_for_fpu_data() {
        // An FP divide produces f2; the store of f2 cannot commit before
        // the divide completes, which shows up as a late write-back.
        let mut trace = vec![
            TraceOp {
                pc: BASE,
                kind: OpKind::FpDiv,
                dst: Some(ArchReg::Fp(2)),
                src1: Some(ArchReg::Fp(4)),
                src2: Some(ArchReg::Fp(6)),
            },
            TraceOp {
                pc: BASE + 4,
                kind: OpKind::FpStore {
                    ea: 0x4000,
                    width: MemWidth::Double,
                },
                dst: None,
                src1: Some(ArchReg::Int(29)),
                src2: Some(ArchReg::Fp(2)),
            },
        ];
        for i in 0..8u32 {
            trace.push(alu(BASE + 8 + 4 * i, 8, 9));
        }
        let stats = simulate(&cfg(MachineModel::Baseline, IssueWidth::Single), trace);
        // The run cannot end before the divide (19 cycles) plus the store
        // hand-off, even though only 10 instructions issued.
        assert!(stats.cycles > 20, "cycles {}", stats.cycles);
    }

    #[test]
    fn uniform_latency_seed_reproducible() {
        let mut c = cfg(MachineModel::Baseline, IssueWidth::Single);
        c.memory_latency = LatencyModel::average_35();
        let trace: Vec<TraceOp> = (0..3000u32)
            .map(|i| load(BASE + 4 * (i % 16), 8, 0x0030_0000 + 512 * i))
            .collect();
        let a = simulate(&c, trace.clone());
        let b = simulate(&c, trace);
        assert_eq!(a.cycles, b.cycles);
    }

    /// A trace exercising every checkpointed unit: loads and stores that
    /// miss, ALU chains, taken branches with delay slots.
    fn mixed_trace(n: u32) -> Vec<TraceOp> {
        (0..n)
            .map(|i| match i % 7 {
                0 => load(
                    BASE + 4 * (i % 64),
                    (8 + i % 4) as u8,
                    0x0010_0000 + 64 * (i % 777),
                ),
                1 => store(BASE + 4 * (i % 64), 0x0070_0000 + 32 * (i % 300)),
                4 => TraceOp {
                    pc: BASE + 4 * (i % 64),
                    kind: OpKind::Branch {
                        taken: i % 3 == 0,
                        target: BASE + 4 * ((i + 9) % 64),
                    },
                    dst: None,
                    src1: Some(ArchReg::Int(8)),
                    src2: None,
                },
                _ => alu(
                    BASE + 4 * (i % 64),
                    (8 + i % 4) as u8,
                    (8 + (i + 1) % 4) as u8,
                ),
            })
            .collect()
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let mut c = cfg(MachineModel::Small, IssueWidth::Dual);
        c.memory_latency = LatencyModel::average_35(); // exercises the BIU RNG
        let trace = mixed_trace(4000);
        let uninterrupted = simulate(&c, trace.clone());
        for split in [1usize, 123, 1000, 3999] {
            let mut a = Simulator::new(&c);
            for op in trace.iter().take(split) {
                a.feed(*op);
            }
            let image = a.save_checkpoint();
            let mut b = Simulator::new(&c);
            b.restore_checkpoint(&image).expect("restore failed");
            for op in trace.iter().skip(split) {
                b.feed(*op);
            }
            assert_eq!(b.finish(), uninterrupted, "split at {split}");
        }
    }

    #[test]
    fn checkpoint_rejects_corruption_and_config_mismatch() {
        let c = cfg(MachineModel::Baseline, IssueWidth::Single);
        let mut sim = Simulator::new(&c);
        for op in mixed_trace(200) {
            sim.feed(op);
        }
        let image = sim.save_checkpoint();
        let mut fresh = Simulator::new(&c);
        assert!(
            fresh
                .restore_checkpoint(image.get(..image.len() - 1).unwrap_or(&[]))
                .is_err(),
            "truncated image must be rejected"
        );
        let mut bad = image.clone();
        if let Some(v) = bad.get_mut(8) {
            *v ^= 0xFF; // header version low byte
        }
        let mut versioned = Simulator::new(&c);
        assert!(versioned.restore_checkpoint(&bad).is_err());
        // A different geometry fails the line-count cross-checks.
        let big = cfg(MachineModel::Large, IssueWidth::Single);
        let mut other = Simulator::new(&big);
        assert!(other.restore_checkpoint(&image).is_err());
    }

    #[test]
    fn functional_warming_fills_tags_without_detailed_cost() {
        let c = cfg(MachineModel::Baseline, IssueWidth::Single);
        let trace: Vec<TraceOp> = (0..256u32)
            .map(|i| load(BASE + 4 * (i % 128), 8, 0x0010_0000 + 64 * (i % 200)))
            .collect();
        let capture = PackedTrace::from_ops(trace.iter().copied());
        let cold = replay(&c, &capture);
        let mut sim = Simulator::new(&c);
        sim.warm_packed(&capture);
        sim.mark_warm();
        sim.feed_packed(&capture);
        let warm = sim.finish();
        assert_eq!(warm.instructions, cold.instructions);
        assert!(
            warm.icache.misses < cold.icache.misses,
            "warming must pre-fill instruction tags: {} vs {}",
            warm.icache.misses,
            cold.icache.misses
        );
        assert!(
            warm.dcache.misses < cold.dcache.misses,
            "warming must pre-fill data tags: {} vs {}",
            warm.dcache.misses,
            cold.dcache.misses
        );
        assert!(warm.cycles < cold.cycles);
    }
}
