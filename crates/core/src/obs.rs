//! Cycle-level observability: stall-cause attribution, a preallocated
//! event ring, latency/occupancy histograms, and a Chrome/Perfetto trace
//! exporter.
//!
//! The simulator's [`SimStats`](crate::SimStats) counters answer *how
//! many* cycles were lost per coarse [`StallKind`]; this module answers
//! *why and when*. When [`MachineConfig::observe`](crate::MachineConfig)
//! is set (or [`Simulator::enable_observer`](crate::Simulator) is
//! called), the simulator attaches an [`Observer`] and records one
//! [`ObsEvent`] at every interesting micro-architectural moment: fetch,
//! issue, retire, I-/D-cache miss service, MSHR allocation and release,
//! write-cache coalescing, FPU queue occupancy — and, crucially, every
//! front-end stall, attributed to exactly one [`StallCause`].
//!
//! # The stall-cause taxonomy
//!
//! Stalls are charged to the *binding constraint*: the unit whose ready
//! time is the latest is the one the front end is actually waiting on,
//! and the whole stall region is attributed to it (the precedence rule —
//! on a tie, the earlier-gathered constraint wins; see
//! `docs/OBSERVABILITY.md`). The taxonomy refines the paper's Figure 6
//! categories without changing them: [`StallCause::kind`] is a total map
//! onto [`StallKind`], and the per-cause cycle counts kept by the
//! observer sum *exactly* to the counter-based breakdown — an invariant
//! the test suite asserts across every kernel, model and issue width.
//!
//! The ring buffer is fixed-size and allocation-free after construction
//! (the record path is declared hot and checked by `aurora-lint`
//! L001/L002): when it fills, the oldest event is overwritten and
//! [`Observer::dropped`] counts the loss. The aggregate stall counters
//! and histograms are updated on every record and never drop anything,
//! so attribution totals are exact even when the ring wraps.
//!
//! # Exporting a trace
//!
//! [`Observer::chrome_trace_json`] renders the ring as Chrome
//! trace-event JSON loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>: stalls and miss services become duration
//! (`"X"`) slices on per-unit tracks, queue depths become counter
//! (`"C"`) tracks. The JSON is hand-rolled (no serde dependency) and its
//! well-formedness is enforced by a parser-based test.

use std::fmt;

use crate::stats::{StallBreakdown, StallKind};

/// Default event-ring capacity used when the observer is enabled via
/// [`MachineConfig::observe`](crate::MachineConfig::observe).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Histogram bucket count: values 0–63 map to their own bucket, larger
/// values share the final overflow bucket.
const HIST_BUCKETS: usize = 65;

/// The fine-grained cause a stalled issue slot is attributed to.
///
/// Every non-issued front-end slot is charged to exactly one cause — the
/// binding constraint of the would-be issue cycle. The first eight
/// causes are the observability taxonomy proper; `FpuSyncQueue` /
/// `FpuSyncResult` split the paper's single "FPU synchronisation" idea
/// into its two distinct mechanisms (waiting for queue space vs. waiting
/// for a result), because they map to different Figure 6 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Waiting for the instruction fetch: I-cache miss service.
    Icache,
    /// Fetch bubble from a taken control transfer that could not be
    /// folded (no pre-decoded NEXT target, or folding disabled).
    Branch,
    /// A load's result was referenced before the LSU delivered it.
    DcacheLoad,
    /// The LSU data port was busy: a store occupying the pipe, a line
    /// fill on the data busses, or a backed-up FP load queue.
    DcacheStoreBufferFull,
    /// Every miss status holding register was in use and the access
    /// could not merge into an outstanding fill.
    MshrFull,
    /// Scoreboard interlock on a non-load integer producer (ALU
    /// forwarding, HI/LO multiply/divide results).
    RawDep,
    /// Structural hazard: the reorder buffer was full.
    Structural,
    /// FPU synchronisation: the instruction or store-data queue into the
    /// decoupled FPU was full.
    FpuSyncQueue,
    /// FPU synchronisation: waiting for an FPU result on the IPU side
    /// (`mfc1` data, FP condition code for a branch).
    FpuSyncResult,
}

impl StallCause {
    /// All causes, coarse Figure 6 grouping order first.
    pub const ALL: [StallCause; 9] = [
        StallCause::Icache,
        StallCause::Branch,
        StallCause::DcacheLoad,
        StallCause::DcacheStoreBufferFull,
        StallCause::MshrFull,
        StallCause::RawDep,
        StallCause::Structural,
        StallCause::FpuSyncQueue,
        StallCause::FpuSyncResult,
    ];

    /// Short kebab-case label used in reports and trace names.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Icache => "icache",
            StallCause::Branch => "branch",
            StallCause::DcacheLoad => "dcache-load",
            StallCause::DcacheStoreBufferFull => "dcache-store-buffer-full",
            StallCause::MshrFull => "mshr-full",
            StallCause::RawDep => "raw-dep",
            StallCause::Structural => "structural",
            StallCause::FpuSyncQueue => "fpu-sync-queue",
            StallCause::FpuSyncResult => "fpu-sync-result",
        }
    }

    /// The coarse [`StallKind`] counter this cause is accounted under.
    ///
    /// This map is total and fixed: the counter-based breakdown in
    /// [`SimStats`](crate::SimStats) is *derived from the same charge
    /// sites*, so summing observer causes through this map reproduces
    /// the counters bit for bit (asserted by the attribution tests).
    pub fn kind(self) -> StallKind {
        match self {
            StallCause::Icache | StallCause::Branch => StallKind::ICache,
            StallCause::DcacheLoad => StallKind::Load,
            StallCause::DcacheStoreBufferFull | StallCause::MshrFull => StallKind::LsuBusy,
            StallCause::RawDep => StallKind::Interlock,
            StallCause::Structural => StallKind::RobFull,
            StallCause::FpuSyncQueue => StallKind::FpQueue,
            StallCause::FpuSyncResult => StallKind::FpResult,
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            StallCause::Icache => 0,
            StallCause::Branch => 1,
            StallCause::DcacheLoad => 2,
            StallCause::DcacheStoreBufferFull => 3,
            StallCause::MshrFull => 4,
            StallCause::RawDep => 5,
            StallCause::Structural => 6,
            StallCause::FpuSyncQueue => 7,
            StallCause::FpuSyncResult => 8,
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened at an [`ObsEvent`]'s cycle.
///
/// Span-like occurrences (miss service, MSHR residency, stalls) carry
/// their duration so one record captures both the start and the end;
/// such records are stamped at the span's *start* cycle except
/// [`ObsEventKind::MshrFree`], which is stamped at release (its `held`
/// field points back to the allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A new aligned pair was requested from the fetch unit.
    Fetch {
        /// Address of the first instruction fetched.
        pc: u64,
    },
    /// An instruction left the issue stage.
    Issue {
        /// The instruction's address.
        pc: u32,
        /// Whether it issued as the second member of a dual pair.
        dual: bool,
    },
    /// An integer-side instruction retired from the reorder buffer
    /// (stamped at its completion cycle, which may lie in the future of
    /// the record that produced it).
    Retire,
    /// The front end stalled for `cycles`, attributed to `cause`.
    Stall {
        /// The binding constraint.
        cause: StallCause,
        /// Length of the stall region in cycles.
        cycles: u64,
    },
    /// An instruction-cache miss began service; the fill lands
    /// `latency` cycles later.
    IcacheMiss {
        /// Service time in cycles (miss start to line on chip).
        latency: u64,
    },
    /// A data-cache primary miss began service; the fill lands
    /// `latency` cycles later.
    DcacheMiss {
        /// Service time in cycles (miss start to fill arrival).
        latency: u64,
    },
    /// A miss status holding register was allocated.
    MshrAlloc {
        /// Live entries after the allocation.
        occupancy: u64,
    },
    /// A miss status holding register is released at this cycle.
    MshrFree {
        /// How long the register was held.
        held: u64,
    },
    /// A store coalesced into an existing write-cache line.
    WriteCacheMerge,
    /// An FP instruction entered the FPU instruction queue.
    FpQueueDepth {
        /// Queue occupancy just after dispatch.
        depth: u64,
    },
}

/// One timestamped entry of the observer's event ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Simulation cycle the event is stamped at.
    pub cycle: u64,
    /// What happened.
    pub kind: ObsEventKind,
}

/// A fixed-bucket latency/occupancy histogram.
///
/// Values 0–63 each get their own bucket; anything larger lands in a
/// shared overflow bucket (the exact maximum is still tracked). Both
/// recording and querying are allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (value as usize).min(HIST_BUCKETS - 1);
        if let Some(slot) = self.buckets.get_mut(bucket) {
            *slot += 1;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The smallest value `v` such that at least `p` (0.0–1.0) of the
    /// samples are `<= v`. Samples in the overflow bucket report the
    /// recorded maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold.max(1) {
                return if i == HIST_BUCKETS - 1 {
                    self.max
                } else {
                    i as u64
                };
            }
        }
        self.max
    }

    /// Iterates over `(value, count)` for non-empty exact buckets, then
    /// a final `(max, count)` entry for the overflow bucket if occupied.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter_map(|(i, &n)| {
            (n > 0).then_some(if i == HIST_BUCKETS - 1 {
                (self.max, n)
            } else {
                (i as u64, n)
            })
        })
    }
}

/// The cycle-event recorder attached to a
/// [`Simulator`](crate::Simulator).
///
/// Holds a preallocated drop-oldest ring of [`ObsEvent`]s plus exact
/// aggregates that never drop: per-[`StallCause`] cycle counters and
/// three histograms (D-cache miss latency, MSHR residency, FPU
/// instruction-queue depth). Retrieve it with
/// [`Simulator::finish_observed`](crate::Simulator::finish_observed) or
/// inspect it mid-run via
/// [`Simulator::observer`](crate::Simulator::observer).
#[derive(Debug, Clone)]
pub struct Observer {
    ring: Vec<ObsEvent>,
    /// Index of the oldest live entry.
    head: usize,
    /// Live entries (<= ring.len()).
    len: usize,
    dropped: u64,
    stall_cycles: [u64; 9],
    dmiss_latency: Histogram,
    mshr_residency: Histogram,
    fpq_depth: Histogram,
}

impl Observer {
    /// Creates an observer with a ring of `capacity` events (at least 1),
    /// fully preallocated: recording never allocates.
    pub fn new(capacity: usize) -> Observer {
        let capacity = capacity.max(1);
        Observer {
            ring: vec![
                ObsEvent {
                    cycle: 0,
                    kind: ObsEventKind::Retire,
                };
                capacity
            ],
            head: 0,
            len: 0,
            dropped: 0,
            stall_cycles: [0; 9],
            dmiss_latency: Histogram::default(),
            mshr_residency: Histogram::default(),
            fpq_depth: Histogram::default(),
        }
    }

    /// Records one event, updating the exact aggregates and overwriting
    /// the oldest ring entry when full. This is the simulator's per-event
    /// hot path: allocation- and panic-free by construction.
    ///
    /// Never inlined: the simulator's issue loop tests `observe` and
    /// skips the call entirely, and outlining keeps the disabled path's
    /// code footprint at a null test instead of a ring-write body per
    /// record site (the observe=false throughput budget is ≤2%).
    #[cold]
    #[inline(never)]
    pub fn record(&mut self, cycle: u64, kind: ObsEventKind) {
        self.record_one(cycle, kind);
    }

    /// Records a batch of staged events in order, equivalent to calling
    /// [`Observer::record`] once per event. The simulator buffers events
    /// in a small fixed array inside its issue loop and flushes per
    /// group, so the cold outlined call (and its branch-predictor miss)
    /// is paid once per issue group instead of once per event.
    #[cold]
    #[inline(never)]
    pub fn record_batch(&mut self, events: &[ObsEvent]) {
        for e in events {
            self.record_one(e.cycle, e.kind);
        }
    }

    #[inline]
    fn record_one(&mut self, cycle: u64, kind: ObsEventKind) {
        match kind {
            ObsEventKind::Stall { cause, cycles } => {
                if let Some(slot) = self.stall_cycles.get_mut(cause.index()) {
                    *slot = slot.saturating_add(cycles);
                }
            }
            ObsEventKind::DcacheMiss { latency } => self.dmiss_latency.record(latency),
            ObsEventKind::MshrFree { held } => self.mshr_residency.record(held),
            ObsEventKind::FpQueueDepth { depth } => self.fpq_depth.record(depth),
            _ => {}
        }
        let cap = self.ring.len();
        let idx = if self.len < cap {
            let i = self.head + self.len;
            self.len += 1;
            if i >= cap {
                i - cap
            } else {
                i
            }
        } else {
            let i = self.head;
            self.head += 1;
            if self.head >= cap {
                self.head = 0;
            }
            self.dropped += 1;
            i
        };
        if let Some(slot) = self.ring.get_mut(idx) {
            *slot = ObsEvent { cycle, kind };
        }
    }

    /// Live events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> + '_ {
        let cap = self.ring.len();
        (0..self.len).filter_map(move |i| self.ring.get((self.head + i) % cap))
    }

    /// Number of live events in the ring.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Events overwritten because the ring was full. The aggregate stall
    /// counters and histograms are unaffected by drops.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stall cycles attributed to one cause.
    pub fn stall_cycles(&self, cause: StallCause) -> u64 {
        self.stall_cycles.get(cause.index()).copied().unwrap_or(0)
    }

    /// Total stall cycles across all causes. Equals
    /// `SimStats::stalls.total()` for the same run — the attribution-sum
    /// invariant.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// The per-cause counters folded onto the coarse [`StallKind`]
    /// categories via [`StallCause::kind`]. Bit-identical to the
    /// counter-based `SimStats::stalls` of the same run.
    pub fn stalls_by_kind(&self) -> StallBreakdown {
        let mut out = StallBreakdown::default();
        for cause in StallCause::ALL {
            out[cause.kind()] += self.stall_cycles(cause);
        }
        out
    }

    /// Iterates `(cause, cycles)` over all causes, taxonomy order.
    pub fn stall_breakdown(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL
            .into_iter()
            .map(|c| (c, self.stall_cycles(c)))
    }

    /// Data-cache primary-miss service latency distribution.
    pub fn dmiss_latency(&self) -> &Histogram {
        &self.dmiss_latency
    }

    /// MSHR residency (allocation to release) distribution.
    pub fn mshr_residency(&self) -> &Histogram {
        &self.mshr_residency
    }

    /// FPU instruction-queue occupancy sampled at each dispatch.
    pub fn fpq_depth(&self) -> &Histogram {
        &self.fpq_depth
    }

    /// Clears all events and aggregates, keeping the allocation. Used by
    /// `mark_warm` so warm measurements see only post-warm-up events.
    pub fn reset(&mut self) {
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        self.stall_cycles = [0; 9];
        self.dmiss_latency = Histogram::default();
        self.mshr_residency = Histogram::default();
        self.fpq_depth = Histogram::default();
    }

    /// Renders the ring as Chrome trace-event JSON, loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Cycles map 1:1 onto microsecond timestamps (`ts`), so one
    /// trace-viewer microsecond is one machine cycle. Per-unit activity
    /// appears as named threads: stalls and issues on the `issue` track,
    /// miss services on the `icache`/`dcache` tracks, MSHR residency
    /// spans on `mshr`, write-cache merges on `write-cache`, and queue
    /// occupancy as counter tracks.
    pub fn chrome_trace_json(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::with_capacity(self.len * 96 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (tid, name) in [
            (0, "issue"),
            (1, "icache"),
            (2, "dcache"),
            (3, "mshr"),
            (4, "write-cache"),
            (5, "fpu"),
        ] {
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}},"
            );
        }
        let mut first = true;
        for ev in self.events() {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = ev.cycle;
            match ev.kind {
                ObsEventKind::Fetch { pc } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"s\":\"t\",\
                         \"name\":\"fetch\",\"args\":{{\"pc\":{pc}}}}}"
                    );
                }
                ObsEventKind::Issue { pc, dual } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"s\":\"t\",\
                         \"name\":\"issue\",\"args\":{{\"pc\":{pc},\"dual\":{dual}}}}}"
                    );
                }
                ObsEventKind::Retire => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"s\":\"t\",\
                         \"name\":\"retire\",\"args\":{{}}}}"
                    );
                }
                ObsEventKind::Stall { cause, cycles } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{ts},\"dur\":{cycles},\
                         \"name\":\"stall:{}\",\"args\":{{}}}}",
                        cause.label()
                    );
                }
                ObsEventKind::IcacheMiss { latency } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{ts},\"dur\":{latency},\
                         \"name\":\"imiss\",\"args\":{{}}}}"
                    );
                }
                ObsEventKind::DcacheMiss { latency } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":{ts},\"dur\":{latency},\
                         \"name\":\"dmiss\",\"args\":{{}}}}"
                    );
                }
                ObsEventKind::MshrAlloc { occupancy } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":3,\"ts\":{ts},\
                         \"name\":\"mshr_occupancy\",\"args\":{{\"live\":{occupancy}}}}}"
                    );
                }
                ObsEventKind::MshrFree { held } => {
                    let start = ts.saturating_sub(held);
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":{start},\"dur\":{held},\
                         \"name\":\"mshr\",\"args\":{{}}}}"
                    );
                }
                ObsEventKind::WriteCacheMerge => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":4,\"ts\":{ts},\"s\":\"t\",\
                         \"name\":\"wc-merge\",\"args\":{{}}}}"
                    );
                }
                ObsEventKind::FpQueueDepth { depth } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"pid\":1,\"tid\":5,\"ts\":{ts},\
                         \"name\":\"fpu_iq_depth\",\"args\":{{\"depth\":{depth}}}}}"
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_kind_map_is_total_and_onto() {
        // Every coarse kind is reachable from at least one cause.
        for kind in StallKind::ALL {
            assert!(
                StallCause::ALL.iter().any(|c| c.kind() == kind),
                "{kind} unreachable from the cause taxonomy"
            );
        }
        // Indices are unique and dense.
        let mut seen = [false; 9];
        for c in StallCause::ALL {
            assert!(!seen[c.index()], "{c} index duplicated");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let mut o = Observer::new(4);
        for i in 0..10u64 {
            o.record(i, ObsEventKind::Fetch { pc: i });
        }
        assert_eq!(o.len(), 4);
        assert_eq!(o.capacity(), 4);
        assert_eq!(o.dropped(), 6);
        let cycles: Vec<u64> = o.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "newest four survive, in order");
    }

    #[test]
    fn aggregates_survive_ring_drops() {
        let mut o = Observer::new(2);
        for i in 0..100u64 {
            o.record(
                i,
                ObsEventKind::Stall {
                    cause: StallCause::DcacheLoad,
                    cycles: 3,
                },
            );
        }
        assert_eq!(o.len(), 2);
        assert_eq!(o.stall_cycles(StallCause::DcacheLoad), 300);
        assert_eq!(o.total_stall_cycles(), 300);
        assert_eq!(o.stalls_by_kind()[StallKind::Load], 300);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.6).abs() < 1e-9);
        assert_eq!(h.percentile(0.5), 2);
        assert_eq!(h.percentile(1.0), 100, "overflow bucket reports max");
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1, 1), (2, 2), (3, 1), (100, 1)]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut o = Observer::new(8);
        o.record(5, ObsEventKind::DcacheMiss { latency: 20 });
        o.record(
            6,
            ObsEventKind::Stall {
                cause: StallCause::Icache,
                cycles: 4,
            },
        );
        o.reset();
        assert!(o.is_empty());
        assert_eq!(o.total_stall_cycles(), 0);
        assert_eq!(o.dmiss_latency().count(), 0);
        assert_eq!(o.dropped(), 0);
    }

    #[test]
    fn json_mentions_every_track() {
        let mut o = Observer::new(16);
        o.record(0, ObsEventKind::Fetch { pc: 64 });
        o.record(1, ObsEventKind::IcacheMiss { latency: 17 });
        o.record(
            2,
            ObsEventKind::Stall {
                cause: StallCause::MshrFull,
                cycles: 5,
            },
        );
        o.record(3, ObsEventKind::MshrAlloc { occupancy: 1 });
        o.record(9, ObsEventKind::MshrFree { held: 6 });
        o.record(4, ObsEventKind::WriteCacheMerge);
        o.record(5, ObsEventKind::FpQueueDepth { depth: 2 });
        let json = o.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in [
            "\"traceEvents\"",
            "stall:mshr-full",
            "imiss",
            "mshr_occupancy",
            "wc-merge",
            "fpu_iq_depth",
            "thread_name",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
