//! A small in-order-retirement reorder buffer model used by both the IPU
//! and the FPU (paper §2.1, §3.1; Smith & Pleszkun [13]).

use std::collections::VecDeque;

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// Tracks reorder-buffer occupancy for a timing model.
///
/// Entries are pushed at issue with their *completion* cycle. Retirement
/// is in order: an entry leaves at `max(its completion, the previous
/// entry's retirement)` — a long-latency instruction therefore holds up
/// everything behind it, which is exactly how a full ROB stalls issue.
///
/// ```
/// use aurora_core::ReorderBuffer;
///
/// let mut rob = ReorderBuffer::new(2);
/// rob.drain(0);
/// assert!(rob.try_push(10)); // completes at cycle 10
/// assert!(rob.try_push(5));  // completes at 5 but retires at 10 (in order)
/// assert!(!rob.try_push(7)); // full
/// assert_eq!(rob.next_free_at(), Some(10));
/// rob.drain(10);
/// assert!(rob.try_push(12));
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    entries: VecDeque<u64>,
    capacity: usize,
    last_retire: u64,
    peak: usize,
}

impl ReorderBuffer {
    /// Creates a reorder buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReorderBuffer {
        assert!(capacity > 0);
        ReorderBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            last_retire: 0,
            peak: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Highest occupancy ever observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Retires every entry whose in-order retirement time is `<= now`.
    pub fn drain(&mut self, now: u64) {
        while let Some(&front) = self.entries.front() {
            let retire_at = front.max(self.last_retire);
            if retire_at <= now {
                self.last_retire = retire_at;
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Pushes an entry completing at `completes_at`; fails when full.
    pub fn try_push(&mut self, completes_at: u64) -> bool {
        if self.entries.len() == self.capacity {
            return false;
        }
        self.entries.push_back(completes_at);
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// When the oldest entry will retire (freeing a slot), if any are live.
    pub fn next_free_at(&self) -> Option<u64> {
        self.entries
            .front()
            .map(|&front| front.max(self.last_retire))
    }

    /// The next cycle at which this buffer's observable state can change —
    /// the oldest entry's in-order retirement, if any entries are live.
    /// Part of the event-horizon protocol: no slot frees before this.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.next_free_at()
    }

    /// Whether a push would currently succeed.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// The in-order retirement time of the most recently retired entry.
    pub fn last_retire(&self) -> u64 {
        self.last_retire
    }

    /// In-order completion time of the youngest entry (when everything
    /// currently in flight has retired).
    pub fn drained_at(&self) -> u64 {
        self.entries
            .iter()
            .fold(self.last_retire, |acc, &c| acc.max(c))
    }
}

impl Snapshot for ReorderBuffer {
    /// In-flight completion times (in order), the retirement horizon and
    /// the peak-occupancy counter; capacity is configuration.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"ROB_");
        w.put_len(self.entries.len());
        for &c in &self.entries {
            w.put_u64(c);
        }
        w.put_u64(self.last_retire);
        w.put_len(self.peak);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"ROB_")?;
        let n = r.len(self.capacity)?;
        self.entries.clear();
        for _ in 0..n {
            self.entries.push_back(r.u64()?);
        }
        self.last_retire = r.u64()?;
        self.peak = r.len(self.capacity)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_retirement_blocks_on_slow_head() {
        let mut rob = ReorderBuffer::new(3);
        rob.try_push(100); // slow load at the head
        rob.try_push(5);
        rob.try_push(6);
        rob.drain(50);
        // Nothing retires: the head completes at 100.
        assert_eq!(rob.occupancy(), 3);
        rob.drain(100);
        assert_eq!(rob.occupancy(), 0);
        assert_eq!(rob.last_retire(), 100);
    }

    #[test]
    fn next_free_reflects_head() {
        let mut rob = ReorderBuffer::new(1);
        rob.try_push(42);
        assert_eq!(rob.next_free_at(), Some(42));
        assert!(!rob.has_space());
        rob.drain(42);
        assert!(rob.has_space());
        assert_eq!(rob.next_free_at(), None);
    }

    #[test]
    fn drained_at_accounts_for_order() {
        let mut rob = ReorderBuffer::new(4);
        rob.try_push(10);
        rob.try_push(4);
        assert_eq!(rob.drained_at(), 10);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut rob = ReorderBuffer::new(4);
        rob.try_push(1);
        rob.try_push(2);
        rob.drain(2);
        rob.try_push(3);
        assert_eq!(rob.peak_occupancy(), 2);
    }

    proptest! {
        /// Retirement times are monotonically non-decreasing regardless of
        /// completion order, and occupancy never exceeds capacity.
        #[test]
        fn retire_monotone(completions in proptest::collection::vec(0u64..100, 1..50)) {
            let mut rob = ReorderBuffer::new(4);
            let mut now = 0;
            let mut last = 0;
            for c in completions {
                now += 1;
                rob.drain(now);
                if !rob.try_push(c.max(now)) {
                    let free = rob.next_free_at().unwrap();
                    prop_assert!(free > now);
                    rob.drain(free);
                    prop_assert!(rob.try_push(c.max(now)));
                    now = free;
                }
                prop_assert!(rob.occupancy() <= 4);
                prop_assert!(rob.last_retire() >= last);
                last = rob.last_retire();
            }
        }
    }
}
