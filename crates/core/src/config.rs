//! Machine configurations: the paper's three models and every knob the
//! study varies.

use std::fmt;

use aurora_isa::Fnv1a;
use aurora_mem::LatencyModel;

/// Number of integer execution pipelines (paper §4.2: "one or two
/// execution pipes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueWidth {
    /// One instruction per cycle.
    Single,
    /// Two instructions per cycle (an aligned EVEN/ODD pair).
    Dual,
}

impl IssueWidth {
    /// Maximum instructions issued per cycle.
    pub fn width(self) -> usize {
        match self {
            IssueWidth::Single => 1,
            IssueWidth::Dual => 2,
        }
    }
}

impl fmt::Display for IssueWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IssueWidth::Single => "single",
            IssueWidth::Dual => "dual",
        })
    }
}

/// The three resource-allocation models of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineModel {
    /// 1 KB I$, 16 KB D$, 2-line write cache, 2 ROB, 2 prefetch, 1 MSHR.
    Small,
    /// 2 KB I$, 32 KB D$, 4-line write cache, 6 ROB, 4 prefetch, 2 MSHR.
    Baseline,
    /// 4 KB I$, 64 KB D$, 8-line write cache, 8 ROB, 8 prefetch, 4 MSHR.
    Large,
}

impl MachineModel {
    /// All three models in Table 1 order.
    pub const ALL: [MachineModel; 3] = [
        MachineModel::Small,
        MachineModel::Baseline,
        MachineModel::Large,
    ];

    /// The model's row of Table 1 as a full machine configuration.
    pub fn config(self, issue: IssueWidth, latency: LatencyModel) -> MachineConfig {
        let (icache_kb, dcache_kb, wc_lines, rob, pf, mshr) = match self {
            MachineModel::Small => (1, 16, 2, 2, 2, 1),
            MachineModel::Baseline => (2, 32, 4, 6, 4, 2),
            MachineModel::Large => (4, 64, 8, 8, 8, 4),
        };
        MachineConfig {
            name: format!("{self}/{issue}/L{:.0}", latency.mean()),
            issue_width: issue,
            icache_bytes: icache_kb * 1024,
            dcache_bytes: dcache_kb * 1024,
            line_bytes: 32,
            write_cache_lines: wc_lines,
            rob_entries: rob,
            prefetch_buffers: pf,
            prefetch_depth: 3,
            prefetch_enabled: true,
            mshr_entries: mshr,
            memory_latency: latency,
            dcache_latency: 3,
            branch_folding: true,
            write_validation: true,
            cycle_skip: true,
            block_replay: true,
            observe: false,
            fpu: FpuConfig::recommended(),
            seed: 0xA0707A_u64,
        }
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MachineModel::Small => "small",
            MachineModel::Baseline => "baseline",
            MachineModel::Large => "large",
        })
    }
}

/// Floating-point issue policy (paper §5.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpIssuePolicy {
    /// In-order issue, in-order completion: no overlap between FP
    /// instructions at all.
    InOrderComplete,
    /// In-order single issue with out-of-order completion.
    OutOfOrderSingle,
    /// In-order dual issue with out-of-order completion.
    OutOfOrderDual,
}

impl fmt::Display for FpIssuePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FpIssuePolicy::InOrderComplete => "in-order",
            FpIssuePolicy::OutOfOrderSingle => "ooo-single",
            FpIssuePolicy::OutOfOrderDual => "ooo-dual",
        })
    }
}

/// Configuration of the decoupled FPU (paper §3, §5.7–§5.11).
#[derive(Debug, Clone, PartialEq)]
pub struct FpuConfig {
    /// Issue policy.
    pub issue_policy: FpIssuePolicy,
    /// Instruction queue entries between IPU and FPU.
    pub instr_queue: usize,
    /// Load data queue entries.
    pub load_queue: usize,
    /// Store/move-to-IPU data queue entries.
    pub store_queue: usize,
    /// FPU reorder buffer entries.
    pub rob_entries: usize,
    /// Add-unit latency in cycles (1–5 studied).
    pub add_latency: u32,
    /// Multiply-unit latency in cycles (1–5 studied).
    pub mul_latency: u32,
    /// Divide-unit latency in cycles (10–30 studied); `sqrt` shares it.
    pub div_latency: u32,
    /// Conversion-unit latency in cycles (1–5 studied).
    pub cvt_latency: u32,
    /// Whether the add unit is pipelined (accepts one op per cycle).
    pub add_pipelined: bool,
    /// Whether the multiply unit is pipelined. The recommended 5-cycle
    /// iterative multiplier is *not* pipelined (§5.10).
    pub mul_pipelined: bool,
    /// Result busses from the functional units to the reorder buffer.
    pub result_busses: usize,
}

impl FpuConfig {
    /// The architecture recommended by §5.11: dual issue, 5-entry
    /// instruction queue, 2-entry load queue, 6-entry reorder buffer,
    /// 3-cycle add, 5-cycle (iterative) multiply, 19-cycle divide and two
    /// result busses.
    pub fn recommended() -> FpuConfig {
        FpuConfig {
            issue_policy: FpIssuePolicy::OutOfOrderDual,
            instr_queue: 5,
            load_queue: 2,
            store_queue: 3,
            rob_entries: 6,
            add_latency: 3,
            mul_latency: 5,
            div_latency: 19,
            cvt_latency: 2,
            add_pipelined: true,
            mul_pipelined: false,
            result_busses: 2,
        }
    }
}

impl Default for FpuConfig {
    fn default() -> Self {
        FpuConfig::recommended()
    }
}

/// Parameters for SMARTS-style sampled simulation (see [`crate::sample`]).
///
/// A trace is divided into consecutive *sampling units* of
/// [`interval_ops`](SamplingConfig::interval_ops) instructions. Most of
/// each unit is fast-forwarded with functional warming; the last
/// [`warmup_ops`](SamplingConfig::warmup_ops) +
/// [`window_ops`](SamplingConfig::window_ops) instructions run through
/// the detailed model, and only the final `window_ops` are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Instructions measured in detail at the end of each sampling unit.
    pub window_ops: usize,
    /// Detailed (but unmeasured) instructions run immediately before each
    /// window to re-fill short-history state — scoreboard, ROB, queues,
    /// in-flight misses — that functional warming does not touch.
    pub warmup_ops: usize,
    /// Instructions per sampling unit. The first
    /// `interval_ops - warmup_ops - window_ops` are fast-forwarded.
    pub interval_ops: usize,
}

impl SamplingConfig {
    /// Defaults tuned on the benchmark suite: 512-instruction windows
    /// behind 384 instructions of detailed warm-up, one unit every
    /// 10752 instructions (8.3% detail). Functional warming keeps the
    /// long-history structures hot between units, so the warm-up only
    /// re-fills short-history state (scoreboard, ROB, queues, in-flight
    /// misses, busses); 384 instructions measurably suffices on the
    /// suite while 256 does not — secondary-latency misses issued just
    /// before the window still need to drain.
    pub fn recommended() -> SamplingConfig {
        SamplingConfig {
            window_ops: 512,
            warmup_ops: 384,
            interval_ops: 10752,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_ops == 0 {
            return Err("window_ops must be nonzero".to_owned());
        }
        if self.warmup_ops + self.window_ops > self.interval_ops {
            return Err(format!(
                "warmup_ops + window_ops ({}) exceed interval_ops ({})",
                self.warmup_ops + self.window_ops,
                self.interval_ops
            ));
        }
        Ok(())
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::recommended()
    }
}

impl fmt::Display for SamplingConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}w+{}u / {}i",
            self.window_ops, self.warmup_ops, self.interval_ops
        )
    }
}

/// A complete machine configuration for the cycle-level simulator.
///
/// Build one from a [`MachineModel`] preset and adjust individual knobs
/// for sweeps:
///
/// ```
/// use aurora_core::{IssueWidth, MachineModel};
/// use aurora_mem::LatencyModel;
///
/// let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
/// cfg.mshr_entries = 4; // Figure 7's "mshr variations" point
/// assert_eq!(cfg.icache_bytes, 2048);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable tag used in reports.
    pub name: String,
    /// Single or dual issue.
    pub issue_width: IssueWidth,
    /// On-chip instruction cache size in bytes.
    pub icache_bytes: u32,
    /// External data cache size in bytes.
    pub dcache_bytes: u32,
    /// Cache line size in bytes (32 = 8 words everywhere in the paper).
    pub line_bytes: u32,
    /// Coalescing write-cache lines.
    pub write_cache_lines: usize,
    /// IPU reorder-buffer entries.
    pub rob_entries: usize,
    /// Prefetch stream buffers (shared between I and D streams).
    pub prefetch_buffers: usize,
    /// Lines per stream buffer.
    pub prefetch_depth: usize,
    /// Whether the prefetch unit exists (Figure 5 removes it).
    pub prefetch_enabled: bool,
    /// Miss status holding registers.
    pub mshr_entries: usize,
    /// Secondary memory latency model (17- or 35-cycle average).
    pub memory_latency: LatencyModel,
    /// Pipelined external data cache latency in cycles.
    pub dcache_latency: u32,
    /// Whether the pre-decoded NEXT field folds taken branches (Figure 3).
    /// Disabling charges a fetch bubble on every taken control transfer.
    pub branch_folding: bool,
    /// Whether the write cache's page-field micro-TLB validates stores
    /// (§2.3). Disabling forces an MMU round trip for *every* store.
    pub write_validation: bool,
    /// Whether the simulator jumps the clock straight to the next event
    /// horizon across quiescent stall regions (the fast default). When
    /// `false` the hot loop walks every intervening cycle and performs
    /// unit maintenance at each one — a naive reference mode kept for
    /// differential testing; both modes must produce identical stats.
    pub cycle_skip: bool,
    /// Whether block-mode replay
    /// ([`Simulator::feed_blocks`](crate::Simulator::feed_blocks)) may
    /// execute scoreboard-only superinstruction runs through the block
    /// fast path. When `false`
    /// the block engine still consumes a lowered `BlockTrace` but walks
    /// it op by op — a reference mode for differential testing and for
    /// isolating how much the fast path itself contributes. Stats are
    /// bit-identical either way (asserted).
    pub block_replay: bool,
    /// Whether the simulator attaches a cycle-event
    /// [`Observer`](crate::Observer) recording per-unit events, the
    /// fine-grained stall-cause attribution and histograms (see
    /// `crate::obs`). Off by default and zero-cost when off: the
    /// [`SimStats`](crate::SimStats) of a run are bit-identical either
    /// way, which the differential suite asserts.
    pub observe: bool,
    /// The decoupled FPU configuration.
    pub fpu: FpuConfig,
    /// Seed for the latency distribution.
    pub seed: u64,
}

impl MachineConfig {
    /// A stable 64-bit fingerprint of every *semantic* knob — the fields
    /// that can change simulation statistics. Two configs with equal
    /// fingerprints produce bit-identical [`SimStats`](crate::SimStats)
    /// for any trace, so memoised results (the `aurora-serve` result
    /// store) key on this value.
    ///
    /// Deliberately excluded:
    ///
    /// * [`name`](MachineConfig::name) — a human-readable label;
    /// * [`cycle_skip`](MachineConfig::cycle_skip),
    ///   [`block_replay`](MachineConfig::block_replay) and
    ///   [`observe`](MachineConfig::observe) — execution-mode knobs whose
    ///   on/off statistics are proven bit-identical by the differential
    ///   suites, so caching them separately would only split the memo.
    ///
    /// The fingerprint is cross-process stable ([`Fnv1a`], little-endian
    /// field order as written below); any semantic-field addition must
    /// extend this function, which the config-coverage lint (L004) and
    /// the serve store's versioning both lean on.
    ///
    /// ```
    /// use aurora_core::{IssueWidth, MachineModel};
    /// use aurora_mem::LatencyModel;
    ///
    /// let a = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    /// let mut b = a.clone();
    /// b.name = "renamed".to_owned(); // label only — same machine
    /// b.observe = true; // proven stats-neutral
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// b.mshr_entries += 1; // a real resource change
    /// assert_ne!(a.fingerprint(), b.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u8(match self.issue_width {
            IssueWidth::Single => 1,
            IssueWidth::Dual => 2,
        });
        h.write_u32(self.icache_bytes);
        h.write_u32(self.dcache_bytes);
        h.write_u32(self.line_bytes);
        h.write_usize(self.write_cache_lines);
        h.write_usize(self.rob_entries);
        h.write_usize(self.prefetch_buffers);
        h.write_usize(self.prefetch_depth);
        h.write_bool(self.prefetch_enabled);
        h.write_usize(self.mshr_entries);
        match self.memory_latency {
            LatencyModel::Fixed(l) => {
                h.write_u8(0);
                h.write_u32(l);
            }
            LatencyModel::Uniform { lo, hi } => {
                h.write_u8(1);
                h.write_u32(lo);
                h.write_u32(hi);
            }
            LatencyModel::Bimodal {
                hit,
                miss,
                hit_permille,
            } => {
                h.write_u8(2);
                h.write_u32(hit);
                h.write_u32(miss);
                h.write_u16(hit_permille);
            }
        }
        h.write_u32(self.dcache_latency);
        h.write_bool(self.branch_folding);
        h.write_bool(self.write_validation);
        h.write_u8(match self.fpu.issue_policy {
            FpIssuePolicy::InOrderComplete => 0,
            FpIssuePolicy::OutOfOrderSingle => 1,
            FpIssuePolicy::OutOfOrderDual => 2,
        });
        h.write_usize(self.fpu.instr_queue);
        h.write_usize(self.fpu.load_queue);
        h.write_usize(self.fpu.store_queue);
        h.write_usize(self.fpu.rob_entries);
        h.write_u32(self.fpu.add_latency);
        h.write_u32(self.fpu.mul_latency);
        h.write_u32(self.fpu.div_latency);
        h.write_u32(self.fpu.cvt_latency);
        h.write_bool(self.fpu.add_pipelined);
        h.write_bool(self.fpu.mul_pipelined);
        h.write_usize(self.fpu.result_busses);
        // The latency RNG seed changes drawn latencies and therefore
        // stats: it is semantic.
        h.write_u64(self.seed);
        h.finish()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.icache_bytes.is_power_of_two() || self.icache_bytes < self.line_bytes {
            return Err(format!("icache_bytes {} invalid", self.icache_bytes));
        }
        if !self.dcache_bytes.is_power_of_two() || self.dcache_bytes < self.line_bytes {
            return Err(format!("dcache_bytes {} invalid", self.dcache_bytes));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line_bytes {} invalid", self.line_bytes));
        }
        for (name, v) in [
            ("write_cache_lines", self.write_cache_lines),
            ("rob_entries", self.rob_entries),
            ("mshr_entries", self.mshr_entries),
            ("fpu.instr_queue", self.fpu.instr_queue),
            ("fpu.load_queue", self.fpu.load_queue),
            ("fpu.store_queue", self.fpu.store_queue),
            ("fpu.rob_entries", self.fpu.rob_entries),
            ("fpu.result_busses", self.fpu.result_busses),
        ] {
            if v == 0 {
                return Err(format!("{name} must be nonzero"));
            }
        }
        if self.prefetch_enabled && (self.prefetch_buffers == 0 || self.prefetch_depth == 0) {
            return Err("prefetch enabled but zero buffers/depth".to_owned());
        }
        if self.dcache_latency == 0 {
            return Err("dcache_latency must be nonzero".to_owned());
        }
        Ok(())
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} issue, {}K I$/{}K D$, {}-line WC, {} ROB, {}x{} prefetch{}, {} MSHR, mem {:.0}",
            self.name,
            self.issue_width,
            self.icache_bytes / 1024,
            self.dcache_bytes / 1024,
            self.write_cache_lines,
            self.rob_entries,
            self.prefetch_buffers,
            self.prefetch_depth,
            if self.prefetch_enabled {
                ""
            } else {
                " (disabled)"
            },
            self.mshr_entries,
            self.memory_latency.mean(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let s = MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17));
        assert_eq!(s.icache_bytes, 1024);
        assert_eq!(s.dcache_bytes, 16 * 1024);
        assert_eq!(s.write_cache_lines, 2);
        assert_eq!(s.rob_entries, 2);
        assert_eq!(s.prefetch_buffers, 2);
        assert_eq!(s.mshr_entries, 1);

        let b = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        assert_eq!((b.icache_bytes, b.dcache_bytes), (2048, 32768));
        assert_eq!((b.write_cache_lines, b.rob_entries), (4, 6));
        assert_eq!((b.prefetch_buffers, b.mshr_entries), (4, 2));

        let l = MachineModel::Large.config(IssueWidth::Dual, LatencyModel::Fixed(35));
        assert_eq!((l.icache_bytes, l.dcache_bytes), (4096, 65536));
        assert_eq!((l.write_cache_lines, l.rob_entries), (8, 8));
        assert_eq!((l.prefetch_buffers, l.mshr_entries), (8, 4));
    }

    #[test]
    fn presets_validate() {
        for m in MachineModel::ALL {
            for issue in [IssueWidth::Single, IssueWidth::Dual] {
                let cfg = m.config(issue, LatencyModel::average_17());
                cfg.validate().unwrap();
            }
        }
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut cfg = MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17));
        cfg.icache_bytes = 1000;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17));
        cfg.mshr_entries = 0;
        assert!(cfg.validate().unwrap_err().contains("mshr"));

        let mut cfg = MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17));
        cfg.fpu.result_busses = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn recommended_fpu_matches_section_5_11() {
        let fpu = FpuConfig::recommended();
        assert_eq!(fpu.issue_policy, FpIssuePolicy::OutOfOrderDual);
        assert_eq!(fpu.instr_queue, 5);
        assert_eq!(fpu.load_queue, 2);
        assert_eq!(fpu.rob_entries, 6);
        assert_eq!(fpu.add_latency, 3);
        assert_eq!(fpu.mul_latency, 5);
        assert_eq!(fpu.div_latency, 19);
        assert_eq!(fpu.result_busses, 2);
    }

    #[test]
    fn sampling_config_validates() {
        SamplingConfig::recommended().validate().unwrap();
        let zero = SamplingConfig {
            window_ops: 0,
            ..SamplingConfig::recommended()
        };
        assert!(zero.validate().unwrap_err().contains("window"));
        let oversub = SamplingConfig {
            window_ops: 600,
            warmup_ops: 500,
            interval_ops: 1000,
        };
        assert!(oversub.validate().unwrap_err().contains("exceed"));
        // A fully-detailed degenerate config is allowed.
        SamplingConfig {
            window_ops: 500,
            warmup_ops: 500,
            interval_ops: 1000,
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn fingerprint_ignores_labels_and_mode_knobs() {
        let a = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let mut b = a.clone();
        b.name = "other-label".to_owned();
        b.cycle_skip = false;
        b.block_replay = false;
        b.observe = true;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_every_semantic_knob() {
        let base = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let fp = base.fingerprint();
        let variants: Vec<MachineConfig> = vec![
            {
                let mut c = base.clone();
                c.issue_width = IssueWidth::Single;
                c
            },
            {
                let mut c = base.clone();
                c.icache_bytes *= 2;
                c
            },
            {
                let mut c = base.clone();
                c.mshr_entries += 1;
                c
            },
            {
                let mut c = base.clone();
                c.memory_latency = LatencyModel::average_17();
                c
            },
            {
                let mut c = base.clone();
                c.memory_latency = LatencyModel::Bimodal {
                    hit: 9,
                    miss: 25,
                    hit_permille: 500,
                };
                c
            },
            {
                let mut c = base.clone();
                c.prefetch_enabled = false;
                c
            },
            {
                let mut c = base.clone();
                c.fpu.mul_pipelined = true;
                c
            },
            {
                let mut c = base.clone();
                c.seed ^= 1;
                c
            },
        ];
        let mut fps: Vec<u64> = variants.iter().map(MachineConfig::fingerprint).collect();
        fps.push(fp);
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "two distinct configs share a fingerprint");
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let cfg = MachineModel::Large.config(IssueWidth::Single, LatencyModel::average_35());
        assert_eq!(cfg.fingerprint(), cfg.clone().fingerprint());
    }

    #[test]
    fn display_is_informative() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let s = cfg.to_string();
        assert!(s.contains("dual"));
        assert!(s.contains("2K I$"));
    }
}
