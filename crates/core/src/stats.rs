//! Simulation statistics: cycles, CPI, and the stall-cycle breakdown of
//! paper Figure 6.

use std::fmt;
use std::ops::{Index, IndexMut};

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use aurora_mem::{BiuStats, CacheStats, MshrStats, StreamStats, WriteCacheStats};

/// The IPU stall conditions the paper attributes cycles to (§5.3), plus
/// the two FPU-coupling stalls relevant for floating-point workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Waiting for instructions (instruction-cache miss service).
    ICache,
    /// The result of a load was referenced before the LSU returned it.
    Load,
    /// The reorder buffer was full.
    RobFull,
    /// The LSU could not accept: port busy, MSHRs exhausted, or the data
    /// busses were being used to fill the cache.
    LsuBusy,
    /// The FPU instruction/load/store queue was full.
    FpQueue,
    /// Waiting for an FPU result (`mfc1`, FP condition for a branch).
    FpResult,
    /// Scoreboard interlock on a non-load integer producer (HI/LO results
    /// of multiply/divide).
    Interlock,
}

impl StallKind {
    /// All stall kinds, in Figure 6's order then the extensions.
    pub const ALL: [StallKind; 7] = [
        StallKind::ICache,
        StallKind::Load,
        StallKind::RobFull,
        StallKind::LsuBusy,
        StallKind::FpQueue,
        StallKind::FpResult,
        StallKind::Interlock,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::ICache => "ICache",
            StallKind::Load => "Load",
            StallKind::RobFull => "ROB-full",
            StallKind::LsuBusy => "LSU-busy",
            StallKind::FpQueue => "FP-queue",
            StallKind::FpResult => "FP-result",
            StallKind::Interlock => "Interlock",
        }
    }

    fn index(self) -> usize {
        match self {
            StallKind::ICache => 0,
            StallKind::Load => 1,
            StallKind::RobFull => 2,
            StallKind::LsuBusy => 3,
            StallKind::FpQueue => 4,
            StallKind::FpResult => 5,
            StallKind::Interlock => 6,
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stall cycles attributed per [`StallKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown([u64; 7]);

impl StallBreakdown {
    /// Total stall cycles across all kinds.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates over `(kind, cycles)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StallKind, u64)> + '_ {
        StallKind::ALL.into_iter().map(|k| (k, self.0[k.index()]))
    }
}

impl Index<StallKind> for StallBreakdown {
    type Output = u64;

    fn index(&self, kind: StallKind) -> &u64 {
        // Destructuring instead of slice indexing: stall attribution runs
        // once per issue slot, and a match on the unpacked array has no
        // bounds check and no panic path.
        let [icache, load, rob, lsu, fpq, fpr, ilk] = &self.0;
        match kind {
            StallKind::ICache => icache,
            StallKind::Load => load,
            StallKind::RobFull => rob,
            StallKind::LsuBusy => lsu,
            StallKind::FpQueue => fpq,
            StallKind::FpResult => fpr,
            StallKind::Interlock => ilk,
        }
    }
}

impl IndexMut<StallKind> for StallBreakdown {
    fn index_mut(&mut self, kind: StallKind) -> &mut u64 {
        let [icache, load, rob, lsu, fpq, fpr, ilk] = &mut self.0;
        match kind {
            StallKind::ICache => icache,
            StallKind::Load => load,
            StallKind::RobFull => rob,
            StallKind::LsuBusy => lsu,
            StallKind::FpQueue => fpq,
            StallKind::FpResult => fpr,
            StallKind::Interlock => ilk,
        }
    }
}

/// Everything a simulation run produces.
///
/// Equality is field-exact, which is what replay-equivalence tests want:
/// a packed-trace replay must reproduce a streamed run bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total simulated cycles (including pipeline drain at the end).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Whole-pipeline stall cycles, attributed to their binding cause.
    pub stalls: StallBreakdown,
    /// Instruction-cache hits and misses.
    pub icache: CacheStats,
    /// Data-cache hits and misses (loads and stores).
    pub dcache: CacheStats,
    /// Stream-buffer probes for the instruction stream.
    pub istream: StreamStats,
    /// Stream-buffer probes for the data stream.
    pub dstream: StreamStats,
    /// Write-cache behaviour.
    pub write_cache: WriteCacheStats,
    /// MSHR file behaviour.
    pub mshr: MshrStats,
    /// Bus interface transactions.
    pub biu: BiuStats,
    /// Instructions executed in the FPU.
    pub fp_instructions: u64,
    /// FP instructions the FPU issued in pairs (dual-issue policy only).
    pub fp_dual_issues: u64,
    /// Taken-branch fetches that were folded (zero-bubble).
    pub folded_branches: u64,
    /// Taken-branch fetches that could not be folded.
    pub unfolded_branches: u64,
    /// Instructions issued as the second member of a dual-issue pair.
    pub dual_issues: u64,
}

impl SimStats {
    /// Cycles per instruction — the paper's primary metric.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions as f64
    }

    /// CPI penalty contributed by one stall kind (Figure 6's y axis).
    pub fn stall_cpi(&self, kind: StallKind) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.stalls[kind] as f64 / self.instructions as f64
    }

    /// Fraction of dynamic instructions that issued as the second half of
    /// a pair (dual-issue utilisation).
    pub fn dual_issue_rate(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.dual_issues as f64 / self.instructions as f64
    }
}

impl SimStats {
    /// Column headers matching [`SimStats::csv_row`], for plotting scripts.
    pub fn csv_header() -> &'static str {
        "cycles,instructions,cpi,icache_hit,dcache_hit,ipf_hit,dpf_hit,         wc_hit,wc_traffic,dual_rate,stall_icache,stall_load,stall_rob,         stall_lsu,stall_fpq,stall_fpr,stall_interlock"
    }

    /// One comma-separated row of the headline metrics.
    pub fn csv_row(&self) -> String {
        let s = |k: StallKind| format!("{:.4}", self.stall_cpi(k));
        format!(
            "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{},{}",
            self.cycles,
            self.instructions,
            self.cpi(),
            self.icache.hit_rate(),
            self.dcache.hit_rate(),
            self.istream.hit_rate(),
            self.dstream.hit_rate(),
            self.write_cache.hit_rate(),
            self.write_cache.traffic_ratio(),
            self.dual_issue_rate(),
            s(StallKind::ICache),
            s(StallKind::Load),
            s(StallKind::RobFull),
            s(StallKind::LsuBusy),
            s(StallKind::FpQueue),
            s(StallKind::FpResult),
            s(StallKind::Interlock),
        )
    }
}

impl SimStats {
    /// Serializes every counter into a standalone snapshot image (the
    /// same versioned `AURACKPT` container whole-machine checkpoints
    /// use). This is the persistence format of the `aurora-serve` result
    /// store: decoding with [`SimStats::from_snapshot_bytes`] reproduces
    /// the struct bit for bit, so a memoised result is indistinguishable
    /// from a fresh simulation.
    ///
    /// ```
    /// use aurora_core::SimStats;
    ///
    /// let stats = SimStats { cycles: 150, instructions: 100, ..SimStats::default() };
    /// let bytes = stats.to_snapshot_bytes();
    /// assert_eq!(SimStats::from_snapshot_bytes(&bytes).unwrap(), stats);
    /// ```
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.save(&mut w);
        w.finish()
    }

    /// Decodes a [`SimStats::to_snapshot_bytes`] image.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a bad magic, a version mismatch,
    /// truncation, or trailing bytes — arbitrary input can be fed in
    /// safely, which is what the result store's corruption recovery
    /// relies on.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<SimStats, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let mut stats = SimStats::default();
        stats.restore(&mut r)?;
        r.finish()?;
        Ok(stats)
    }

    /// A stable fingerprint of the full statistics image — every counter,
    /// not just the headline CPI. Equal fingerprints mean bit-identical
    /// stats, which is how `aurora-serve` clients verify warm-path
    /// answers against direct simulation without shipping every counter
    /// over the wire.
    pub fn fingerprint(&self) -> u64 {
        aurora_isa::fnv1a(&self.to_snapshot_bytes())
    }
}

impl Snapshot for SimStats {
    /// Every counter, in declaration order; the stall breakdown is keyed
    /// by [`StallKind::ALL`]'s order so the layout is stable even if the
    /// backing array changes representation.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"STAT");
        w.put_u64(self.cycles);
        w.put_u64(self.instructions);
        for kind in StallKind::ALL {
            w.put_u64(self.stalls[kind]);
        }
        self.icache.save(w);
        self.dcache.save(w);
        self.istream.save(w);
        self.dstream.save(w);
        self.write_cache.save(w);
        self.mshr.save(w);
        self.biu.save(w);
        w.put_u64(self.fp_instructions);
        w.put_u64(self.fp_dual_issues);
        w.put_u64(self.folded_branches);
        w.put_u64(self.unfolded_branches);
        w.put_u64(self.dual_issues);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"STAT")?;
        self.cycles = r.u64()?;
        self.instructions = r.u64()?;
        for kind in StallKind::ALL {
            self.stalls[kind] = r.u64()?;
        }
        self.icache.restore(r)?;
        self.dcache.restore(r)?;
        self.istream.restore(r)?;
        self.dstream.restore(r)?;
        self.write_cache.restore(r)?;
        self.mshr.restore(r)?;
        self.biu.restore(r)?;
        self.fp_instructions = r.u64()?;
        self.fp_dual_issues = r.u64()?;
        self.folded_branches = r.u64()?;
        self.unfolded_branches = r.u64()?;
        self.dual_issues = r.u64()?;
        Ok(())
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} instructions in {} cycles: CPI {:.3}",
            self.instructions,
            self.cycles,
            self.cpi()
        )?;
        writeln!(f, "  I$: {}", self.icache)?;
        writeln!(f, "  D$: {}", self.dcache)?;
        writeln!(f, "  I-prefetch: {}", self.istream)?;
        writeln!(f, "  D-prefetch: {}", self.dstream)?;
        writeln!(f, "  write cache: {}", self.write_cache)?;
        writeln!(f, "  MSHR: {}", self.mshr)?;
        writeln!(f, "  BIU: {}", self.biu)?;
        write!(f, "  stalls:")?;
        for (kind, cycles) in self.stalls.iter() {
            if cycles > 0 {
                write!(
                    f,
                    " {}={:.3}",
                    kind,
                    cycles as f64 / self.instructions.max(1) as f64
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_indexing() {
        let mut b = StallBreakdown::default();
        b[StallKind::Load] += 10;
        b[StallKind::ICache] += 5;
        assert_eq!(b[StallKind::Load], 10);
        assert_eq!(b.total(), 15);
        let collected: Vec<_> = b.iter().collect();
        assert_eq!(collected[0], (StallKind::ICache, 5));
        assert_eq!(collected[1], (StallKind::Load, 10));
    }

    #[test]
    fn cpi_math() {
        let stats = SimStats {
            cycles: 150,
            instructions: 100,
            ..Default::default()
        };
        assert!((stats.cpi() - 1.5).abs() < 1e-12);
        let empty = SimStats::default();
        assert_eq!(empty.cpi(), 0.0);
    }

    #[test]
    fn stall_cpi_normalises_by_instructions() {
        let mut stats = SimStats {
            cycles: 200,
            instructions: 100,
            ..Default::default()
        };
        stats.stalls[StallKind::LsuBusy] = 50;
        assert!((stats.stall_cpi(StallKind::LsuBusy) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_cpi() {
        let stats = SimStats {
            cycles: 300,
            instructions: 200,
            ..Default::default()
        };
        assert!(stats.to_string().contains("CPI 1.500"));
    }

    #[test]
    fn csv_row_matches_header_width() {
        let stats = SimStats {
            cycles: 10,
            instructions: 5,
            ..Default::default()
        };
        let header_cols = SimStats::csv_header().split(',').count();
        let row_cols = stats.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(stats.csv_row().starts_with("10,5,2.0000"));
    }

    #[test]
    fn snapshot_bytes_round_trip_bit_identically() {
        let mut stats = SimStats {
            cycles: 12345,
            instructions: 6789,
            fp_instructions: 42,
            dual_issues: 7,
            ..Default::default()
        };
        stats.stalls[StallKind::Load] = 99;
        let bytes = stats.to_snapshot_bytes();
        let back = SimStats::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.fingerprint(), stats.fingerprint());
        // A different run fingerprint-differs.
        let other = SimStats {
            cycles: 12346,
            ..stats.clone()
        };
        assert_ne!(other.fingerprint(), stats.fingerprint());
    }

    #[test]
    fn snapshot_bytes_reject_corruption() {
        let stats = SimStats {
            cycles: 1,
            instructions: 1,
            ..Default::default()
        };
        let bytes = stats.to_snapshot_bytes();
        // Truncated tail.
        assert!(SimStats::from_snapshot_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SimStats::from_snapshot_bytes(&long).is_err());
        // Not a snapshot at all.
        assert!(SimStats::from_snapshot_bytes(b"junk").is_err());
    }

    #[test]
    fn all_kinds_have_unique_indices() {
        let mut seen = [false; 7];
        for k in StallKind::ALL {
            assert!(!seen[k.index()], "{k} duplicated");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
