//! Cycle-level simulator of the Aurora III superscalar GaAs microprocessor
//! from *Resource Allocation in a High Clock Rate Microprocessor*
//! (Upton, Huff, Mudge & Brown, ASPLOS 1994).
//!
//! The crate provides:
//!
//! * [`MachineConfig`] / [`MachineModel`] — the paper's small, baseline and
//!   large resource-allocation models (Table 1) plus every knob the study
//!   sweeps: issue width, cache sizes, write-cache lines, reorder-buffer
//!   entries, prefetch buffers, MSHRs, secondary memory latency and the
//!   full FPU design space ([`FpuConfig`], §5.7–§5.11),
//! * [`Simulator`] — a trace-driven cycle-level model of the IPU (fetch
//!   with pre-decoded pairs and branch folding, dual issue, scoreboard,
//!   reorder buffer, LSU with non-blocking external data cache and
//!   coalescing write cache, stream-buffer prefetching, split-transaction
//!   BIU) coupled to the decoupled FPU,
//! * [`SimStats`] — CPI plus the stall-cycle breakdown of Figure 6 and
//!   per-structure statistics for every table in the paper,
//! * [`run_sampled`] — SMARTS-style sampled simulation: detailed windows
//!   over a functional-warming fast-forward ([`Simulator::warm_digest`]),
//!   CPI estimates with confidence intervals ([`SampledStats`]), and
//!   whole-machine checkpoints ([`Simulator::save_checkpoint`] /
//!   [`Simulator::restore_checkpoint`]) whose save → restore → resume
//!   round trip is bit-identical to uninterrupted execution.
//!
//! # Quick start
//!
//! ```
//! use aurora_core::{simulate_program, IssueWidth, MachineModel};
//! use aurora_isa::Assembler;
//! use aurora_mem::LatencyModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new().assemble(
//!     r#"
//!     .text
//!         li $t0, 1000
//!     loop:
//!         addiu $t0, $t0, -1
//!         bne $t0, $zero, loop
//!         nop
//!         break
//!     "#,
//! )?;
//! let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
//! let stats = simulate_program(&cfg, &program, 1_000_000)?;
//! println!("CPI = {:.3}", stats.cpi());
//! assert!(stats.cpi() > 0.4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod fpu;
pub mod obs;
mod rob;
pub mod sample;
mod sim;
mod stats;

pub use config::{
    FpIssuePolicy, FpuConfig, IssueWidth, MachineConfig, MachineModel, SamplingConfig,
};
pub use obs::{Histogram, ObsEvent, ObsEventKind, Observer, StallCause};
pub use rob::ReorderBuffer;
pub use sample::{run_sampled, run_sampled_digest, run_sampled_records, SampledStats};
pub use sim::{
    replay, replay_blocks, simulate, simulate_program, IssueRecord, Simulator, WarmDigest,
};
pub use stats::{SimStats, StallBreakdown, StallKind};
