//! Wire-protocol types: query requests, response lines, and their JSON
//! encodings. `docs/SERVICE.md` is the authoritative protocol document;
//! this module is its executable counterpart.
//!
//! A request names a *grid*: a list of machine configurations × a list
//! of workloads, plus a scale and an execution mode. The response is a
//! stream of newline-delimited JSON objects — one `cell` line per grid
//! cell (in completion order) and a final `summary` line.
//!
//! ```
//! use aurora_serve::proto::QueryRequest;
//!
//! let req = QueryRequest::from_json_str(
//!     r#"{"configs": [{"model": "baseline", "issue": "dual", "latency": {"fixed": 17}}],
//!         "workloads": ["espresso"], "scale": "test", "mode": "block"}"#,
//! )
//! .unwrap();
//! assert_eq!(req.workloads, ["espresso"]);
//! let cfgs = req.machine_configs().unwrap();
//! assert_eq!(cfgs[0].icache_bytes, 2048);
//! ```

use std::fmt;

use aurora_core::{
    IssueWidth, MachineConfig, MachineModel, SampledStats, SamplingConfig, SimStats,
};
use aurora_mem::LatencyModel;
use aurora_workloads::Scale;

use crate::json::{obj, Json};
use crate::store::Mode;

/// Hard cap on a request body, shared by both transports. A query
/// document is small; anything near this size is malformed or hostile.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Hard cap on the `configs` axis of one request grid.
pub const MAX_CONFIGS_PER_QUERY: usize = 512;

/// Hard cap on the `workloads` axis of one request grid.
pub const MAX_WORKLOADS_PER_QUERY: usize = 64;

/// Hard cap on the grid itself (`configs × workloads`). The per-axis
/// caps alone would admit a 32k-cell request; this is the budget a
/// single connection may ask the engine to simulate.
pub const MAX_CELLS_PER_QUERY: usize = 4096;

/// A malformed or unsatisfiable request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn perr<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

/// One machine configuration in a request: a [`MachineModel`] preset
/// refined by optional per-knob overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpec {
    /// Preset row of the paper's Table 1: `"small"`, `"baseline"`,
    /// `"large"`.
    pub model: MachineModel,
    /// `"single"` or `"dual"` issue.
    pub issue: IssueWidth,
    /// Secondary memory latency model.
    pub latency: LatencyModel,
    /// Knob overrides applied after the preset, `(knob, value)` in
    /// request order.
    pub overrides: Vec<(String, f64)>,
}

impl ConfigSpec {
    /// Resolves the spec to a full [`MachineConfig`], applying overrides
    /// and validating the result.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] for an unknown override knob, an
    /// out-of-range value, or a config failing
    /// [`MachineConfig::validate`].
    pub fn resolve(&self) -> Result<MachineConfig, ProtoError> {
        let mut cfg = self.model.config(self.issue, self.latency);
        for (knob, value) in &self.overrides {
            apply_override(&mut cfg, knob, *value)?;
        }
        if let Err(e) = cfg.validate() {
            return perr(format!("invalid config: {e}"));
        }
        Ok(cfg)
    }

    fn from_json(v: &Json) -> Result<ConfigSpec, ProtoError> {
        let model = match v.get("model").and_then(Json::as_str).unwrap_or("baseline") {
            "small" => MachineModel::Small,
            "baseline" => MachineModel::Baseline,
            "large" => MachineModel::Large,
            other => return perr(format!("unknown model `{other}`")),
        };
        let issue = match v.get("issue").and_then(Json::as_str).unwrap_or("dual") {
            "single" => IssueWidth::Single,
            "dual" => IssueWidth::Dual,
            other => return perr(format!("unknown issue width `{other}`")),
        };
        let latency = match v.get("latency") {
            None => LatencyModel::Fixed(17),
            Some(l) => parse_latency(l)?,
        };
        let mut overrides = Vec::new();
        if let Some(Json::Obj(members)) = v.get("overrides") {
            for (knob, value) in members {
                if !OVERRIDE_KNOBS.contains(&knob.as_str()) {
                    return perr(format!(
                        "unknown override `{knob}` (supported: {})",
                        OVERRIDE_KNOBS.join(", ")
                    ));
                }
                let Some(n) = value
                    .as_f64()
                    .or_else(|| value.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
                else {
                    return perr(format!("override `{knob}` must be a number or boolean"));
                };
                overrides.push((knob.clone(), n));
            }
        }
        Ok(ConfigSpec {
            model,
            issue,
            latency,
            overrides,
        })
    }
}

/// The override knobs a request may set, mirroring the sweepable fields
/// of [`MachineConfig`]. Booleans travel as JSON `true`/`false`.
const OVERRIDE_KNOBS: &[&str] = &[
    "rob_entries",
    "mshr_entries",
    "write_cache_lines",
    "prefetch_buffers",
    "prefetch_depth",
    "prefetch_enabled",
    "branch_folding",
    "write_validation",
    "dcache_latency",
    "seed",
];

fn apply_override(cfg: &mut MachineConfig, knob: &str, value: f64) -> Result<(), ProtoError> {
    let as_usize = || -> Result<usize, ProtoError> {
        if value.fract() == 0.0 && (0.0..1e9).contains(&value) {
            Ok(value as usize)
        } else {
            perr(format!(
                "override `{knob}` must be a small non-negative integer"
            ))
        }
    };
    let as_bool = || -> Result<bool, ProtoError> {
        match value {
            0.0 => Ok(false),
            1.0 => Ok(true),
            _ => perr(format!("override `{knob}` must be a boolean")),
        }
    };
    match knob {
        "rob_entries" => cfg.rob_entries = as_usize()?,
        "mshr_entries" => cfg.mshr_entries = as_usize()?,
        "write_cache_lines" => cfg.write_cache_lines = as_usize()?,
        "prefetch_buffers" => cfg.prefetch_buffers = as_usize()?,
        "prefetch_depth" => cfg.prefetch_depth = as_usize()?,
        "prefetch_enabled" => cfg.prefetch_enabled = as_bool()?,
        "branch_folding" => cfg.branch_folding = as_bool()?,
        "write_validation" => cfg.write_validation = as_bool()?,
        "dcache_latency" => cfg.dcache_latency = as_usize()? as u32,
        "seed" => cfg.seed = as_usize()? as u64,
        other => {
            return perr(format!(
                "unknown override `{other}` (supported: {})",
                OVERRIDE_KNOBS.join(", ")
            ))
        }
    }
    cfg.name = format!("{}+{}", cfg.name, knob);
    Ok(())
}

fn parse_latency(v: &Json) -> Result<LatencyModel, ProtoError> {
    if let Some(n) = v.get("fixed").and_then(Json::as_u64) {
        return Ok(LatencyModel::Fixed(n as u32));
    }
    if let Some(arr) = v.get("uniform").and_then(Json::as_array) {
        if let [lo, hi] = arr {
            if let (Some(lo), Some(hi)) = (lo.as_u64(), hi.as_u64()) {
                return Ok(LatencyModel::Uniform {
                    lo: lo as u32,
                    hi: hi as u32,
                });
            }
        }
        return perr("latency.uniform must be [lo, hi]");
    }
    if let Some(b) = v.get("bimodal") {
        let field = |k: &str| {
            b.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError(format!("latency.bimodal.{k} must be an integer")))
        };
        return Ok(LatencyModel::Bimodal {
            hit: field("hit")? as u32,
            miss: field("miss")? as u32,
            hit_permille: field("hit_permille")? as u16,
        });
    }
    perr(r#"latency must be {"fixed": n}, {"uniform": [lo, hi]} or {"bimodal": {...}}"#)
}

/// A parsed design-space query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The configurations to sweep.
    pub configs: Vec<ConfigSpec>,
    /// Workload names (resolved by
    /// [`workload_by_name`](aurora_workloads::workload_by_name)).
    pub workloads: Vec<String>,
    /// Kernel scale; defaults to [`Scale::Small`].
    pub scale: Scale,
    /// Execution mode; defaults to [`Mode::Block`].
    pub mode: Mode,
    /// Sampling parameters for [`Mode::Sampled`]; defaults to
    /// [`SamplingConfig::recommended`]. Ignored in exact modes.
    pub sampling: SamplingConfig,
}

impl QueryRequest {
    /// Parses a request from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] for malformed JSON, missing/empty
    /// `configs` or `workloads`, or any unknown enum value.
    pub fn from_json_str(text: &str) -> Result<QueryRequest, ProtoError> {
        let v = Json::parse(text).map_err(|e| ProtoError(format!("bad JSON: {e}")))?;
        QueryRequest::from_json(&v)
    }

    /// Parses a request from a parsed JSON document.
    ///
    /// # Errors
    ///
    /// See [`QueryRequest::from_json_str`].
    pub fn from_json(v: &Json) -> Result<QueryRequest, ProtoError> {
        let Some(config_list) = v.get("configs").and_then(Json::as_array) else {
            return perr("request needs a non-empty `configs` array");
        };
        // Axis caps come before anything derives a size from the lists:
        // these lengths are attacker-controlled until this point.
        if config_list.len() > MAX_CONFIGS_PER_QUERY {
            return perr(format!(
                "`configs` lists {} entries; the limit is {MAX_CONFIGS_PER_QUERY}",
                config_list.len()
            ));
        }
        let configs = config_list
            .iter()
            .map(ConfigSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if configs.is_empty() {
            return perr("`configs` must not be empty");
        }
        let Some(workload_list) = v.get("workloads").and_then(Json::as_array) else {
            return perr("request needs a non-empty `workloads` array");
        };
        if workload_list.len() > MAX_WORKLOADS_PER_QUERY {
            return perr(format!(
                "`workloads` lists {} entries; the limit is {MAX_WORKLOADS_PER_QUERY}",
                workload_list.len()
            ));
        }
        let workloads = workload_list
            .iter()
            .map(|w| {
                w.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| ProtoError("workload names must be strings".to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if workloads.is_empty() {
            return perr("`workloads` must not be empty");
        }
        let cells = configs.len().saturating_mul(workloads.len());
        if cells > MAX_CELLS_PER_QUERY {
            return perr(format!(
                "request names {cells} grid cells ({} configs x {} workloads); the limit \
                 is {MAX_CELLS_PER_QUERY}",
                configs.len(),
                workloads.len()
            ));
        }
        let scale = match v.get("scale").and_then(Json::as_str).unwrap_or("small") {
            "test" => Scale::Test,
            "small" => Scale::Small,
            "full" => Scale::Full,
            other => return perr(format!("unknown scale `{other}`")),
        };
        let mode = match v.get("mode").and_then(Json::as_str) {
            None => Mode::Block,
            Some(name) => match Mode::from_name(name) {
                Some(m) => m,
                None => return perr(format!("unknown mode `{name}`")),
            },
        };
        let mut sampling = SamplingConfig::recommended();
        if let Some(s) = v.get("sampling") {
            let field = |k: &str, default: usize| {
                s.get(k)
                    .map(|n| {
                        n.as_u64().map(|n| n as usize).ok_or_else(|| {
                            ProtoError(format!("sampling.{k} must be a non-negative integer"))
                        })
                    })
                    .unwrap_or(Ok(default))
            };
            sampling.window_ops = field("window_ops", sampling.window_ops)?;
            sampling.warmup_ops = field("warmup_ops", sampling.warmup_ops)?;
            sampling.interval_ops = field("interval_ops", sampling.interval_ops)?;
            if let Err(e) = sampling.validate() {
                return perr(format!("invalid sampling config: {e}"));
            }
        }
        Ok(QueryRequest {
            configs,
            workloads,
            scale,
            mode,
            sampling,
        })
    }

    /// Resolves every [`ConfigSpec`] to a validated [`MachineConfig`].
    ///
    /// # Errors
    ///
    /// Returns the first spec's [`ProtoError`], tagged with its index.
    pub fn machine_configs(&self) -> Result<Vec<MachineConfig>, ProtoError> {
        self.configs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                spec.resolve()
                    .map_err(|e| ProtoError(format!("configs[{i}]: {e}")))
            })
            .collect()
    }
}

/// Where a cell's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Answered from the persistent [`ResultStore`](crate::ResultStore).
    Memo,
    /// Simulated by this query.
    Simulated,
}

impl CellSource {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            CellSource::Memo => "memo",
            CellSource::Simulated => "simulated",
        }
    }
}

/// One cell's result payload.
///
/// The exact variant is the common case, so `SimStats` stays inline
/// rather than boxed — the size skew is deliberate.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum CellResult {
    /// An exact run (detailed or block mode): full statistics.
    Exact(SimStats),
    /// A sampled estimate with its confidence interval.
    Sampled(SampledStats),
}

/// One line of the NDJSON response stream.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Cell dominates the stream; see CellResult
pub enum ResponseLine {
    /// A finished grid cell.
    Cell {
        /// Index into the request's `configs`.
        config_index: usize,
        /// The resolved configuration's display name.
        config_name: String,
        /// The workload name.
        workload: String,
        /// Memo hit or fresh simulation.
        source: CellSource,
        /// The result payload.
        result: CellResult,
    },
    /// The final line of a successful response.
    Summary(QuerySummary),
    /// A terminal error; no further lines follow.
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Aggregate accounting for one query, sent as the last response line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySummary {
    /// Grid cells in the request.
    pub cells: usize,
    /// Cells answered from the result store.
    pub memo_hits: usize,
    /// Cells simulated by this query.
    pub simulated: usize,
    /// Wall-clock seconds spent simulating cold cells (zero for an
    /// all-warm query).
    pub cold_wall_seconds: f64,
    /// Achieved parallelism of the cold-cell drain (see
    /// [`MatrixMetrics::achieved_parallelism`]); zero for an all-warm
    /// query.
    ///
    /// [`MatrixMetrics::achieved_parallelism`]:
    ///     aurora_bench::harness::MatrixMetrics::achieved_parallelism
    pub achieved_parallelism: f64,
}

impl ResponseLine {
    /// Renders the line as a single-line JSON document (no trailing
    /// newline).
    pub fn to_json(&self) -> Json {
        match self {
            ResponseLine::Cell {
                config_index,
                config_name,
                workload,
                source,
                result,
            } => {
                let mut o = obj([
                    ("type", Json::Str("cell".to_owned())),
                    ("config", Json::Num(*config_index as f64)),
                    ("config_name", Json::Str(config_name.clone())),
                    ("workload", Json::Str(workload.clone())),
                    ("source", Json::Str(source.name().to_owned())),
                ]);
                let payload = match result {
                    CellResult::Exact(stats) => exact_json(stats),
                    CellResult::Sampled(s) => sampled_json(s),
                };
                if let Json::Obj(members) = &mut o {
                    members.insert("stats".to_owned(), payload);
                }
                o
            }
            ResponseLine::Summary(s) => obj([
                ("type", Json::Str("summary".to_owned())),
                ("cells", Json::Num(s.cells as f64)),
                ("memo_hits", Json::Num(s.memo_hits as f64)),
                ("simulated", Json::Num(s.simulated as f64)),
                ("cold_wall_seconds", Json::Num(s.cold_wall_seconds)),
                ("achieved_parallelism", Json::Num(s.achieved_parallelism)),
            ]),
            ResponseLine::Error { message } => obj([
                ("type", Json::Str("error".to_owned())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }
}

/// The stats object for an exact cell. Counters are plain JSON numbers
/// (all far below 2^53); the stats *fingerprint* is a hex string, since
/// a 64-bit hash does not survive an f64 round trip.
fn exact_json(stats: &SimStats) -> Json {
    obj([
        ("cycles", Json::Num(stats.cycles as f64)),
        ("instructions", Json::Num(stats.instructions as f64)),
        ("cpi", Json::Num(stats.cpi())),
        ("stall_cycles", Json::Num(stats.stalls.total() as f64)),
        ("dual_issues", Json::Num(stats.dual_issues as f64)),
        ("fp_instructions", Json::Num(stats.fp_instructions as f64)),
        (
            "fingerprint",
            Json::Str(format!("{:#018x}", stats.fingerprint())),
        ),
    ])
}

fn sampled_json(s: &SampledStats) -> Json {
    obj([
        ("instructions", Json::Num(s.instructions as f64)),
        (
            "detailed_instructions",
            Json::Num(s.detailed_instructions as f64),
        ),
        ("windows", Json::Num(s.windows as f64)),
        ("cpi", Json::Num(s.cpi)),
        ("ci_half_width", Json::Num(s.ci_half_width)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_fill_in() {
        let req =
            QueryRequest::from_json_str(r#"{"configs": [{}], "workloads": ["compress"]}"#).unwrap();
        assert_eq!(req.scale, Scale::Small);
        assert_eq!(req.mode, Mode::Block);
        assert_eq!(req.configs[0].model, MachineModel::Baseline);
        assert_eq!(req.configs[0].latency, LatencyModel::Fixed(17));
    }

    #[test]
    fn overrides_change_the_resolved_config() {
        let req = QueryRequest::from_json_str(
            r#"{"configs": [{"model": "small", "issue": "single",
                             "overrides": {"mshr_entries": 4, "prefetch_enabled": false}}],
                "workloads": ["espresso"], "scale": "test"}"#,
        )
        .unwrap();
        let cfg = &req.machine_configs().unwrap()[0];
        assert_eq!(cfg.mshr_entries, 4);
        assert!(!cfg.prefetch_enabled);
        assert_eq!(cfg.icache_bytes, 1024);
    }

    #[test]
    fn bad_requests_are_rejected_with_context() {
        for (src, needle) in [
            (r#"{"workloads": ["a"]}"#, "configs"),
            (r#"{"configs": [{}], "workloads": []}"#, "workloads"),
            (
                r#"{"configs": [{}], "workloads": ["a"], "mode": "warp"}"#,
                "mode",
            ),
            (
                r#"{"configs": [{"overrides": {"warp_factor": 9}}], "workloads": ["a"]}"#,
                "warp_factor",
            ),
            (
                r#"{"configs": [{"latency": {"uniform": [3]}}], "workloads": ["a"]}"#,
                "uniform",
            ),
        ] {
            let err = QueryRequest::from_json_str(src).unwrap_err();
            assert!(err.0.contains(needle), "{src} -> {err}");
        }
    }

    #[test]
    fn oversized_grids_are_rejected_at_parse_time() {
        let many_configs = vec!["{}"; MAX_CONFIGS_PER_QUERY + 1].join(",");
        let src = format!(r#"{{"configs": [{many_configs}], "workloads": ["a"]}}"#);
        let err = QueryRequest::from_json_str(&src).unwrap_err();
        assert!(err.0.contains("limit"), "{err}");
        assert!(err.0.contains("configs"), "{err}");

        let many_workloads: Vec<String> = (0..=MAX_WORKLOADS_PER_QUERY)
            .map(|i| format!("\"w{i}\""))
            .collect();
        let src = format!(
            r#"{{"configs": [{{}}], "workloads": [{}]}}"#,
            many_workloads.join(",")
        );
        let err = QueryRequest::from_json_str(&src).unwrap_err();
        assert!(err.0.contains("limit"), "{err}");
        assert!(err.0.contains("workloads"), "{err}");

        // Each axis within its cap, but the grid product over budget.
        let configs = vec!["{}"; 256].join(",");
        let workloads: Vec<String> = (0..32).map(|i| format!("\"w{i}\"")).collect();
        let src = format!(
            r#"{{"configs": [{configs}], "workloads": [{}]}}"#,
            workloads.join(",")
        );
        let err = QueryRequest::from_json_str(&src).unwrap_err();
        assert!(err.0.contains("grid cells"), "{err}");

        // At the caps exactly, the request parses.
        let src = format!(
            r#"{{"configs": [{}], "workloads": ["a"]}}"#,
            vec!["{}"; MAX_CONFIGS_PER_QUERY].join(",")
        );
        assert!(QueryRequest::from_json_str(&src).is_ok());
    }

    #[test]
    fn latency_forms_parse() {
        let req = QueryRequest::from_json_str(
            r#"{"configs": [{"latency": {"uniform": [9, 25]}},
                            {"latency": {"bimodal": {"hit": 10, "miss": 40, "hit_permille": 750}}}],
                "workloads": ["li"]}"#,
        )
        .unwrap();
        assert_eq!(
            req.configs[0].latency,
            LatencyModel::Uniform { lo: 9, hi: 25 }
        );
        assert_eq!(
            req.configs[1].latency,
            LatencyModel::Bimodal {
                hit: 10,
                miss: 40,
                hit_permille: 750
            }
        );
    }

    #[test]
    fn response_lines_render_as_single_json_objects() {
        let line = ResponseLine::Summary(QuerySummary {
            cells: 4,
            memo_hits: 4,
            simulated: 0,
            cold_wall_seconds: 0.0,
            achieved_parallelism: 0.0,
        });
        let text = line.to_json().to_string();
        assert!(text.contains(r#""memo_hits":4"#), "{text}");
        assert!(!text.contains('\n'));
        let err = ResponseLine::Error {
            message: "boom".to_owned(),
        };
        assert!(err.to_json().to_string().contains("boom"));
    }
}
