//! Service benchmark: measures cold and warm query latency, memo hit
//! rate and achieved parallelism of the `aurora-serve` engine through a
//! real unix-socket round trip, and cross-checks warm results against a
//! direct `run_matrix` sweep by snapshot fingerprint.
//!
//! ```text
//! serve_baseline [--scale test|small|full] [--out BENCH_serve.json]
//! ```
//!
//! The store starts empty (cold pass = capture + simulate + append),
//! then the identical query repeats warm (all cells memoised). Written
//! as `BENCH_serve.json`; CI runs this at test scale and greps the
//! invariants.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use aurora_bench::harness::{run_matrix, scale_from_args, sweep_threads};
use aurora_serve::json::Json;
use aurora_serve::proto::QueryRequest;
use aurora_serve::{client, server, Engine, ResultStore};
use aurora_workloads::workload_by_name;

/// One parsed NDJSON response: per-cell fingerprints plus the summary.
#[derive(Default)]
struct Reply {
    /// `(config index, workload name) -> stats fingerprint hex string`.
    fingerprints: Vec<((usize, String), String)>,
    memo_hits: u64,
    simulated: u64,
    achieved_parallelism: f64,
}

fn parse_reply(lines: &[String]) -> Reply {
    let mut reply = Reply::default();
    for line in lines {
        let v = Json::parse(line).expect("daemon emitted malformed JSON");
        match v.get("type").and_then(Json::as_str) {
            Some("cell") => {
                let ci = v.get("config").and_then(Json::as_u64).expect("config") as usize;
                let w = v.get("workload").and_then(Json::as_str).expect("workload");
                let fp = v
                    .get("stats")
                    .and_then(|s| s.get("fingerprint"))
                    .and_then(Json::as_str)
                    .expect("fingerprint");
                reply.fingerprints.push(((ci, w.to_owned()), fp.to_owned()));
            }
            Some("summary") => {
                reply.memo_hits = v.get("memo_hits").and_then(Json::as_u64).unwrap_or(0);
                reply.simulated = v.get("simulated").and_then(Json::as_u64).unwrap_or(0);
                reply.achieved_parallelism = v
                    .get("achieved_parallelism")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
            }
            Some("error") => panic!("daemon answered an error: {line}"),
            _ => panic!("unexpected response line: {line}"),
        }
    }
    reply
}

fn main() {
    let scale = scale_from_args();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2).find(|p| p[0] == "--out").map_or_else(
            || PathBuf::from("BENCH_serve.json"),
            |p| PathBuf::from(&p[1]),
        )
    };

    let pid = std::process::id();
    let store_dir = PathBuf::from(format!("target/serve_baseline-{pid}"));
    let socket = PathBuf::from(format!("target/serve_baseline-{pid}.sock"));
    let _ = std::fs::remove_dir_all(&store_dir);

    let engine = Arc::new(Engine::new(
        ResultStore::open(&store_dir).expect("opening store"),
    ));
    let handle = server::spawn_unix(Arc::clone(&engine), &socket).expect("binding socket");

    let request = format!(
        r#"{{"configs": [{{"model": "baseline", "issue": "single", "latency": {{"fixed": 17}}}},
                         {{"model": "baseline", "issue": "dual", "latency": {{"fixed": 17}}}}],
            "workloads": ["espresso", "compress"], "scale": "{scale}", "mode": "block"}}"#
    );
    let query = |label: &str| {
        let mut lines = Vec::new();
        let t = Instant::now();
        client::query_unix(&socket, &request, |line| lines.push(line.to_owned()))
            .unwrap_or_else(|e| panic!("{label} query failed: {e}"));
        (t.elapsed().as_secs_f64(), parse_reply(&lines))
    };

    // Cold: empty store — every cell captures (via the process-global
    // trace store) and simulates.
    let (cold_secs, cold) = query("cold");
    assert_eq!(cold.simulated, 4, "cold pass must simulate the full grid");
    assert_eq!(cold.memo_hits, 0);

    // Warm: identical query, all four cells served from the memo.
    // Min-of-5 for a stable latency figure.
    let mut warm_secs = f64::INFINITY;
    let mut warm = Reply::default();
    for _ in 0..5 {
        let (secs, reply) = query("warm");
        assert_eq!(reply.memo_hits, 4, "warm pass must be all memo hits");
        assert_eq!(reply.simulated, 0, "warm pass must not re-simulate");
        warm_secs = warm_secs.min(secs);
        warm = reply;
    }
    let warm_hit_rate = warm.memo_hits as f64 / 4.0;

    // Cross-check: warm-path results must be bit-identical to a direct
    // run_matrix sweep (compared via the SimStats snapshot fingerprint,
    // which covers every counter).
    let req = QueryRequest::from_json_str(&request).expect("own request parses");
    let configs = req.machine_configs().expect("own configs resolve");
    let workloads: Vec<_> = req
        .workloads
        .iter()
        .map(|w| workload_by_name(w, scale).expect("known workload"))
        .collect();
    let direct = run_matrix(&configs, &workloads);
    let mut bit_identical = true;
    for ((ci, wname), fp) in &warm.fingerprints {
        let wi = req
            .workloads
            .iter()
            .position(|w| w == wname)
            .expect("workload");
        let expect = format!("{:#018x}", direct[*ci][wi].fingerprint());
        if fp != &expect {
            eprintln!("mismatch at config {ci} workload {wname}: {fp} != {expect}");
            bit_identical = false;
        }
    }
    assert!(
        bit_identical,
        "warm results diverged from direct run_matrix"
    );

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores > 1 {
        assert!(
            cold.achieved_parallelism > 1.0,
            "multi-core host ({cores} cores) but cold drain achieved {:.3}x",
            cold.achieved_parallelism
        );
    } else {
        println!(
            "warning: 1-core host; cold drain parallelism {:.3}x (assertion skipped)",
            cold.achieved_parallelism
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"transport\": \"unix\",");
    let _ = writeln!(json, "  \"grid_configs\": 2,");
    let _ = writeln!(json, "  \"grid_workloads\": 2,");
    let _ = writeln!(json, "  \"grid_cells\": 4,");
    let _ = writeln!(json, "  \"cold_seconds\": {cold_secs:.6},");
    let _ = writeln!(json, "  \"warm_seconds_min\": {warm_secs:.6},");
    let _ = writeln!(
        json,
        "  \"cold_over_warm_speedup\": {:.1},",
        cold_secs / warm_secs.max(1e-9)
    );
    let _ = writeln!(json, "  \"cold_simulated\": {},", cold.simulated);
    let _ = writeln!(json, "  \"warm_memo_hits\": {},", warm.memo_hits);
    let _ = writeln!(json, "  \"warm_simulated\": {},", warm.simulated);
    let _ = writeln!(json, "  \"warm_hit_rate\": {warm_hit_rate:.3},");
    let _ = writeln!(json, "  \"pool_threads\": {},", sweep_threads(4));
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"achieved_parallelism\": {:.3},",
        cold.achieved_parallelism
    );
    let _ = writeln!(json, "  \"memo_bit_identical\": {bit_identical}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("writing BENCH_serve.json");
    print!("{json}");
    println!("wrote {}", out_path.display());

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}
