//! The `aurora-serve` daemon: answers design-space queries over a unix
//! socket and/or localhost HTTP, memoising every simulated cell in a
//! persistent result store.
//!
//! ```text
//! aurora-serve --store DIR [--unix PATH] [--http ADDR]
//! ```
//!
//! At least one of `--unix`/`--http` is required. The process runs
//! until killed; the store is crash-safe, so `SIGKILL` at any moment
//! costs at most the cell being appended. See `docs/SERVICE.md`.

use std::process::ExitCode;
use std::sync::Arc;

use aurora_serve::{server, Engine, ResultStore};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_dir = None;
    let mut unix_path = None;
    let mut http_addr = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_dir = it.next().cloned(),
            "--unix" => unix_path = it.next().cloned(),
            "--http" => http_addr = it.next().cloned(),
            "--help" | "-h" => {
                println!("usage: aurora-serve --store DIR [--unix PATH] [--http ADDR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("aurora-serve: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(store_dir) = store_dir else {
        eprintln!("aurora-serve: --store DIR is required");
        return ExitCode::FAILURE;
    };
    if unix_path.is_none() && http_addr.is_none() {
        eprintln!("aurora-serve: at least one of --unix PATH / --http ADDR is required");
        return ExitCode::FAILURE;
    }

    let store = match ResultStore::open(std::path::Path::new(&store_dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("aurora-serve: opening store `{store_dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "store: {} cells in {store_dir} ({} shard(s) rebuilt, {} damaged record(s) dropped)",
        store.len(),
        store.shards_rebuilt(),
        store.records_recovered()
    );
    let engine = Arc::new(Engine::new(store));

    let mut handles = Vec::new();
    if let Some(path) = unix_path {
        match server::spawn_unix(Arc::clone(&engine), std::path::Path::new(&path)) {
            Ok(h) => {
                println!("listening on unix socket {path}");
                handles.push(h);
            }
            Err(e) => {
                eprintln!("aurora-serve: binding unix socket `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(addr) = http_addr {
        match server::spawn_http(Arc::clone(&engine), &addr) {
            Ok((h, local)) => {
                println!("listening on http://{local}");
                handles.push(h);
            }
            Err(e) => {
                eprintln!("aurora-serve: binding http `{addr}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Daemon mode: the accept loops own their threads; park forever.
    // (Shutdown is SIGTERM/SIGKILL — the store is crash-safe by design.)
    loop {
        std::thread::park();
    }
}
