//! The `aurora-query` client: builds (or forwards) a design-space query,
//! sends it to a running `aurora-serve` daemon and prints the NDJSON
//! response stream to stdout.
//!
//! ```text
//! aurora-query (--unix PATH | --http ADDR)
//!              [--json REQUEST]                     # raw request, or:
//!              [--workloads a,b,...] [--models small,baseline,large]
//!              [--issue single,dual] [--latency N] [--scale S] [--mode M]
//! ```
//!
//! Without `--json`, a request grid is built as the cross product of
//! `--models` × `--issue` (each at `--latency`). Exits non-zero if the
//! stream ends in an error line or without a summary.

use std::process::ExitCode;

use aurora_serve::client;

struct Args {
    unix: Option<String>,
    http: Option<String>,
    json: Option<String>,
    workloads: String,
    models: String,
    issue: String,
    latency: u32,
    scale: String,
    mode: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        unix: None,
        http: None,
        json: None,
        workloads: "espresso,compress".to_owned(),
        models: "baseline".to_owned(),
        issue: "dual".to_owned(),
        latency: 17,
        scale: "small".to_owned(),
        mode: "block".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--unix" => args.unix = Some(value("--unix")?),
            "--http" => args.http = Some(value("--http")?),
            "--json" => args.json = Some(value("--json")?),
            "--workloads" => args.workloads = value("--workloads")?,
            "--models" => args.models = value("--models")?,
            "--issue" => args.issue = value("--issue")?,
            "--latency" => {
                args.latency = value("--latency")?
                    .parse()
                    .map_err(|e| format!("--latency: {e}"))?;
            }
            "--scale" => args.scale = value("--scale")?,
            "--mode" => args.mode = value("--mode")?,
            "--help" | "-h" => return Err("help".to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn build_request(args: &Args) -> String {
    if let Some(json) = &args.json {
        return json.clone();
    }
    let configs: Vec<String> = args
        .models
        .split(',')
        .flat_map(|model| {
            args.issue.split(',').map(move |issue| {
                format!(
                    r#"{{"model": "{model}", "issue": "{issue}", "latency": {{"fixed": {}}}}}"#,
                    args.latency
                )
            })
        })
        .collect();
    let workloads: Vec<String> = args
        .workloads
        .split(',')
        .map(|w| format!("\"{w}\""))
        .collect();
    format!(
        r#"{{"configs": [{}], "workloads": [{}], "scale": "{}", "mode": "{}"}}"#,
        configs.join(", "),
        workloads.join(", "),
        args.scale,
        args.mode
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "usage: aurora-query (--unix PATH | --http ADDR) [--json REQ] \
                 [--workloads a,b] [--models m1,m2] [--issue single,dual] \
                 [--latency N] [--scale S] [--mode M]"
            );
            if e == "help" {
                return ExitCode::SUCCESS;
            }
            eprintln!("aurora-query: {e}");
            return ExitCode::FAILURE;
        }
    };
    let request = build_request(&args);
    let mut saw_summary = false;
    let mut saw_error = false;
    let mut on_line = |line: &str| {
        println!("{line}");
        match client::line_type(line).as_deref() {
            Some("summary") => saw_summary = true,
            Some("error") => saw_error = true,
            _ => {}
        }
    };
    let sent = match (&args.unix, &args.http) {
        (Some(path), _) => client::query_unix(std::path::Path::new(path), &request, &mut on_line),
        (None, Some(addr)) => client::query_http(addr, &request, &mut on_line),
        (None, None) => {
            eprintln!("aurora-query: one of --unix PATH / --http ADDR is required");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = sent {
        eprintln!("aurora-query: {e}");
        return ExitCode::FAILURE;
    }
    if saw_error || !saw_summary {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
