//! `aurora-serve`: a memoized design-space-exploration service over the
//! Aurora III simulator.
//!
//! The rest of the workspace answers *one sweep at a time*: a binary
//! builds a config × workload grid, drains it, prints a table and
//! exits — and the next invocation re-simulates everything. This crate
//! turns that into a *service with memory*. A long-lived daemon
//! (`aurora-serve`) answers design-space queries over a unix socket or
//! localhost HTTP; every query decomposes into cells keyed by
//! `(config fingerprint, trace hash, mode)`; cells seen before — by
//! *any* previous query or process — are answered instantly from a
//! sharded, crash-safe, persistent [`ResultStore`], and only the cold
//! remainder is simulated, batched onto the same work-stealing pool the
//! bench harness uses, with results streamed back as they complete.
//!
//! * [`store`] — the persistent memo (on-disk format, recovery,
//!   versioning),
//! * [`proto`] — the wire protocol (requests, response lines, JSON),
//! * [`engine`] — warm/cold decomposition and the pool bridge,
//! * [`server`] / [`client`] — unix-socket and HTTP transports,
//! * [`json`] — the dependency-free JSON reader/writer underneath.
//!
//! `docs/SERVICE.md` documents the protocol and operational behaviour;
//! the `aurora-query` binary is the reference client.
//!
//! # In-process example
//!
//! The daemon is a thin shell around [`Engine`], which embeds directly:
//!
//! ```
//! use aurora_serve::{Engine, ResultStore};
//! use aurora_serve::proto::{QueryRequest, ResponseLine};
//!
//! let dir = std::env::temp_dir().join("aurora-serve-doc-example");
//! let engine = Engine::new(ResultStore::open(&dir).unwrap());
//! let req = QueryRequest::from_json_str(
//!     r#"{"configs": [{"model": "small"}], "workloads": ["eqntott"],
//!         "scale": "test", "mode": "block"}"#,
//! )
//! .unwrap();
//! let mut lines = Vec::new();
//! let summary = engine.execute(&req, &mut |l: &ResponseLine| lines.push(l.clone())).unwrap();
//! assert_eq!(summary.cells, 1);
//! // Same query again: answered from the store, nothing simulated.
//! let warm = engine.execute(&req, &mut |_l: &ResponseLine| {}).unwrap();
//! assert_eq!(warm.memo_hits, 1);
//! assert_eq!(warm.simulated, 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod json;
pub mod proto;
pub mod server;
pub mod store;

pub use engine::Engine;
pub use store::{CellKey, CellValue, Mode, ResultStore, SampledCell};
