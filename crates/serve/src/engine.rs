//! The query engine: decomposes a request grid into cells, answers warm
//! cells from the [`ResultStore`], batches cold cells onto the shared
//! work-stealing sweep pool, and streams results back in completion
//! order.
//!
//! # Dataflow
//!
//! ```text
//! request ──▶ resolve configs + workloads
//!          ──▶ per-cell memo probe ──▶ warm: emit immediately
//!                                  └─▶ cold: batch
//! cold batch ──▶ drain_cells_timed (work-stealing pool)
//!                  workers: simulate, send over channel   (no blocking)
//!                  caller:  receive ──▶ append to store ──▶ emit
//! finally    ──▶ summary line
//! ```
//!
//! Pool workers never touch a lock, a file or a socket (the drain loop
//! is the `[[pool]]` lint root — L013): each finished cell crosses an
//! mpsc channel to the *calling* thread, which owns all I/O — the store
//! append and the response stream.

use std::sync::mpsc;

use aurora_bench::harness::drain_cells_timed;
use aurora_core::{
    replay, replay_blocks, run_sampled_digest, MachineConfig, SampledStats, SamplingConfig,
    WarmDigest,
};
use aurora_isa::{BlockTrace, Fnv1a, PackedTrace};
use aurora_workloads::{workload_by_name, TraceStore, Workload};

use crate::proto::{CellResult, CellSource, ProtoError, QueryRequest, QuerySummary, ResponseLine};
use crate::store::{CellKey, CellValue, Mode, ResultStore, SampledCell};

/// A query engine bound to one persistent [`ResultStore`].
///
/// The engine is shared by reference across server connection threads;
/// every method takes `&self` (the store is internally sharded and
/// locked).
pub struct Engine {
    store: ResultStore,
}

/// Everything a pool worker needs for one workload: the packed trace,
/// its block lowering and the functional-warming digest (the latter two
/// built lazily only for the modes that use them).
struct TraceBundle {
    packed: std::sync::Arc<PackedTrace>,
    blocks: Option<std::sync::Arc<BlockTrace>>,
    digest: Option<WarmDigest>,
}

impl Engine {
    /// Wraps an open store.
    pub fn new(store: ResultStore) -> Engine {
        Engine { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Executes one query, invoking `emit` once per response line —
    /// warm cells first (request order), then cold cells in completion
    /// order, then the summary. On a bad request, `emit` receives a
    /// single [`ResponseLine::Error`] and the call returns `Err`.
    ///
    /// Returns the summary for in-process callers (benchmarks, tests);
    /// wire servers forward the emitted lines instead.
    ///
    /// # Errors
    ///
    /// Returns the [`ProtoError`] (already emitted as an error line)
    /// for unresolvable configs or unknown workloads.
    pub fn execute(
        &self,
        req: &QueryRequest,
        emit: &mut dyn FnMut(&ResponseLine),
    ) -> Result<QuerySummary, ProtoError> {
        match self.execute_inner(req, emit) {
            Ok(summary) => Ok(summary),
            Err(e) => {
                emit(&ResponseLine::Error {
                    message: e.to_string(),
                });
                Err(e)
            }
        }
    }

    fn execute_inner(
        &self,
        req: &QueryRequest,
        emit: &mut dyn FnMut(&ResponseLine),
    ) -> Result<QuerySummary, ProtoError> {
        let configs = req.machine_configs()?;
        let workloads = req
            .workloads
            .iter()
            .map(|name| {
                workload_by_name(name, req.scale)
                    .ok_or_else(|| ProtoError(format!("unknown workload `{name}`")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let config_fps: Vec<u64> = configs
            .iter()
            .map(|cfg| cell_config_fp(cfg, req.mode, &req.sampling))
            .collect();
        let trace_hashes: Vec<u64> = workloads.iter().map(Workload::trace_hash).collect();

        // Memo probe, workload-major (same order the pool claims cells
        // in, so the stream reads grid-contiguously either way).
        let mut summary = QuerySummary {
            cells: configs.len() * workloads.len(),
            ..QuerySummary::default()
        };
        let mut cold: Vec<(usize, usize)> = Vec::new(); // (workload, config)
        for (wi, workload) in workloads.iter().enumerate() {
            for (ci, cfg) in configs.iter().enumerate() {
                let key = CellKey {
                    config_fp: config_fps[ci],
                    trace_hash: trace_hashes[wi],
                    mode: req.mode,
                };
                match self.store.get(&key) {
                    Some(value) => {
                        summary.memo_hits += 1;
                        emit(&cell_line(ci, cfg, workload, CellSource::Memo, &value));
                    }
                    None => cold.push((wi, ci)),
                }
            }
        }

        if !cold.is_empty() {
            self.drain_cold(
                req,
                &configs,
                &workloads,
                &config_fps,
                &trace_hashes,
                &cold,
                &mut summary,
                emit,
            )?;
        }
        emit(&ResponseLine::Summary(summary.clone()));
        Ok(summary)
    }

    /// Simulates the cold cells on the sweep pool, streaming each result
    /// through the store and out to `emit` as it completes.
    #[allow(clippy::too_many_arguments)]
    fn drain_cold(
        &self,
        req: &QueryRequest,
        configs: &[MachineConfig],
        workloads: &[Workload],
        config_fps: &[u64],
        trace_hashes: &[u64],
        cold: &[(usize, usize)],
        summary: &mut QuerySummary,
        emit: &mut dyn FnMut(&ResponseLine),
    ) -> Result<(), ProtoError> {
        // Capture-once: materialise each needed workload's trace (and
        // the per-mode derived forms) before the pool starts, via the
        // process-wide memoising TraceStore.
        let mut needed: Vec<usize> = cold.iter().map(|&(wi, _)| wi).collect();
        needed.sort_unstable();
        needed.dedup();
        let mut bundles: Vec<Option<TraceBundle>> = (0..workloads.len()).map(|_| None).collect();
        for wi in needed {
            bundles[wi] = Some(capture_bundle(&workloads[wi], req.mode)?);
        }

        let (tx, rx) = mpsc::channel::<(usize, CellValue)>();
        let run_cell = |i: usize| {
            let (wi, ci) = cold[i];
            let bundle = bundles[wi].as_ref().expect("bundle captured above");
            compute_cell(&configs[ci], bundle, req.mode, &req.sampling)
        };
        // The drain blocks until every cold cell is done, so it runs on
        // a scoped helper thread while this thread consumes completions:
        // store appends and response writes stay off the pool. The
        // sender drops with the helper's closure, ending the receive
        // loop exactly when the drain finishes.
        let metrics = std::thread::scope(|scope| {
            let drain = scope.spawn(move || {
                let on_cell = |i: usize, value: &CellValue| {
                    // Worker side: hand the finished cell to the caller
                    // thread. A send failure means the receiver is gone
                    // (caller panicked); the result still lands in the
                    // drain's Vec.
                    let _ = tx.send((i, value.clone()));
                };
                let (_, metrics) = drain_cells_timed(cold.len(), run_cell, on_cell);
                metrics
            });
            for (i, value) in rx {
                let (wi, ci) = cold[i];
                let key = CellKey {
                    config_fp: config_fps[ci],
                    trace_hash: trace_hashes[wi],
                    mode: req.mode,
                };
                // A failed append only costs a re-simulation on some
                // later query (put leaves the index unchanged on error);
                // the in-flight response is still correct and complete.
                let _ = self.store.put(&key, &value);
                summary.simulated += 1;
                emit(&cell_line(
                    ci,
                    &configs[ci],
                    &workloads[wi],
                    CellSource::Simulated,
                    &value,
                ));
            }
            drain.join().expect("cold drain panicked")
        });
        summary.cold_wall_seconds = metrics.wall_seconds;
        summary.achieved_parallelism = metrics.achieved_parallelism();
        Ok(())
    }
}

/// Simulates one cold cell. This is the pool-worker entry point (a
/// `[[pool]]` root in lint.toml): everything reachable from here must be
/// non-blocking — pure replay against pre-captured, shared traces.
fn compute_cell(
    cfg: &MachineConfig,
    bundle: &TraceBundle,
    mode: Mode,
    sampling: &SamplingConfig,
) -> CellValue {
    match mode {
        Mode::Detailed => CellValue::Exact(replay(cfg, &bundle.packed)),
        Mode::Block => CellValue::Exact(replay_blocks(
            cfg,
            bundle.blocks.as_ref().expect("blocks captured for mode"),
        )),
        Mode::Sampled => {
            let digest = bundle.digest.as_ref().expect("digest built for mode");
            let stats = run_sampled_digest(cfg, sampling, bundle.packed.records(), digest);
            CellValue::Sampled(SampledCell {
                instructions: stats.instructions,
                detailed_instructions: stats.detailed_instructions,
                windows: stats.windows as u64,
                cpi_bits: stats.cpi.to_bits(),
                ci_bits: stats.ci_half_width.to_bits(),
            })
        }
    }
}

/// Captures (through the global [`TraceStore`]) the trace forms `mode`
/// needs for one workload.
fn capture_bundle(workload: &Workload, mode: Mode) -> Result<TraceBundle, ProtoError> {
    let store = TraceStore::global();
    let packed = store
        .get(workload)
        .map_err(|e| ProtoError(format!("capturing `{}`: {e}", workload.name())))?;
    let blocks = match mode {
        Mode::Block => Some(
            store
                .get_blocks(workload)
                .map_err(|e| ProtoError(format!("block-lowering `{}`: {e}", workload.name())))?,
        ),
        _ => None,
    };
    let digest = match mode {
        // Every preset uses 32-byte lines (and `line_bytes` is not an
        // override knob); `run_sampled_digest` falls back to raw-record
        // warming if a future config disagrees.
        Mode::Sampled => Some(WarmDigest::build(packed.records(), 32)),
        _ => None,
    };
    Ok(TraceBundle {
        packed,
        blocks,
        digest,
    })
}

/// The memo-key fingerprint of a configuration under `mode`: the config
/// fingerprint itself for exact modes; with the sampling parameters
/// folded in for sampled mode, since the estimate depends on them.
pub fn cell_config_fp(cfg: &MachineConfig, mode: Mode, sampling: &SamplingConfig) -> u64 {
    let base = cfg.fingerprint();
    match mode {
        Mode::Detailed | Mode::Block => base,
        Mode::Sampled => {
            let mut h = Fnv1a::new();
            h.write_u64(base);
            h.write_usize(sampling.window_ops);
            h.write_usize(sampling.warmup_ops);
            h.write_usize(sampling.interval_ops);
            h.finish()
        }
    }
}

fn cell_line(
    ci: usize,
    cfg: &MachineConfig,
    workload: &Workload,
    source: CellSource,
    value: &CellValue,
) -> ResponseLine {
    let result = match value {
        CellValue::Exact(stats) => CellResult::Exact(stats.clone()),
        CellValue::Sampled(s) => CellResult::Sampled(SampledStats {
            instructions: s.instructions,
            detailed_instructions: s.detailed_instructions,
            windows: s.windows as usize,
            cpi: f64::from_bits(s.cpi_bits),
            ci_half_width: f64::from_bits(s.ci_bits),
        }),
    };
    ResponseLine::Cell {
        config_index: ci,
        config_name: cfg.name.clone(),
        workload: workload.name().to_owned(),
        source,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{IssueWidth, MachineModel};
    use aurora_mem::LatencyModel;

    #[test]
    fn sampled_fingerprint_depends_on_sampling_params() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let a = SamplingConfig::recommended();
        let mut b = a;
        b.window_ops += 64;
        assert_eq!(
            cell_config_fp(&cfg, Mode::Block, &a),
            cell_config_fp(&cfg, Mode::Block, &b),
            "exact modes ignore sampling params"
        );
        assert_ne!(
            cell_config_fp(&cfg, Mode::Sampled, &a),
            cell_config_fp(&cfg, Mode::Sampled, &b)
        );
        assert_ne!(
            cell_config_fp(&cfg, Mode::Sampled, &a),
            cell_config_fp(&cfg, Mode::Block, &a)
        );
    }
}
