//! The sharded, persistent result store: memoised simulation results
//! keyed by `(config fingerprint, trace hash, mode)`.
//!
//! # On-disk layout
//!
//! A store is a directory of `SHARDS` append-only segment files,
//! `shard-00.seg` … `shard-07.seg`. A cell key maps to a shard by an
//! FNV-1a hash of its bytes, so the shard of a key is stable across
//! processes. Each segment is:
//!
//! ```text
//! [magic "AURSTOR1": 8][store version: u32][trace format version: u32]
//! [checkpoint format version: u32]            -- 20-byte header
//! record*                                     -- zero or more records
//! record := [payload_len: u32][payload: payload_len bytes]
//!           [checksum: u64 = FNV-1a(payload)]
//! payload := [config_fp: u64][trace_hash: u64][mode: u8][value]
//! value  := [0x00][SimStats snapshot image]            -- exact result
//!         | [0x01][instructions: u64][detailed: u64]
//!           [windows: u64][cpi: f64 bits][ci: f64 bits] -- sampled result
//! ```
//!
//! All integers are little-endian. Everything after the header is pure
//! appended records; there is no in-file index — the in-memory index is
//! rebuilt by a sequential scan on open.
//!
//! # Crash safety and versioning
//!
//! A crash mid-append leaves a truncated or half-written tail record.
//! Recovery on open reads records sequentially and stops at the first
//! record that is truncated or fails its checksum, truncating the file
//! there; every record before the tail is intact by construction
//! (appends are sequential and flushed per put). A shard whose header
//! does not match — wrong magic, or any of the three format versions
//! differ — is discarded and rebuilt empty: memoised results are pure
//! caches of deterministic simulations, so invalidation is always safe,
//! and a version bump in the trace codec or snapshot container would
//! otherwise let stale bytes masquerade as current results.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use aurora_core::SimStats;
use aurora_isa::{Fnv1a, CHECKPOINT_FORMAT_VERSION, TRACE_FORMAT_VERSION};

/// Number of segment files a store is sharded over. Sharding bounds
/// lock contention between concurrent queries (each shard has its own
/// mutex) and caps the cost of a single-shard rebuild.
pub const SHARDS: usize = 8;

/// Version of the store's own record layout. Bump on any change to the
/// header or record encoding described in the [module docs](self).
pub const STORE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"AURSTOR1";
const HEADER_LEN: usize = 8 + 4 + 4 + 4;
/// Records bigger than this are rejected as corrupt rather than
/// allocated: a valid payload (stats image or sampled tuple) is a few
/// hundred bytes, so a multi-megabyte length prefix is garbage.
const MAX_PAYLOAD: u32 = 1 << 20;

const TAG_EXACT: u8 = 0x00;
const TAG_SAMPLED: u8 = 0x01;

/// How a query cell is executed — part of the memo key, since the three
/// modes return different result shapes (and the sampled estimate is
/// not bit-comparable to an exact run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Per-op detailed replay of the packed trace.
    Detailed,
    /// Basic-block superinstruction replay (bit-identical statistics to
    /// [`Mode::Detailed`], the fast default).
    Block,
    /// SMARTS-style sampled estimate with a confidence interval.
    Sampled,
}

impl Mode {
    /// The wire/key byte for this mode.
    pub fn code(self) -> u8 {
        match self {
            Mode::Detailed => 0,
            Mode::Block => 1,
            Mode::Sampled => 2,
        }
    }

    /// Decodes a key byte.
    pub fn from_code(code: u8) -> Option<Mode> {
        match code {
            0 => Some(Mode::Detailed),
            1 => Some(Mode::Block),
            2 => Some(Mode::Sampled),
            _ => None,
        }
    }

    /// The wire name (`"detailed"`, `"block"`, `"sampled"`).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Detailed => "detailed",
            Mode::Block => "block",
            Mode::Sampled => "sampled",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Mode> {
        match name {
            "detailed" => Some(Mode::Detailed),
            "block" => Some(Mode::Block),
            "sampled" => Some(Mode::Sampled),
            _ => None,
        }
    }
}

/// The memo key of one design-space cell.
///
/// `config_fp` is [`MachineConfig::fingerprint`] (with the sampling
/// parameters folded in for [`Mode::Sampled`] — see
/// `engine::sampled_config_fp`), `trace_hash` is
/// [`Workload::trace_hash`]. Both are cross-process stable, so a store
/// written by one daemon is valid for any later one built at the same
/// format versions.
///
/// [`MachineConfig::fingerprint`]: aurora_core::MachineConfig::fingerprint
/// [`Workload::trace_hash`]: aurora_workloads::Workload::trace_hash
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Stable fingerprint of the machine configuration (plus sampling
    /// parameters in sampled mode).
    pub config_fp: u64,
    /// Stable fingerprint of the workload's dynamic trace identity.
    pub trace_hash: u64,
    /// Execution mode.
    pub mode: Mode,
}

impl CellKey {
    fn shard(&self) -> usize {
        let mut h = Fnv1a::new();
        h.write_u64(self.config_fp);
        h.write_u64(self.trace_hash);
        h.write_u8(self.mode.code());
        (h.finish() % SHARDS as u64) as usize
    }
}

/// A sampled-mode memo value: the [`SampledStats`] fields with the two
/// floats carried as exact bit patterns, so a warm hit reproduces the
/// cold run's estimate bit-for-bit.
///
/// [`SampledStats`]: aurora_core::SampledStats
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledCell {
    /// Total instructions in the trace.
    pub instructions: u64,
    /// Instructions run through the detailed model.
    pub detailed_instructions: u64,
    /// Measured windows.
    pub windows: u64,
    /// `f64::to_bits` of the mean CPI estimate.
    pub cpi_bits: u64,
    /// `f64::to_bits` of the 95% CI half-width.
    pub ci_bits: u64,
}

/// A memoised cell result.
///
/// Exact cells are the common case; `SimStats` stays inline unboxed.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum CellValue {
    /// An exact run: the full [`SimStats`].
    Exact(SimStats),
    /// A sampled estimate.
    Sampled(SampledCell),
}

struct Shard {
    file: File,
    index: HashMap<CellKey, CellValue>,
}

/// The persistent memo: open it on a directory, [`get`](ResultStore::get)
/// and [`put`](ResultStore::put) cells. All methods take `&self`; each
/// shard is independently locked, so concurrent queries on disjoint
/// shards never contend.
pub struct ResultStore {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
    rebuilt: usize,
    recovered_records: usize,
}

impl ResultStore {
    /// Opens (creating if needed) the store in `dir`, scanning every
    /// shard to rebuild the in-memory index. Shards with mismatched
    /// versions are discarded; shards with a damaged tail are truncated
    /// to their last intact record.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or a segment
    /// file cannot be created, read or truncated. Corruption is *not*
    /// an error — it is recovered from as described above.
    pub fn open(dir: &Path) -> std::io::Result<ResultStore> {
        fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(SHARDS);
        let mut rebuilt = 0;
        let mut recovered = 0;
        for i in 0..SHARDS {
            let path = dir.join(format!("shard-{i:02}.seg"));
            let (shard, was_rebuilt, truncated) = Shard::open(&path)?;
            rebuilt += usize::from(was_rebuilt);
            recovered += truncated;
            shards.push(Mutex::new(shard));
        }
        Ok(ResultStore {
            dir: dir.to_owned(),
            shards,
            rebuilt,
            recovered_records: recovered,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shards that were discarded and rebuilt empty on open (version or
    /// magic mismatch).
    pub fn shards_rebuilt(&self) -> usize {
        self.rebuilt
    }

    /// Damaged tail records dropped during open-time recovery.
    pub fn records_recovered(&self) -> usize {
        self.recovered_records
    }

    /// Looks up a memoised cell.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned (a thread panicked mid-append;
    /// the in-memory index can no longer be trusted).
    pub fn get(&self, key: &CellKey) -> Option<CellValue> {
        let shard = self.shards[key.shard()].lock().expect("shard poisoned");
        shard.index.get(key).cloned()
    }

    /// Inserts (or re-inserts) a cell, appending it to the shard's
    /// segment and flushing before the index is updated — a reader can
    /// never observe an indexed cell that is not durable.
    ///
    /// Duplicate puts of the same key are benign: concurrent queries
    /// racing on a cold cell each append their (bit-identical) result
    /// and the index keeps the last one; recovery keeps the last intact
    /// copy too.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the append or flush fails;
    /// the in-memory index is left unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned.
    pub fn put(&self, key: &CellKey, value: &CellValue) -> std::io::Result<()> {
        let payload = encode_payload(key, value);
        let mut record = Vec::with_capacity(payload.len() + 12);
        record.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("payload exceeds u32")
                .to_le_bytes(),
        );
        record.extend_from_slice(&payload);
        record.extend_from_slice(&aurora_isa::fnv1a(&payload).to_le_bytes());
        let mut shard = self.shards[key.shard()].lock().expect("shard poisoned");
        shard.file.write_all(&record)?;
        shard.file.flush()?;
        shard.index.insert(*key, value.clone());
        Ok(())
    }

    /// Number of memoised cells across all shards.
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").index.len())
            .sum()
    }

    /// Whether the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Shard {
    /// Opens one segment, returning `(shard, rebuilt, truncated_records)`.
    fn open(path: &Path) -> std::io::Result<(Shard, bool, usize)> {
        let mut rebuilt = false;
        let mut bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if !bytes.is_empty() && !header_is_current(&bytes) {
            // Version/magic mismatch: the cache is stale by definition.
            // Discard and rebuild — results are recomputable.
            bytes.clear();
            rebuilt = true;
        }
        let (index, valid_len, truncated) = scan_records(&bytes);
        let write_fresh = bytes.is_empty();
        if write_fresh {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&CHECKPOINT_FORMAT_VERSION.to_le_bytes());
            write_atomically(path, &header)?;
        } else if valid_len < bytes.len() {
            // Damaged tail: truncate to the last intact record so the
            // next append starts at a clean boundary.
            write_atomically(path, &bytes[..valid_len])?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((Shard { file, index }, rebuilt, truncated))
    }
}

fn header_is_current(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN
        && &bytes[..8] == MAGIC
        && bytes[8..12] == STORE_FORMAT_VERSION.to_le_bytes()
        && bytes[12..16] == TRACE_FORMAT_VERSION.to_le_bytes()
        && bytes[16..20] == CHECKPOINT_FORMAT_VERSION.to_le_bytes()
}

/// Scans the record region, returning the decoded index, the byte
/// length of the intact prefix (header included) and how many damaged
/// tail records were dropped.
fn scan_records(bytes: &[u8]) -> (HashMap<CellKey, CellValue>, usize, usize) {
    let mut index = HashMap::new();
    if bytes.is_empty() {
        return (index, 0, 0);
    }
    let mut pos = HEADER_LEN.min(bytes.len());
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (index, pos, 0);
        }
        let Some(len_bytes) = rest.get(..4) else {
            return (index, pos, 1);
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return (index, pos, 1);
        }
        let total = 4 + len as usize + 8;
        let Some(record) = rest.get(..total) else {
            return (index, pos, 1);
        };
        let payload = &record[4..4 + len as usize];
        let checksum = u64::from_le_bytes(record[4 + len as usize..].try_into().expect("8 bytes"));
        if aurora_isa::fnv1a(payload) != checksum {
            return (index, pos, 1);
        }
        match decode_payload(payload) {
            Some((key, value)) => {
                index.insert(key, value);
            }
            // Checksum-valid but undecodable: written by a future minor
            // revision we don't understand. Stop scanning (we cannot
            // trust our framing of later records), keep the prefix.
            None => return (index, pos, 1),
        }
        pos += total;
    }
}

fn encode_payload(key: &CellKey, value: &CellValue) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&key.config_fp.to_le_bytes());
    out.extend_from_slice(&key.trace_hash.to_le_bytes());
    out.push(key.mode.code());
    match value {
        CellValue::Exact(stats) => {
            out.push(TAG_EXACT);
            out.extend_from_slice(&stats.to_snapshot_bytes());
        }
        CellValue::Sampled(s) => {
            out.push(TAG_SAMPLED);
            out.extend_from_slice(&s.instructions.to_le_bytes());
            out.extend_from_slice(&s.detailed_instructions.to_le_bytes());
            out.extend_from_slice(&s.windows.to_le_bytes());
            out.extend_from_slice(&s.cpi_bits.to_le_bytes());
            out.extend_from_slice(&s.ci_bits.to_le_bytes());
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<(CellKey, CellValue)> {
    if payload.len() < 18 {
        return None;
    }
    let config_fp = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let trace_hash = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let mode = Mode::from_code(payload[16])?;
    let key = CellKey {
        config_fp,
        trace_hash,
        mode,
    };
    let tag = payload[17];
    let body = &payload[18..];
    let value = match tag {
        TAG_EXACT => CellValue::Exact(SimStats::from_snapshot_bytes(body).ok()?),
        TAG_SAMPLED => {
            if body.len() != 40 {
                return None;
            }
            CellValue::Sampled(SampledCell {
                instructions: u64::from_le_bytes(body[..8].try_into().ok()?),
                detailed_instructions: u64::from_le_bytes(body[8..16].try_into().ok()?),
                windows: u64::from_le_bytes(body[16..24].try_into().ok()?),
                cpi_bits: u64::from_le_bytes(body[24..32].try_into().ok()?),
                ci_bits: u64::from_le_bytes(body[32..40].try_into().ok()?),
            })
        }
        _ => return None,
    };
    Some((key, value))
}

/// Writes `bytes` to `path` through a temp file + rename, so a crash
/// mid-write never leaves a half-written segment (same pattern as the
/// workloads trace cache).
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("seg.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}
