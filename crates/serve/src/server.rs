//! Transports: the daemon's unix-socket line protocol and the localhost
//! HTTP endpoint, both hand-rolled over the standard library (the
//! workspace carries no network or serialization dependencies).
//!
//! * **Unix socket** — one request per connection: the client writes a
//!   single line of JSON, the server streams NDJSON response lines back
//!   and closes. This is the low-latency path for local tooling.
//! * **HTTP** — `POST /query` with a JSON body answers the same NDJSON
//!   stream (close-delimited, `Connection: close`); `GET /health`
//!   returns a small status object. Enough HTTP/1.1 for `curl`, nothing
//!   more.
//!
//! Each accepted connection is handled on its own thread against the
//! shared [`Engine`]; the store's shard locks make concurrent queries
//! safe, and overlapping cold cells at worst re-simulate (bit-identical
//! results, last append wins).

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::engine::Engine;
use crate::proto::{QueryRequest, ResponseLine, MAX_BODY_BYTES};

/// A running server: the accept loop lives on a background thread until
/// [`shutdown`](ServerHandle::shutdown).
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    wake: Wake,
    accept_thread: Option<JoinHandle<()>>,
}

enum Wake {
    Unix(PathBuf),
    Http(std::net::SocketAddr),
}

impl ServerHandle {
    /// Stops the accept loop and joins it. In-flight connections run to
    /// completion on their own threads; no new connections are
    /// accepted. The unix socket file is removed.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The listener is blocked in accept(); poke it awake.
        match &self.wake {
            Wake::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
            Wake::Http(addr) => {
                let _ = TcpStream::connect(addr);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Wake::Unix(path) = &self.wake {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Binds a unix-socket server at `path` (removing any stale socket
/// file) and starts accepting on a background thread.
///
/// # Errors
///
/// Returns the bind error if the socket cannot be created.
pub fn spawn_unix(engine: Arc<Engine>, path: &Path) -> io::Result<ServerHandle> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || handle_unix(&engine, stream));
        }
    });
    Ok(ServerHandle {
        stop,
        wake: Wake::Unix(path.to_owned()),
        accept_thread: Some(accept_thread),
    })
}

/// Binds an HTTP server on `addr` (e.g. `"127.0.0.1:0"`) and starts
/// accepting on a background thread. Returns the handle and the bound
/// address (useful with port 0).
///
/// # Errors
///
/// Returns the bind error if the address cannot be bound.
pub fn spawn_http(
    engine: Arc<Engine>,
    addr: &str,
) -> io::Result<(ServerHandle, std::net::SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || handle_http(&engine, stream));
        }
    });
    Ok((
        ServerHandle {
            stop,
            wake: Wake::Http(local),
            accept_thread: Some(accept_thread),
        },
        local,
    ))
}

/// Runs one request against the engine, writing each response line (and
/// flushing — the stream is incremental by design) to `out`.
fn answer<W: Write>(engine: &Engine, request_text: &str, out: &mut W) {
    let mut emit = |line: &ResponseLine| {
        // A write failure means the client hung up; keep draining the
        // engine's callbacks (results still land in the store).
        let _ = writeln!(out, "{}", line.to_json());
        let _ = out.flush();
    };
    match QueryRequest::from_json_str(request_text) {
        Ok(req) => {
            // Errors were already emitted as an error line.
            let _ = engine.execute(&req, &mut emit);
        }
        Err(e) => emit(&ResponseLine::Error {
            message: e.to_string(),
        }),
    }
}

fn handle_unix(engine: &Engine, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // One request per connection: the client writes its JSON document
    // (newlines allowed) and shuts down its write half; EOF delimits
    // the request. Bounded read — a query document is small.
    let mut request = String::new();
    if BufReader::new(read_half)
        .take(MAX_BODY_BYTES as u64)
        .read_to_string(&mut request)
        .is_err()
        || request.trim().is_empty()
    {
        return;
    }
    let mut writer = BufWriter::new(stream);
    answer(engine, request.trim(), &mut writer);
}

fn handle_http(engine: &Engine, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_owned(), t.to_owned()),
        _ => return,
    };

    // Headers: we only need Content-Length.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header).is_err() {
            return;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }

    match (method.as_str(), target.as_str()) {
        ("GET", "/health") => {
            let body = format!("{{\"status\":\"ok\",\"cells\":{}}}\n", engine.store().len());
            let _ = write!(
                writer,
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
        }
        ("POST", "/query") => {
            // Cap request bodies: a query document is small, and an
            // absurd Content-Length must not drive an allocation.
            if content_length > MAX_BODY_BYTES {
                let _ = write!(
                    writer,
                    "HTTP/1.1 413 Payload Too Large\r\nConnection: close\r\n\r\n"
                );
                let _ = writer.flush();
                return;
            }
            let mut body = vec![0u8; content_length];
            if reader.read_exact(&mut body).is_err() {
                return;
            }
            let Ok(text) = String::from_utf8(body) else {
                let _ = write!(
                    writer,
                    "HTTP/1.1 400 Bad Request\r\nConnection: close\r\n\r\n"
                );
                let _ = writer.flush();
                return;
            };
            // The NDJSON body is close-delimited: no Content-Length up
            // front would mean buffering the whole (streamed) response.
            let _ = write!(
                writer,
                "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
            );
            let _ = writer.flush();
            answer(engine, &text, &mut writer);
        }
        _ => {
            let _ = write!(
                writer,
                "HTTP/1.1 404 Not Found\r\nConnection: close\r\n\r\n"
            );
        }
    }
    let _ = writer.flush();
}
