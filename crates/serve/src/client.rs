//! Client helpers: send a query to a running daemon and stream the
//! NDJSON response lines back through a callback. Used by the
//! `aurora-query` binary, the service benchmark and the end-to-end
//! tests; any language with sockets can reimplement this in a few lines
//! (see `docs/SERVICE.md`).

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::json::Json;

/// Sends `request_json` (one JSON document) over the unix socket at
/// `path`, invoking `on_line` for each NDJSON response line until the
/// server closes the stream.
///
/// # Errors
///
/// Returns connection or stream I/O errors. Protocol-level failures
/// arrive as a response line with `"type": "error"`, not as an `Err`.
pub fn query_unix(
    path: &Path,
    request_json: &str,
    mut on_line: impl FnMut(&str),
) -> io::Result<()> {
    let mut stream = UnixStream::connect(path)?;
    stream.write_all(request_json.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Write)?;
    for line in BufReader::new(stream).lines() {
        let line = line?;
        if !line.trim().is_empty() {
            on_line(&line);
        }
    }
    Ok(())
}

/// Sends `request_json` as `POST /query` to the daemon at `addr`
/// (e.g. `"127.0.0.1:7070"`), invoking `on_line` per NDJSON response
/// line. The response body is close-delimited (`Connection: close`).
///
/// # Errors
///
/// Returns connection/stream I/O errors, or `InvalidData` if the server
/// answers a non-200 status.
pub fn query_http(addr: &str, request_json: &str, mut on_line: impl FnMut(&str)) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST /query HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{request_json}",
        request_json.len()
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server answered: {}", status.trim()),
        ));
    }
    // Skip headers.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    for line in reader.lines() {
        let line = line?;
        if !line.trim().is_empty() {
            on_line(&line);
        }
    }
    Ok(())
}

/// Fetches `GET /health` from the daemon at `addr`, returning the JSON
/// body.
///
/// # Errors
///
/// Returns connection/stream I/O errors or `InvalidData` on a non-200
/// status.
pub fn health_http(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET /health HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    if !status.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("server answered: {}", status.trim()),
        ));
    }
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    for line in reader.lines() {
        body.push_str(&line?);
    }
    Ok(body)
}

/// The `"type"` field of a response line, if it parses as JSON
/// (`"cell"`, `"summary"`, `"error"`).
pub fn line_type(line: &str) -> Option<String> {
    Json::parse(line)
        .ok()?
        .get("type")?
        .as_str()
        .map(str::to_owned)
}
