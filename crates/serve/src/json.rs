//! A minimal, dependency-free JSON reader/writer for the wire protocol.
//!
//! The workspace deliberately carries no serialization dependency (the
//! build environment is offline), so the service speaks JSON through
//! this ~300-line module instead: a recursive-descent parser into
//! [`Json`] and a writer that escapes strings and prints numbers in a
//! round-trippable form. It supports exactly the JSON the protocol
//! needs — objects, arrays, strings, finite numbers, booleans, null —
//! and rejects everything else with a positioned [`JsonError`].
//!
//! ```
//! use aurora_serve::json::Json;
//!
//! let v = Json::parse(r#"{"mode": "block", "configs": [1, 2.5]}"#).unwrap();
//! assert_eq!(v.get("mode").and_then(Json::as_str), Some("block"));
//! assert_eq!(v.get("configs").unwrap().as_array().unwrap().len(), 2);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects keep their members in a [`BTreeMap`], so re-serializing a
/// value is deterministic (sorted keys) — handy for golden tests; the
/// protocol never depends on member order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (the protocol's integers all fit
    /// far below 2^53; 64-bit fingerprints travel as hex *strings*).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`JsonError`] on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup; `None` for absent members or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a number that is
    /// finite, integral and in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_number(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Prints a finite number so that integral values have no fraction part
/// (`17`, not `17.0`) and everything round-trips through `f64` parsing.
fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        // `{:?}` on f64 is the shortest representation that reparses
        // to the same bits — exactly what a wire format wants.
        write!(f, "{n:?}")
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Deepest container nesting the parser will follow. The protocol needs
/// four or five levels; the cap exists so a `[[[[...` bomb exhausts this
/// counter, not the thread's stack (the parser recurses per level).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("document nests deeper than 64 levels"));
        }
        let v = inner(self)?;
        self.depth -= 1;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported).
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("invalid code point"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number span is ASCII by construction");
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// Builds a `Json::Obj` from `(key, value)` pairs.
pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false, "x\ny"]}}"#;
        let v = Json::parse(src).unwrap();
        let re = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"\\x\"", "\"abc",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nests deeper"), "{err}");
        let mixed = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&mixed).is_err());
        // Shallow documents are unaffected.
        let ok = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = Json::Str("tab\t quote\" back\\ nl\n €".to_owned());
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, parsed);
        let sp = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(sp.as_str(), Some("😀"));
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(17.0).to_string(), "17");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
    }

    #[test]
    fn as_u64_guards_range_and_integrality() {
        assert_eq!(Json::Num(12.0).as_u64(), Some(12));
        assert_eq!(Json::Num(12.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
