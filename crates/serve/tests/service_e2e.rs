//! End-to-end service tests: a real daemon on a unix socket (and HTTP),
//! overlapping grid queries from concurrent clients, and the core
//! guarantee — warm-path results bit-identical to a direct `run_matrix`
//! sweep.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use aurora_bench::harness::run_matrix;
use aurora_serve::json::Json;
use aurora_serve::proto::{CellResult, QueryRequest, ResponseLine};
use aurora_serve::{client, server, Engine, ResultStore};
use aurora_workloads::workload_by_name;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aurora-serve-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Two overlapping grid queries race on a fresh daemon; afterwards the
/// union grid is fully memoised and a repeat query simulates nothing.
/// Then the warm cells are checked bit-identical against run_matrix.
#[test]
fn overlapping_queries_memoise_and_match_run_matrix() {
    let dir = scratch("overlap");
    let socket = dir.join("aurora.sock");
    fs::create_dir_all(&dir).expect("scratch dir");
    let engine = Arc::new(Engine::new(
        ResultStore::open(&dir.join("store")).expect("open store"),
    ));
    let handle = server::spawn_unix(Arc::clone(&engine), &socket).expect("bind");

    // Query A: {baseline-single, baseline-dual} × {eqntott};
    // Query B: {baseline-dual, small-dual} × {eqntott, compress}.
    // They overlap on the (baseline-dual, eqntott) cell.
    let req_a = r#"{"configs": [{"model": "baseline", "issue": "single"},
                                {"model": "baseline", "issue": "dual"}],
                    "workloads": ["eqntott"], "scale": "test", "mode": "block"}"#;
    let req_b = r#"{"configs": [{"model": "baseline", "issue": "dual"},
                                {"model": "small", "issue": "dual"}],
                    "workloads": ["eqntott", "compress"], "scale": "test", "mode": "block"}"#;

    let run_query = |req: &str| {
        let mut lines = Vec::new();
        client::query_unix(&socket, req, |l| lines.push(l.to_owned())).expect("query");
        lines
    };
    let (lines_a, lines_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_query(req_a));
        let b = scope.spawn(|| run_query(req_b));
        (a.join().expect("query A"), b.join().expect("query B"))
    });

    let summary = |lines: &[String]| {
        let last = Json::parse(lines.last().expect("lines")).expect("json");
        assert_eq!(last.get("type").and_then(Json::as_str), Some("summary"));
        (
            last.get("cells").and_then(Json::as_u64).unwrap(),
            last.get("memo_hits").and_then(Json::as_u64).unwrap(),
            last.get("simulated").and_then(Json::as_u64).unwrap(),
        )
    };
    let (cells_a, memo_a, sim_a) = summary(&lines_a);
    let (cells_b, memo_b, sim_b) = summary(&lines_b);
    assert_eq!(cells_a, 2);
    assert_eq!(cells_b, 4);
    assert_eq!(memo_a + sim_a, 2, "every A cell answered exactly once");
    assert_eq!(memo_b + sim_b, 4, "every B cell answered exactly once");
    // Cell lines precede the summary and carry stats objects.
    assert_eq!(lines_a.len() as u64, cells_a + 1);
    assert_eq!(lines_b.len() as u64, cells_b + 1);

    // The union grid (5 distinct cells) is now warm: repeats of both
    // queries must hit the memo for every cell and simulate nothing.
    for req in [req_a, req_b] {
        let lines = run_query(req);
        let (cells, memo, sim) = summary(&lines);
        assert_eq!(memo, cells, "warm repeat must be all memo hits");
        assert_eq!(sim, 0, "warm repeat must not re-simulate");
    }
    assert_eq!(engine.store().len(), 5, "five distinct cells memoised");

    // Bit-identity: execute query B warm at the engine level (full
    // SimStats, no JSON round trip) and compare against run_matrix.
    let req = QueryRequest::from_json_str(req_b).expect("parse");
    let configs = req.machine_configs().expect("resolve");
    let workloads: Vec<_> = req
        .workloads
        .iter()
        .map(|w| workload_by_name(w, req.scale).expect("workload"))
        .collect();
    let mut warm_cells = Vec::new();
    let summary = engine
        .execute(&req, &mut |line: &ResponseLine| {
            if let ResponseLine::Cell {
                config_index,
                workload,
                result: CellResult::Exact(stats),
                ..
            } = line
            {
                warm_cells.push((*config_index, workload.clone(), stats.clone()));
            }
        })
        .expect("warm execute");
    assert_eq!(summary.memo_hits, 4);
    assert_eq!(summary.simulated, 0);
    let direct = run_matrix(&configs, &workloads);
    assert_eq!(warm_cells.len(), 4);
    for (ci, wname, stats) in &warm_cells {
        let wi = req.workloads.iter().position(|w| w == wname).expect("wi");
        assert_eq!(
            stats, &direct[*ci][wi],
            "memoised stats must be bit-identical to run_matrix for config {ci} × {wname}"
        );
    }

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The store persists across daemon restarts: a second daemon on the
/// same directory answers the first daemon's cells from the memo.
#[test]
fn warm_cells_survive_daemon_restart() {
    let dir = scratch("restart");
    let socket = dir.join("aurora.sock");
    fs::create_dir_all(&dir).expect("scratch dir");
    let store_dir = dir.join("store");
    let req = r#"{"configs": [{"model": "small", "issue": "single"}],
                  "workloads": ["li"], "scale": "test", "mode": "block"}"#;

    let run_query = |socket: &std::path::Path| {
        let mut last = String::new();
        client::query_unix(socket, req, |l| last = l.to_owned()).expect("query");
        Json::parse(&last).expect("summary json")
    };

    let engine = Arc::new(Engine::new(ResultStore::open(&store_dir).expect("open")));
    let handle = server::spawn_unix(Arc::clone(&engine), &socket).expect("bind");
    let cold = run_query(&socket);
    assert_eq!(cold.get("simulated").and_then(Json::as_u64), Some(1));
    handle.shutdown();
    drop(engine);

    let engine = Arc::new(Engine::new(ResultStore::open(&store_dir).expect("reopen")));
    assert_eq!(engine.store().len(), 1);
    let handle = server::spawn_unix(Arc::clone(&engine), &socket).expect("rebind");
    let warm = run_query(&socket);
    assert_eq!(warm.get("memo_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(warm.get("simulated").and_then(Json::as_u64), Some(0));
    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The HTTP transport: /health reports the store, /query streams the
/// same NDJSON the unix transport does, bad requests answer error lines.
#[test]
fn http_transport_serves_health_and_queries() {
    let dir = scratch("http");
    fs::create_dir_all(&dir).expect("scratch dir");
    let engine = Arc::new(Engine::new(
        ResultStore::open(&dir.join("store")).expect("open"),
    ));
    let (handle, addr) = server::spawn_http(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = addr.to_string();

    let health = client::health_http(&addr).expect("health");
    let health = Json::parse(&health).expect("health json");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("cells").and_then(Json::as_u64), Some(0));

    let mut lines = Vec::new();
    client::query_http(
        &addr,
        r#"{"configs": [{"model": "small", "issue": "dual"}],
            "workloads": ["ear"], "scale": "test", "mode": "sampled"}"#,
        |l| lines.push(l.to_owned()),
    )
    .expect("query");
    assert_eq!(lines.len(), 2, "one cell line plus the summary");
    let cell = Json::parse(&lines[0]).expect("cell json");
    assert_eq!(cell.get("type").and_then(Json::as_str), Some("cell"));
    let stats = cell.get("stats").expect("stats");
    assert!(stats.get("cpi").and_then(Json::as_f64).expect("cpi") > 0.5);
    assert!(stats.get("ci_half_width").and_then(Json::as_f64).is_some());

    // Unknown workloads and malformed JSON both answer an error line
    // (the connection stays usable for the next client either way).
    for bad in [
        r#"{"configs": [{}], "workloads": ["no-such-kernel"], "scale": "test"}"#,
        "this is not json",
    ] {
        let mut lines = Vec::new();
        client::query_http(&addr, bad, |l| lines.push(l.to_owned())).expect("send");
        assert_eq!(lines.len(), 1);
        assert_eq!(client::line_type(&lines[0]).as_deref(), Some("error"));
    }

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Detailed and block modes memoise separately but agree bit-for-bit on
/// statistics (the fingerprints in the cell lines match).
#[test]
fn detailed_and_block_modes_agree() {
    let dir = scratch("modes");
    let socket = dir.join("aurora.sock");
    fs::create_dir_all(&dir).expect("scratch dir");
    let engine = Arc::new(Engine::new(
        ResultStore::open(&dir.join("store")).expect("open"),
    ));
    let handle = server::spawn_unix(Arc::clone(&engine), &socket).expect("bind");

    let fingerprint_for = |mode: &str| {
        let req = format!(
            r#"{{"configs": [{{"model": "baseline", "issue": "dual"}}],
                 "workloads": ["eqntott"], "scale": "test", "mode": "{mode}"}}"#
        );
        let mut fp = String::new();
        client::query_unix(&socket, &req, |l| {
            let v = Json::parse(l).expect("json");
            if v.get("type").and_then(Json::as_str) == Some("cell") {
                fp = v
                    .get("stats")
                    .and_then(|s| s.get("fingerprint"))
                    .and_then(Json::as_str)
                    .expect("fingerprint")
                    .to_owned();
            }
        })
        .expect("query");
        fp
    };
    let block_fp = fingerprint_for("block");
    let detailed_fp = fingerprint_for("detailed");
    assert_eq!(block_fp, detailed_fp, "modes must agree bit-for-bit");
    assert_eq!(engine.store().len(), 2, "modes memoise as separate cells");

    handle.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
