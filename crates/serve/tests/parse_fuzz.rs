//! No-panic property suite for the untrusted parse boundary.
//!
//! Everything a socket can deliver flows through [`Json::parse`] and
//! [`QueryRequest::from_json_str`] before it touches the engine, so
//! those two functions carry the service's no-panic obligation: any
//! byte sequence must come back as `Ok` or a structured error — never a
//! panic, and never an `Ok` that smuggles an unbounded size past the
//! protocol caps (the static side of the same contract is aurora-lint's
//! L015).
//!
//! The corpus is adversarial rather than uniform: valid requests are
//! truncated at every kind of boundary, bit-flipped, spliced with
//! garbage, and nested past any sane depth. A fixed seed keeps failures
//! reproducible; the case count (10k+ per shape) is sized to keep the
//! suite under a second.

use std::panic::{catch_unwind, AssertUnwindSafe};

use aurora_serve::json::Json;
use aurora_serve::proto::{
    QueryRequest, MAX_CELLS_PER_QUERY, MAX_CONFIGS_PER_QUERY, MAX_WORKLOADS_PER_QUERY,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seed documents covering every protocol shape the parser knows.
const SEEDS: &[&str] = &[
    r#"{"configs": [{}], "workloads": ["espresso"]}"#,
    r#"{"configs": [{"model": "small", "issue": "single", "latency": {"fixed": 17}}],
        "workloads": ["compress", "li"], "scale": "test", "mode": "block"}"#,
    r#"{"configs": [{"model": "large", "overrides": {"mshr_entries": 4,
        "prefetch_enabled": false, "dcache_latency": 2}}],
        "workloads": ["espresso"], "mode": "sampled",
        "sampling": {"window_ops": 1000, "warmup_ops": 200, "interval_ops": 5000}}"#,
    r#"{"configs": [{"latency": {"uniform": [9, 25]}},
                    {"latency": {"bimodal": {"hit": 10, "miss": 40, "hit_permille": 750}}}],
        "workloads": ["li"], "scale": "full"}"#,
    r#"{"type": "cell", "config": 0, "config_name": "baseline+seed", "workload": "espresso",
        "source": "memo", "stats": {"cycles": 123456, "instructions": 100000, "cpi": 1.23,
        "stall_cycles": 2345, "dual_issues": 40000, "fp_instructions": 100,
        "fingerprint": "0x00deadbeefcafe00"}}"#,
    r#"[1, 2.5, -3e2, true, false, null, "x\ny", {"a": [{"b": "😀"}]}]"#,
];

/// One parse attempt; returns true when the parser panicked.
fn panics(input: &str) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        if let Ok(req) = QueryRequest::from_json_str(input) {
            // An accepted request must already be inside the caps —
            // this is the over-allocation half of the property.
            assert!(req.configs.len() <= MAX_CONFIGS_PER_QUERY);
            assert!(req.workloads.len() <= MAX_WORKLOADS_PER_QUERY);
            assert!(req.configs.len() * req.workloads.len() <= MAX_CELLS_PER_QUERY);
        }
        // Json::parse runs inside from_json_str too, but malformed
        // documents bail there before exercising the value accessors.
        if let Ok(v) = Json::parse(input) {
            let _ = v.to_string();
        }
    }))
    .is_err()
}

fn check_corpus(label: &str, inputs: impl Iterator<Item = String>) {
    let mut cases = 0usize;
    for input in inputs {
        assert!(!panics(&input), "{label} case panicked: {input:?}");
        cases += 1;
    }
    assert!(cases > 0, "{label}: empty corpus");
}

#[test]
fn truncations_never_panic() {
    // Every prefix of every seed, bytewise: cuts strings, escapes,
    // numbers, and container boundaries mid-token.
    check_corpus(
        "truncation",
        SEEDS.iter().flat_map(|s| {
            (0..s.len()).map(move |end| String::from_utf8_lossy(&s.as_bytes()[..end]).into_owned())
        }),
    );
}

#[test]
fn byte_flips_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0001);
    let corpus: Vec<String> = (0..6000)
        .map(|i| {
            let mut bytes = SEEDS[i % SEEDS.len()].as_bytes().to_vec();
            for _ in 0..rng.gen_range(1..8) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen();
            }
            String::from_utf8_lossy(&bytes).into_owned()
        })
        .collect();
    check_corpus("byte-flip", corpus.into_iter());
}

#[test]
fn garbage_splices_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0002);
    let corpus: Vec<String> = (0..6000)
        .map(|i| {
            let seed = SEEDS[i % SEEDS.len()].as_bytes();
            let cut = rng.gen_range(0..seed.len());
            let mut bytes = seed[..cut].to_vec();
            for _ in 0..rng.gen_range(0..24) {
                bytes.push(rng.gen());
            }
            bytes.extend_from_slice(&seed[rng.gen_range(0..seed.len())..]);
            String::from_utf8_lossy(&bytes).into_owned()
        })
        .collect();
    check_corpus("splice", corpus.into_iter());
}

#[test]
fn random_token_soup_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0003);
    const TOKENS: &[&str] = &[
        "{",
        "}",
        "[",
        "]",
        ",",
        ":",
        "\"",
        "\\u",
        "\\",
        "null",
        "true",
        "false",
        "-",
        "1e999",
        "0.5",
        "9999999999999999999999",
        "\"configs\"",
        "\"workloads\"",
        "e",
        "\u{1F600}",
    ];
    let corpus: Vec<String> = (0..4000)
        .map(|_| {
            let n = rng.gen_range(0..32);
            (0..n)
                .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
                .collect()
        })
        .collect();
    check_corpus("token-soup", corpus.into_iter());
}

#[test]
fn nesting_bombs_never_panic() {
    let corpus = [
        "[".repeat(200_000),
        "{\"a\":".repeat(200_000),
        format!("{}{}", "[".repeat(100_000), "]".repeat(100_000)),
        format!("{{\"configs\": {}1{}}}", "[".repeat(5000), "]".repeat(5000)),
    ];
    check_corpus("nesting-bomb", corpus.into_iter());
}
