//! Property tests for the persistent [`ResultStore`]: random
//! insert/reopen round trips, truncated-tail recovery, corrupt-record
//! rejection and version-mismatch rebuild.
//!
//! The invariant under test everywhere: the store may *lose* cells (a
//! damaged tail, a version bump) but may never return a value different
//! from the one that was put — memoised results feed bit-identity
//! guarantees downstream, so a silently wrong cell is the one
//! unacceptable failure.

use std::fs;
use std::path::PathBuf;

use aurora_core::SimStats;
use aurora_serve::{CellKey, CellValue, Mode, ResultStore, SampledCell};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A unique scratch directory per (test, case).
fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aurora-store-props-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Derives a pseudo-random cell from `rng`, covering all three modes
/// and both value shapes.
fn random_cell(rng: &mut SmallRng) -> (CellKey, CellValue) {
    let mode = match rng.gen_range(0u8..3) {
        0 => Mode::Detailed,
        1 => Mode::Block,
        _ => Mode::Sampled,
    };
    let key = CellKey {
        config_fp: rng.gen_range(0..u64::MAX),
        trace_hash: rng.gen_range(0..u64::MAX),
        mode,
    };
    let value = if mode == Mode::Sampled {
        CellValue::Sampled(SampledCell {
            instructions: rng.gen_range(0..1u64 << 40),
            detailed_instructions: rng.gen_range(0..1u64 << 30),
            windows: rng.gen_range(1..10_000),
            cpi_bits: f64::to_bits(rng.gen_range(0.5..20.0)),
            ci_bits: f64::to_bits(rng.gen_range(0.0..0.5)),
        })
    } else {
        let stats = SimStats {
            cycles: rng.gen_range(0..1u64 << 40),
            instructions: rng.gen_range(0..1u64 << 38),
            dual_issues: rng.gen_range(0..1u64 << 30),
            fp_instructions: rng.gen_range(0..1u64 << 30),
            folded_branches: rng.gen_range(0..1u64 << 28),
            ..SimStats::default()
        };
        CellValue::Exact(stats)
    };
    (key, value)
}

/// Writes `n` random cells, returning what was written (later puts for
/// the same key overwrite — the map keeps the final value, as the store
/// must).
fn fill(store: &ResultStore, rng: &mut SmallRng, n: usize) -> Vec<(CellKey, CellValue)> {
    let mut written: Vec<(CellKey, CellValue)> = Vec::new();
    for _ in 0..n {
        let (key, value) = random_cell(rng);
        store.put(&key, &value).expect("put");
        written.retain(|(k, _)| *k != key);
        written.push((key, value));
    }
    written
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Insert random cells, reopen the directory, everything reads back
    /// bit-identically (including across duplicate-key overwrites).
    #[test]
    fn insert_reopen_round_trips(seed in any::<u64>(), n in 1usize..40) {
        let dir = scratch("roundtrip", seed ^ n as u64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let written = {
            let store = ResultStore::open(&dir).expect("open");
            fill(&store, &mut rng, n)
        };
        let reopened = ResultStore::open(&dir).expect("reopen");
        prop_assert_eq!(reopened.shards_rebuilt(), 0);
        prop_assert_eq!(reopened.records_recovered(), 0);
        prop_assert_eq!(reopened.len(), written.len());
        for (key, value) in &written {
            prop_assert_eq!(reopened.get(key).as_ref(), Some(value));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Chop random byte counts off shard tails (a crash mid-append):
    /// the store reopens, surviving cells are bit-identical, lost cells
    /// read as None, and the store accepts appends again afterwards.
    #[test]
    fn truncated_tail_recovers_cleanly(seed in any::<u64>(), n in 4usize..32, chop in 1usize..64) {
        let dir = scratch("truncate", seed ^ (n as u64) << 8 ^ chop as u64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let written = {
            let store = ResultStore::open(&dir).expect("open");
            fill(&store, &mut rng, n)
        };
        // Truncate every non-empty shard's tail by `chop` bytes (capped
        // so the header survives; header damage is the rebuild test).
        for entry in fs::read_dir(&dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            let len = fs::metadata(&path).expect("meta").len() as usize;
            if len > 20 {
                let keep = len - chop.min(len - 20);
                let bytes = fs::read(&path).expect("read");
                fs::write(&path, &bytes[..keep]).expect("write");
            }
        }
        let reopened = ResultStore::open(&dir).expect("reopen after truncation");
        prop_assert_eq!(reopened.shards_rebuilt(), 0);
        let mut survivors = 0usize;
        for (key, value) in &written {
            if let Some(got) = reopened.get(key) {
                prop_assert_eq!(&got, value, "survivor must be bit-identical");
                survivors += 1;
            }
        }
        prop_assert!(survivors <= written.len());
        // The truncated store still accepts and serves new cells.
        let (key, value) = random_cell(&mut rng);
        reopened.put(&key, &value).expect("put after recovery");
        prop_assert_eq!(reopened.get(&key), Some(value));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flip a random byte in one shard's record region: the store must
    /// never serve a wrong value — every key reads back either its
    /// original value or nothing.
    #[test]
    fn corrupt_record_never_serves_wrong_data(seed in any::<u64>(), n in 4usize..32) {
        let dir = scratch("corrupt", seed ^ (n as u64) << 16);
        let mut rng = SmallRng::seed_from_u64(seed);
        let written = {
            let store = ResultStore::open(&dir).expect("open");
            fill(&store, &mut rng, n)
        };
        // Pick the fullest shard and flip one byte past its header.
        let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
            .expect("read_dir")
            .map(|e| e.expect("entry").path())
            .collect();
        paths.sort();
        let target = paths
            .iter()
            .max_by_key(|p| fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .expect("at least one shard")
            .clone();
        let mut bytes = fs::read(&target).expect("read");
        if bytes.len() > 20 {
            let idx = rng.gen_range(20..bytes.len());
            bytes[idx] ^= 0x40;
            fs::write(&target, &bytes).expect("write");
        }
        let reopened = ResultStore::open(&dir).expect("reopen after corruption");
        for (key, value) in &written {
            if let Some(got) = reopened.get(key) {
                prop_assert_eq!(&got, value, "corruption must never alias to a wrong value");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A shard whose header carries a different format version is discarded
/// and rebuilt empty — stale caches must invalidate, not masquerade.
#[test]
fn version_mismatch_rebuilds_shard() {
    let dir = scratch("version", 0);
    let mut rng = SmallRng::seed_from_u64(7);
    let written = {
        let store = ResultStore::open(&dir).expect("open");
        fill(&store, &mut rng, 24)
    };
    // Bump the store-version field of shard 3's header.
    let path = dir.join("shard-03.seg");
    let mut bytes = fs::read(&path).expect("read shard");
    bytes[8] ^= 0xFF;
    fs::write(&path, &bytes).expect("write shard");

    let reopened = ResultStore::open(&dir).expect("reopen");
    assert_eq!(reopened.shards_rebuilt(), 1);
    // Every surviving cell is intact; the rebuilt shard's cells are
    // gone but nothing is wrong.
    let mut lost = 0usize;
    for (key, value) in &written {
        match reopened.get(key) {
            Some(got) => assert_eq!(&got, value),
            None => lost += 1,
        }
    }
    assert!(lost < written.len(), "only one shard of eight was rebuilt");
    // The rebuilt shard works again.
    let (key, value) = random_cell(&mut rng);
    reopened.put(&key, &value).expect("put after rebuild");
    assert_eq!(reopened.get(&key), Some(value));
    let _ = fs::remove_dir_all(&dir);
}

/// Garbage that happens to start with a plausible length prefix is
/// rejected by the checksum, not decoded.
#[test]
fn appended_garbage_is_dropped() {
    let dir = scratch("garbage", 0);
    let mut rng = SmallRng::seed_from_u64(11);
    let written = {
        let store = ResultStore::open(&dir).expect("open");
        fill(&store, &mut rng, 8)
    };
    for entry in fs::read_dir(&dir).expect("read_dir") {
        let path = entry.expect("entry").path();
        let mut bytes = fs::read(&path).expect("read");
        // Plausible 32-byte record frame with a bogus checksum.
        bytes.extend_from_slice(&32u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 40]);
        fs::write(&path, &bytes).expect("write");
    }
    let reopened = ResultStore::open(&dir).expect("reopen");
    assert_eq!(reopened.len(), written.len());
    for (key, value) in &written {
        assert_eq!(reopened.get(key).as_ref(), Some(value));
    }
    let _ = fs::remove_dir_all(&dir);
}
