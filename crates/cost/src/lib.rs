//! The Register Bit Equivalent (RBE) area-cost model of paper Table 2.
//!
//! Mulder's RBE model (the paper's reference 11) normalises the area of microarchitectural
//! components to the area of a one-bit static latch (≈16 transistors /
//! 3600 µm² in the target GaAs DCFL process). The paper's Table 2 costs,
//! transcribed here, price every structure the study varies. The external
//! data cache is explicitly *excluded*: die-size limits placed it on
//! separate chips (§4.2).
//!
//! ```
//! use aurora_core::{IssueWidth, MachineModel};
//! use aurora_cost::{machine_cost, Rbe};
//! use aurora_mem::LatencyModel;
//!
//! let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
//! let cost = machine_cost(&cfg);
//! // The second pipeline alone is 8192 RBE (§5.1).
//! let single = MachineModel::Baseline.config(IssueWidth::Single, LatencyModel::Fixed(17));
//! assert_eq!(cost - machine_cost(&single), Rbe(8192));
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use aurora_core::{FpuConfig, IssueWidth, MachineConfig};

/// An area in register-bit equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rbe(pub u64);

impl Rbe {
    /// The value as a float, convenient for plotting.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Rbe {
    type Output = Rbe;

    fn add(self, rhs: Rbe) -> Rbe {
        Rbe(self.0 + rhs.0)
    }
}

impl AddAssign for Rbe {
    fn add_assign(&mut self, rhs: Rbe) {
        self.0 += rhs.0;
    }
}

impl Sub for Rbe {
    type Output = Rbe;

    fn sub(self, rhs: Rbe) -> Rbe {
        Rbe(self.0 - rhs.0)
    }
}

impl fmt::Display for Rbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} RBE", self.0)
    }
}

/// Cost of one integer execution pipeline (Table 2).
pub const INTEGER_PIPELINE: Rbe = Rbe(8192);
/// Cost of one write-cache line (Table 2).
pub const WRITE_CACHE_LINE: Rbe = Rbe(320);
/// Cost of one prefetch line (Table 2).
pub const PREFETCH_LINE: Rbe = Rbe(320);
/// Cost of one reorder-buffer entry (Table 2).
pub const ROB_ENTRY: Rbe = Rbe(200);
/// Cost of one MSHR entry (Table 2).
pub const MSHR_ENTRY: Rbe = Rbe(50);
/// Cost of the FPU data resources — register file and scoreboard (Table 2).
pub const FPU_DATA_BLOCK: Rbe = Rbe(4000);
/// Cost of one FPU instruction-queue entry (Table 2).
pub const FPU_INSTR_QUEUE_ENTRY: Rbe = Rbe(50);
/// Cost of one FPU data-queue (load/store) entry (Table 2).
pub const FPU_DATA_QUEUE_ENTRY: Rbe = Rbe(80);

/// Instruction-cache block cost (Table 2: 8 000 / 12 000 / 20 000 RBE for
/// 1 / 2 / 4 KB — sub-linear because decode/sense overhead amortises).
///
/// # Panics
///
/// Panics for sizes other than 1, 2 or 4 KB; the paper prices only these.
pub fn icache_cost(bytes: u32) -> Rbe {
    match bytes {
        1024 => Rbe(8_000),
        2048 => Rbe(12_000),
        4096 => Rbe(20_000),
        other => panic!("Table 2 prices 1/2/4 KB instruction caches, not {other} bytes"),
    }
}

/// Linearly interpolates a Table 2 latency-dependent unit cost: the paper
/// gives the cost at the fastest and slowest latency of each range (more
/// pipeline/parallel hardware buys lower latency).
fn unit_cost(latency: u32, lat_lo: u32, lat_hi: u32, cost_at_lo: u64, cost_at_hi: u64) -> Rbe {
    assert!(
        (lat_lo..=lat_hi).contains(&latency),
        "latency {latency} outside Table 2 range {lat_lo}..={lat_hi}"
    );
    let span = (lat_hi - lat_lo) as f64;
    let frac = (latency - lat_lo) as f64 / span;
    let cost = cost_at_lo as f64 + frac * (cost_at_hi as f64 - cost_at_lo as f64);
    Rbe(cost.round() as u64)
}

/// FPU add-unit cost: 1–5 cycles ↔ 5 000–1 250 RBE.
pub fn add_unit_cost(latency: u32) -> Rbe {
    unit_cost(latency, 1, 5, 5_000, 1_250)
}

/// FPU multiply-unit cost: 1–5 cycles ↔ 6 875–2 500 RBE.
pub fn multiply_unit_cost(latency: u32) -> Rbe {
    unit_cost(latency, 1, 5, 6_875, 2_500)
}

/// FPU divide-unit cost: 10–30 cycles ↔ 2 500–625 RBE.
pub fn divide_unit_cost(latency: u32) -> Rbe {
    unit_cost(latency, 10, 30, 2_500, 625)
}

/// FPU conversion-unit cost: 1–5 cycles ↔ 2 500–1 250 RBE.
pub fn convert_unit_cost(latency: u32) -> Rbe {
    unit_cost(latency, 1, 5, 2_500, 1_250)
}

/// Total IPU cost of a machine configuration: instruction cache, write
/// cache, prefetch lines, reorder buffer, MSHRs and execution pipelines.
/// The external data cache is excluded per §4.2.
pub fn ipu_cost(cfg: &MachineConfig) -> Rbe {
    let mut total = icache_cost(cfg.icache_bytes);
    total += Rbe(WRITE_CACHE_LINE.0 * cfg.write_cache_lines as u64);
    if cfg.prefetch_enabled {
        let lines = (cfg.prefetch_buffers * cfg.prefetch_depth) as u64;
        total += Rbe(PREFETCH_LINE.0 * lines);
    }
    total += Rbe(ROB_ENTRY.0 * cfg.rob_entries as u64);
    total += Rbe(MSHR_ENTRY.0 * cfg.mshr_entries as u64);
    let pipes = match cfg.issue_width {
        IssueWidth::Single => 1,
        IssueWidth::Dual => 2,
    };
    total += Rbe(INTEGER_PIPELINE.0 * pipes);
    total
}

/// Total FPU cost: data resources, queues and latency-priced units.
pub fn fpu_cost(fpu: &FpuConfig) -> Rbe {
    let mut total = FPU_DATA_BLOCK;
    total += Rbe(FPU_INSTR_QUEUE_ENTRY.0 * fpu.instr_queue as u64);
    total += Rbe(FPU_DATA_QUEUE_ENTRY.0 * (fpu.load_queue + fpu.store_queue) as u64);
    total += add_unit_cost(fpu.add_latency);
    total += multiply_unit_cost(fpu.mul_latency);
    total += divide_unit_cost(fpu.div_latency);
    total += convert_unit_cost(fpu.cvt_latency);
    total += Rbe(ROB_ENTRY.0 * fpu.rob_entries as u64);
    total
}

/// IPU cost of the machine (the cost axis of Figures 4, 5, 7 and 8).
pub fn machine_cost(cfg: &MachineConfig) -> Rbe {
    ipu_cost(cfg)
}

/// Complete system cost (IPU + FPU), for FPU-inclusive studies.
pub fn system_cost(cfg: &MachineConfig) -> Rbe {
    ipu_cost(cfg) + fpu_cost(&cfg.fpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::MachineModel;
    use aurora_mem::LatencyModel;

    fn model(m: MachineModel, w: IssueWidth) -> MachineConfig {
        m.config(w, LatencyModel::Fixed(17))
    }

    #[test]
    fn icache_table2_values() {
        assert_eq!(icache_cost(1024), Rbe(8_000));
        assert_eq!(icache_cost(2048), Rbe(12_000));
        assert_eq!(icache_cost(4096), Rbe(20_000));
    }

    #[test]
    #[should_panic(expected = "Table 2")]
    fn unpriced_icache_size_panics() {
        icache_cost(8192);
    }

    #[test]
    fn unit_cost_endpoints_match_table2() {
        assert_eq!(add_unit_cost(1), Rbe(5_000));
        assert_eq!(add_unit_cost(5), Rbe(1_250));
        assert_eq!(multiply_unit_cost(1), Rbe(6_875));
        assert_eq!(multiply_unit_cost(5), Rbe(2_500));
        assert_eq!(divide_unit_cost(10), Rbe(2_500));
        assert_eq!(divide_unit_cost(30), Rbe(625));
        assert_eq!(convert_unit_cost(1), Rbe(2_500));
        assert_eq!(convert_unit_cost(5), Rbe(1_250));
    }

    #[test]
    fn unit_cost_is_monotone_decreasing() {
        for l in 1..5 {
            assert!(add_unit_cost(l) > add_unit_cost(l + 1));
            assert!(multiply_unit_cost(l) > multiply_unit_cost(l + 1));
            assert!(convert_unit_cost(l) > convert_unit_cost(l + 1));
        }
        for l in 10..30 {
            assert!(divide_unit_cost(l) >= divide_unit_cost(l + 1));
        }
    }

    #[test]
    #[should_panic(expected = "outside Table 2 range")]
    fn out_of_range_latency_panics() {
        add_unit_cost(6);
    }

    #[test]
    fn second_pipeline_costs_8192() {
        for m in MachineModel::ALL {
            let dual = ipu_cost(&model(m, IssueWidth::Dual));
            let single = ipu_cost(&model(m, IssueWidth::Single));
            assert_eq!(dual - single, INTEGER_PIPELINE);
        }
    }

    #[test]
    fn second_pipe_on_large_model_costs_about_20_percent() {
        // §5.1: "the large model with dual issue achieves the best
        // performance by 12.7%, but with a hardware cost increase of
        // 20.4%" — the 8192-RBE second pipeline over the large model.
        let single = ipu_cost(&model(MachineModel::Large, IssueWidth::Single)).as_f64();
        let increase = INTEGER_PIPELINE.as_f64() / single;
        assert!(
            (0.18..0.23).contains(&increase),
            "second pipe: {:.1}%",
            100.0 * increase
        );
    }

    #[test]
    fn model_costs_are_ordered() {
        let s = ipu_cost(&model(MachineModel::Small, IssueWidth::Single));
        let b = ipu_cost(&model(MachineModel::Baseline, IssueWidth::Single));
        let l = ipu_cost(&model(MachineModel::Large, IssueWidth::Single));
        assert!(s < b && b < l);
        // §5.1: the single-issue base model has cost similar to the dual
        // small model.
        let dual_small = ipu_cost(&model(MachineModel::Small, IssueWidth::Dual));
        let ratio = b.as_f64() / dual_small.as_f64();
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefetch_removal_reduces_cost_by_line_count() {
        let with = model(MachineModel::Baseline, IssueWidth::Dual);
        let mut without = with.clone();
        without.prefetch_enabled = false;
        let diff = ipu_cost(&with) - ipu_cost(&without);
        assert_eq!(diff, Rbe(320 * 4 * 3)); // 4 buffers x 3 lines
    }

    #[test]
    fn baseline_prefetch_is_modest_fraction_of_icache() {
        // §5.2: "for the baseline configuration, the prefetch buffers are
        // only 20% of the instruction cache size" (by bytes; by RBE the
        // ratio is larger since SRAM is denser than buffers).
        let cfg = model(MachineModel::Baseline, IssueWidth::Dual);
        let buffer_bytes = cfg.prefetch_buffers * cfg.prefetch_depth * cfg.line_bytes as usize;
        let frac = buffer_bytes as f64 / cfg.icache_bytes as f64;
        assert!((0.15..=0.30).contains(&frac), "byte fraction {frac}");
    }

    #[test]
    fn recommended_fpu_cost_is_reasonable() {
        let fpu = FpuConfig::recommended();
        let c = fpu_cost(&fpu);
        // 4000 + 5*50 + 5*80 + add(3)=3125 + mul(5)=2500 + div(19)=1656
        // + cvt(2)=2188 + rob 6*200 = 15419ish
        assert!((14_000..17_000).contains(&c.0), "{c}");
        let sys = system_cost(&model(MachineModel::Baseline, IssueWidth::Dual));
        assert!(sys > machine_cost(&model(MachineModel::Baseline, IssueWidth::Dual)));
    }

    #[test]
    fn rbe_arithmetic_and_display() {
        let a = Rbe(100) + Rbe(50);
        assert_eq!(a, Rbe(150));
        let mut b = a;
        b += Rbe(10);
        assert_eq!(b - a, Rbe(10));
        assert_eq!(a.to_string(), "150 RBE");
        assert_eq!(a.as_f64(), 150.0);
    }
}
