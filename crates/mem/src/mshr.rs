//! Miss Status Holding Registers — the non-blocking cache bound (§2.3).
//!
//! An MSHR is reserved for each outstanding data-cache miss. When no MSHR
//! is free the processor stalls until one is. A machine with a single
//! MSHR cannot overlap memory operations at all, which §5.4 and Figure 7
//! show to be the single largest performance lever for small machines.

use std::fmt;

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::addr::LineAddr;

/// Counters for the MSHR file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses that allocated a new entry.
    pub allocations: u64,
    /// Secondary misses merged into an existing entry for the same line.
    pub merges: u64,
    /// Requests that found the file full and had to stall.
    pub full_stalls: u64,
    /// Peak number of simultaneously live entries.
    pub peak_occupancy: u32,
}

impl fmt::Display for MshrStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocations, {} merges, {} full stalls, peak {}",
            self.allocations, self.merges, self.full_stalls, self.peak_occupancy
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: LineAddr,
    ready_at: u64,
}

/// A file of Miss Status Holding Registers.
///
/// ```
/// use aurora_mem::{LineAddr, MshrFile};
///
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.allocate(LineAddr(7), 100).is_some());
/// // A second miss to the same line merges instead of allocating.
/// assert_eq!(mshrs.lookup(LineAddr(7)), Some(100));
/// assert!(mshrs.allocate(LineAddr(8), 120).is_some());
/// // Full: a third distinct line cannot be tracked until one completes.
/// assert!(mshrs.allocate(LineAddr(9), 130).is_none());
/// mshrs.expire(105); // line 7's fill arrived
/// assert!(mshrs.allocate(LineAddr(9), 130).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    /// Earliest `ready_at` among live entries (`u64::MAX` when empty).
    /// Lets [`MshrFile::expire`] bail out with one comparison on the
    /// simulator's hot path instead of scanning the file every call.
    next_ready: u64,
    stats: MshrStats,
}

impl MshrFile {
    /// Creates a file of `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (every machine has at least one; a
    /// single register is exactly the blocking-cache configuration).
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0);
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            next_ready: u64::MAX,
            stats: MshrStats::default(),
        }
    }

    /// Number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// If `line` is already being fetched, returns the cycle its fill
    /// completes (a secondary miss merges; no new register is used).
    pub fn lookup(&mut self, line: LineAddr) -> Option<u64> {
        let hit = self.probe(line);
        if hit.is_some() {
            self.stats.merges += 1;
        }
        hit
    }

    /// Like [`MshrFile::lookup`] but non-consuming and side-effect free:
    /// no merge is counted. This is the issue-stage peek — "could this op
    /// ride an outstanding fill?" — asked before the op actually issues.
    pub fn probe(&self, line: LineAddr) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.ready_at)
    }

    /// Tries to allocate a register for a primary miss on `line` whose
    /// fill completes at `ready_at`. Returns `None` (and counts a stall)
    /// when the file is full.
    pub fn allocate(&mut self, line: LineAddr, ready_at: u64) -> Option<()> {
        if self.entries.len() == self.capacity {
            self.stats.full_stalls += 1;
            return None;
        }
        self.entries.push(Entry { line, ready_at });
        self.next_ready = self.next_ready.min(ready_at);
        self.stats.allocations += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len() as u32);
        Some(())
    }

    /// Releases every entry whose fill has completed by `now`. O(1) when
    /// nothing has completed yet (the common case on the issue path).
    pub fn expire(&mut self, now: u64) {
        if now < self.next_ready {
            return;
        }
        self.entries.retain(|e| e.ready_at > now);
        self.next_ready = self
            .entries
            .iter()
            .map(|e| e.ready_at)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// The earliest cycle at which any entry completes, if any are live.
    /// When the file is full, this is when the stalled requester can retry.
    pub fn earliest_completion(&self) -> Option<u64> {
        (self.next_ready != u64::MAX).then_some(self.next_ready)
    }

    /// The next cycle at which this unit's observable state can change —
    /// the earliest outstanding fill return, if any. Part of the
    /// event-horizon protocol: a simulator may skip straight over any
    /// cycle range that ends before every unit's reported event.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.earliest_completion()
    }

    /// Whether a new primary miss can be accepted right now.
    pub fn has_free(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Resets statistics (keeps live entries).
    pub fn reset_stats(&mut self) {
        self.stats = MshrStats::default();
    }
}

impl Snapshot for MshrStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.allocations);
        w.put_u64(self.merges);
        w.put_u64(self.full_stalls);
        w.put_u32(self.peak_occupancy);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.allocations = r.u64()?;
        self.merges = r.u64()?;
        self.full_stalls = r.u64()?;
        self.peak_occupancy = r.u32()?;
        Ok(())
    }
}

impl Snapshot for MshrFile {
    /// Live entries plus the `next_ready` acceleration value and counters;
    /// capacity is configuration and acts as a restore cross-check.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"MSHR");
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.line.0);
            w.put_u64(e.ready_at);
        }
        w.put_u64(self.next_ready);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"MSHR")?;
        let n = r.len(self.capacity)?;
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(Entry {
                line: LineAddr(r.u64()?),
                ready_at: r.u64()?,
            });
        }
        self.next_ready = r.u64()?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_mshr_blocks() {
        let mut m = MshrFile::new(1);
        assert!(m.allocate(LineAddr(1), 50).is_some());
        assert!(m.allocate(LineAddr(2), 60).is_none());
        assert_eq!(m.stats().full_stalls, 1);
        assert_eq!(m.earliest_completion(), Some(50));
        m.expire(50);
        assert!(m.allocate(LineAddr(2), 60).is_some());
    }

    #[test]
    fn merges_do_not_consume_registers() {
        let mut m = MshrFile::new(1);
        m.allocate(LineAddr(1), 50).unwrap();
        assert_eq!(m.lookup(LineAddr(1)), Some(50));
        assert_eq!(m.lookup(LineAddr(1)), Some(50));
        assert_eq!(m.stats().merges, 2);
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn expire_only_releases_completed() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr(1), 10).unwrap();
        m.allocate(LineAddr(2), 20).unwrap();
        m.expire(15);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.lookup(LineAddr(2)), Some(20));
        assert_eq!(m.lookup(LineAddr(1)), None);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut m = MshrFile::new(2);
        m.allocate(LineAddr(3), 40).unwrap();
        assert_eq!(m.probe(LineAddr(3)), Some(40));
        assert_eq!(m.probe(LineAddr(3)), Some(40));
        assert_eq!(m.probe(LineAddr(9)), None);
        assert_eq!(m.stats().merges, 0, "probe must not count merges");
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn expire_early_out_keeps_earliest_exact() {
        let mut m = MshrFile::new(4);
        m.allocate(LineAddr(1), 30).unwrap();
        m.allocate(LineAddr(2), 10).unwrap();
        assert_eq!(m.next_event_cycle(), Some(10));
        m.expire(5); // nothing completes: early-out path
        assert_eq!(m.occupancy(), 2);
        m.expire(10);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.next_event_cycle(), Some(30));
        m.expire(30);
        assert_eq!(m.next_event_cycle(), None);
    }

    #[test]
    fn peak_occupancy_tracks_overlap() {
        let mut m = MshrFile::new(4);
        for i in 0..4 {
            m.allocate(LineAddr(i), 100 + i).unwrap();
        }
        assert_eq!(m.stats().peak_occupancy, 4);
    }

    proptest! {
        /// Occupancy never exceeds capacity, and allocations minus expiries
        /// always equals live occupancy.
        #[test]
        fn occupancy_invariant(
            ops in proptest::collection::vec((0u64..32, 1u64..100), 1..200),
            cap in 1usize..5,
        ) {
            let mut m = MshrFile::new(cap);
            let mut now = 0u64;
            for (line, dur) in ops {
                now += 1;
                m.expire(now);
                if m.lookup(LineAddr(line)).is_none() {
                    let _ = m.allocate(LineAddr(line), now + dur);
                }
                prop_assert!(m.occupancy() <= cap);
            }
        }
    }
}
