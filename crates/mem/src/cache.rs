//! Tags-only direct-mapped cache model.

use std::fmt;

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::addr::{Geometry, LineAddr};

/// Hit/miss counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total probes.
    pub accesses: u64,
    /// Probes that found their line resident.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Fills that displaced a valid line with a different tag.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits ({:.2}%), {} evictions",
            self.accesses,
            self.hits,
            100.0 * self.hit_rate(),
            self.evictions
        )
    }
}

/// A direct-mapped, tags-only cache.
///
/// Models residency and statistics; data contents live in the functional
/// emulator. Used both for the on-chip instruction cache (1–4 KB) and the
/// external pipelined data cache (16–64 KB) of Table 1.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct DirectMappedCache {
    geom: Geometry,
    tags: Vec<Option<u64>>,
    stats: CacheStats,
}

impl DirectMappedCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geom: Geometry) -> DirectMappedCache {
        DirectMappedCache {
            geom,
            tags: vec![None; geom.num_lines() as usize],
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// Probes byte address `addr`, recording a hit or miss.
    pub fn probe(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let hit = self.contains(addr);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Credits `n` pre-verified hits in one step — equivalent to `n`
    /// [`probe`](Self::probe) calls on addresses the caller has already
    /// checked resident (direct-mapped lookups have no replacement
    /// state, so a hitting probe only moves the counters). Used by the
    /// batched replay engine to collapse per-op probes.
    pub fn credit_hits(&mut self, n: u64) {
        self.stats.accesses += n;
        self.stats.hits += n;
    }

    /// Whether the line holding `addr` is resident (no stats recorded).
    pub fn contains(&self, addr: u64) -> bool {
        self.tags.get(self.geom.index(addr)).copied().flatten() == Some(self.geom.tag(addr))
    }

    /// Whether `line` is resident (no stats recorded).
    pub fn contains_line(&self, line: LineAddr) -> bool {
        let addr = line.to_bytes(self.geom.line_bytes());
        self.contains(addr)
    }

    /// Installs the line holding `addr`, returning `true` if a valid line
    /// with a different tag was displaced.
    pub fn fill(&mut self, addr: u64) -> bool {
        let idx = self.geom.index(addr);
        let tag = self.geom.tag(addr);
        // The geometry masks indices into range, so the slot always exists.
        let Some(slot) = self.tags.get_mut(idx) else {
            return false;
        };
        let evicted = matches!(*slot, Some(t) if t != tag);
        if evicted {
            self.stats.evictions += 1;
        }
        *slot = Some(tag);
        evicted
    }

    /// Installs `line` (see [`DirectMappedCache::fill`]).
    pub fn fill_line(&mut self, line: LineAddr) -> bool {
        self.fill(line.to_bytes(self.geom.line_bytes()))
    }

    /// Invalidates everything.
    pub fn clear(&mut self) {
        self.tags.fill(None);
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (keeps contents; used to exclude warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Snapshot for CacheStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.accesses);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.evictions);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.accesses = r.u64()?;
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.evictions = r.u64()?;
        Ok(())
    }
}

impl Snapshot for DirectMappedCache {
    /// Geometry is configuration, not state: only the tag array and the
    /// counters are recorded, and a restore into a cache with a different
    /// line count fails as corruption.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"CACH");
        w.put_len(self.tags.len());
        for &tag in &self.tags {
            w.put_opt_u64(tag);
        }
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"CACH")?;
        let n = r.len(self.tags.len())?;
        if n != self.tags.len() {
            return Err(SnapshotError::Corrupt("cache line count mismatch"));
        }
        for slot in self.tags.iter_mut() {
            *slot = r.opt_u64()?;
        }
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn cache(kb: u32) -> DirectMappedCache {
        DirectMappedCache::new(Geometry::new(kb * 1024, 32))
    }

    #[test]
    fn fill_then_hit() {
        let mut c = cache(1);
        assert!(!c.probe(0x1000));
        c.fill(0x1000);
        assert!(c.probe(0x1000));
        assert!(c.probe(0x101f)); // same 32-byte line
        assert!(!c.probe(0x1020)); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = cache(1); // 32 lines; addresses 1024 apart conflict
        c.fill(0x0);
        assert!(c.contains(0x0));
        let evicted = c.fill(1024);
        assert!(evicted);
        assert!(!c.contains(0x0));
        assert!(c.contains(1024));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refill_same_line_is_not_eviction() {
        let mut c = cache(1);
        c.fill(0x40);
        assert!(!c.fill(0x40));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = cache(1);
        c.fill(0x40);
        c.clear();
        assert!(!c.contains(0x40));
    }

    #[test]
    fn larger_cache_is_no_worse_on_any_trace() {
        // Monotonicity spot check: a 4 KB cache never misses more than a
        // 1 KB cache on the same sequence of probes+fill-on-miss.
        let addrs: Vec<u64> = (0..4000u64).map(|i| (i * 937) % 8192).collect();
        let mut misses = Vec::new();
        for kb in [1, 4] {
            let mut c = cache(kb);
            for &a in &addrs {
                if !c.probe(a) {
                    c.fill(a);
                }
            }
            misses.push(c.stats().misses);
        }
        assert!(misses[1] <= misses[0], "{misses:?}");
    }

    proptest! {
        /// The cache agrees with a reference model that maps each index to
        /// the most recently filled tag.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((any::<bool>(), 0u64..1 << 20), 1..200)) {
            let g = Geometry::new(2048, 32);
            let mut c = DirectMappedCache::new(g);
            let mut reference: HashMap<usize, u64> = HashMap::new();
            for (is_fill, addr) in ops {
                if is_fill {
                    c.fill(addr);
                    reference.insert(g.index(addr), g.tag(addr));
                } else {
                    let expect = reference.get(&g.index(addr)) == Some(&g.tag(addr));
                    prop_assert_eq!(c.probe(addr), expect);
                }
            }
        }

        /// hits + misses == accesses always.
        #[test]
        fn stats_balance(addrs in proptest::collection::vec(0u64..1 << 16, 0..100)) {
            let mut c = cache(1);
            for a in addrs {
                if !c.probe(a) {
                    c.fill(a);
                }
            }
            let s = c.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
        }
    }
}
