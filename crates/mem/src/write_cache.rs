//! The coalescing write cache and its micro-TLB write validation (§2.3).
//!
//! The write cache groups multiple stores into a single BIU transaction.
//! It is organised as a small number of fully-associative lines of eight
//! words with per-word valid bits. Because the MMU is off chip, a store
//! can only retire once its page is known to be writable; the write cache
//! doubles as a micro-TLB: a store whose page field matches any valid
//! line's page field needs no MMU round trip.

use std::fmt;

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::addr::{Geometry, LineAddr};

/// Words per write-cache line (8 words × 4 bytes = 32-byte lines, §2.3).
pub const WORDS_PER_LINE: u32 = 8;

/// Page size used for the page-field micro-TLB match.
pub const PAGE_BYTES: u64 = 4096;

/// Result of presenting a store to the write cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutcome {
    /// The store coalesced into an already-valid line.
    pub hit: bool,
    /// A line had to be evicted to make room (one BIU store transaction).
    pub evicted: Option<LineAddr>,
    /// No valid line shared the store's page field, so the MMU must be
    /// queried before the store can be considered retired.
    pub needs_validation: bool,
}

/// Counters for the write cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteCacheStats {
    /// Store instructions presented.
    pub store_accesses: u64,
    /// Stores that coalesced into a resident line.
    pub store_hits: u64,
    /// Load probes presented.
    pub load_accesses: u64,
    /// Load probes that found their word valid in the write cache.
    pub load_hits: u64,
    /// Lines sent to the BIU (evictions plus flushes).
    pub store_transactions: u64,
    /// Stores that required an MMU validation round trip.
    pub validations: u64,
}

impl WriteCacheStats {
    /// Combined hit rate over loads *and* stores — the metric of paper
    /// Table 5 ("the hit rate includes both load and store data accesses").
    pub fn hit_rate(&self) -> f64 {
        let acc = self.store_accesses + self.load_accesses;
        if acc == 0 {
            0.0
        } else {
            (self.store_hits + self.load_hits) as f64 / acc as f64
        }
    }

    /// Store transactions as a fraction of store instructions — the §5.5
    /// write-traffic metric (0.44 / 0.30 / 0.22 for small/base/large).
    pub fn traffic_ratio(&self) -> f64 {
        if self.store_accesses == 0 {
            0.0
        } else {
            self.store_transactions as f64 / self.store_accesses as f64
        }
    }
}

impl fmt::Display for WriteCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stores ({} hits), {} loads ({} hits), {:.2}% hit rate, {} transactions ({:.0}% of stores)",
            self.store_accesses,
            self.store_hits,
            self.load_accesses,
            self.load_hits,
            100.0 * self.hit_rate(),
            self.store_transactions,
            100.0 * self.traffic_ratio()
        )
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    line: LineAddr,
    /// The line's page number, cached so the per-store micro-TLB scan is
    /// a plain compare instead of a byte-address reconstruction + divide.
    page: u64,
    /// Per-word valid bits (bit i = word i of the line).
    word_mask: u8,
    last_used: u64,
}

/// The coalescing write cache.
///
/// ```
/// use aurora_mem::WriteCache;
///
/// let mut wc = WriteCache::new(4);
/// let first = wc.store(0x1000, 4, 0);
/// assert!(!first.hit);
/// // The adjacent word coalesces into the same line: a hit, no traffic.
/// let second = wc.store(0x1004, 4, 1);
/// assert!(second.hit);
/// assert_eq!(wc.stats().store_transactions, 0);
/// ```
#[derive(Debug, Clone)]
pub struct WriteCache {
    lines: Vec<Line>,
    capacity: usize,
    geom: Geometry,
    clock: u64,
    stats: WriteCacheStats,
}

impl WriteCache {
    /// Creates a write cache of `lines` fully-associative 8-word lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(lines: usize) -> WriteCache {
        assert!(lines > 0);
        WriteCache {
            lines: Vec::with_capacity(lines),
            capacity: lines,
            geom: Geometry::new(WORDS_PER_LINE * 4 * 64, WORDS_PER_LINE * 4),
            clock: 0,
            stats: WriteCacheStats::default(),
        }
    }

    /// Number of lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// Presents a store of `bytes` bytes at `addr`.
    ///
    /// Returns whether it coalesced, whether a line was evicted to make
    /// room (a BIU transaction), and whether MMU write validation is
    /// needed (no resident line shared the page field).
    pub fn store(&mut self, addr: u64, bytes: u32, _now: u64) -> StoreOutcome {
        self.clock += 1;
        self.stats.store_accesses += 1;
        let line = self.geom.line(addr);
        let mask = word_mask(addr, bytes);
        let page = addr / PAGE_BYTES;
        let validated = self.lines.iter().any(|l| l.page == page);
        if !validated {
            self.stats.validations += 1;
        }

        if let Some(existing) = self.lines.iter_mut().find(|l| l.line == line) {
            existing.word_mask |= mask;
            existing.last_used = self.clock;
            self.stats.store_hits += 1;
            return StoreOutcome {
                hit: true,
                evicted: None,
                needs_validation: !validated,
            };
        }

        let evicted = if self.lines.len() == self.capacity {
            // At capacity the line vector is non-empty (capacity >= 1), so
            // an LRU victim always exists.
            let lru = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i);
            lru.map(|i| {
                let victim = self.lines.remove(i);
                self.stats.store_transactions += 1;
                victim.line
            })
        } else {
            None
        };
        self.lines.push(Line {
            line,
            page,
            word_mask: mask,
            last_used: self.clock,
        });
        StoreOutcome {
            hit: false,
            evicted,
            needs_validation: !validated,
        }
    }

    /// [`WriteCache::store`] minus the outcome bookkeeping: no page
    /// validation scan (the answer is MMU/bus traffic — timing state)
    /// and no statistics, just the line occupancy, word masks and LRU
    /// order evolving exactly as `store` would evolve them. Functional
    /// warming uses this: the estimator only measures detailed windows,
    /// so outcome reporting during fast-forward is pure overhead.
    pub fn warm_store(&mut self, addr: u64, bytes: u32) {
        self.clock += 1;
        let line = self.geom.line(addr);
        let mask = word_mask(addr, bytes);
        let page = addr / PAGE_BYTES;
        if let Some(existing) = self.lines.iter_mut().find(|l| l.line == line) {
            existing.word_mask |= mask;
            existing.last_used = self.clock;
            return;
        }
        if self.lines.len() == self.capacity {
            if let Some(i) = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
            {
                self.lines.remove(i);
            }
        }
        self.lines.push(Line {
            line,
            page,
            word_mask: mask,
            last_used: self.clock,
        });
    }

    /// Whether a load of `bytes` bytes at `addr` would hit — the
    /// [`WriteCache::load_probe`] predicate with no statistics recorded.
    /// Functional warming uses this to decide fills without polluting
    /// the load counters.
    pub fn load_covers(&self, addr: u64, bytes: u32) -> bool {
        let line = self.geom.line(addr);
        let mask = word_mask(addr, bytes);
        self.lines
            .iter()
            .any(|l| l.line == line && l.word_mask & mask == mask)
    }

    /// Probes a load of `bytes` bytes at `addr`; hits when every word it
    /// reads is valid in a resident line.
    pub fn load_probe(&mut self, addr: u64, bytes: u32) -> bool {
        self.stats.load_accesses += 1;
        let line = self.geom.line(addr);
        let mask = word_mask(addr, bytes);
        let hit = self
            .lines
            .iter()
            .any(|l| l.line == line && l.word_mask & mask == mask);
        if hit {
            self.stats.load_hits += 1;
        }
        hit
    }

    /// Whether any resident line covers `addr`'s line (regardless of which
    /// words are valid). Used by the LSU to order loads behind stores.
    pub fn contains_line(&self, addr: u64) -> bool {
        let line = self.geom.line(addr);
        self.lines.iter().any(|l| l.line == line)
    }

    /// Drains every resident line, returning them oldest-first. Each line
    /// is one BIU store transaction.
    pub fn flush(&mut self) -> Vec<LineAddr> {
        self.lines.sort_by_key(|l| l.last_used);
        let drained: Vec<LineAddr> = self.lines.drain(..).map(|l| l.line).collect();
        self.stats.store_transactions += drained.len() as u64;
        drained
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WriteCacheStats {
        self.stats
    }

    /// Resets statistics (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = WriteCacheStats::default();
    }
}

impl Snapshot for WriteCacheStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.store_accesses);
        w.put_u64(self.store_hits);
        w.put_u64(self.load_accesses);
        w.put_u64(self.load_hits);
        w.put_u64(self.store_transactions);
        w.put_u64(self.validations);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.store_accesses = r.u64()?;
        self.store_hits = r.u64()?;
        self.load_accesses = r.u64()?;
        self.load_hits = r.u64()?;
        self.store_transactions = r.u64()?;
        self.validations = r.u64()?;
        Ok(())
    }
}

impl Snapshot for WriteCache {
    /// Capacity and geometry are configuration; the valid lines (with
    /// their LRU stamps), the LRU clock and the counters are state.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"WCAC");
        w.put_len(self.lines.len());
        for line in &self.lines {
            w.put_u64(line.line.0);
            w.put_u64(line.page);
            w.put_u8(line.word_mask);
            w.put_u64(line.last_used);
        }
        w.put_u64(self.clock);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"WCAC")?;
        let n = r.len(self.capacity)?;
        self.lines.clear();
        for _ in 0..n {
            self.lines.push(Line {
                line: LineAddr(r.u64()?),
                page: r.u64()?,
                word_mask: r.u8()?,
                last_used: r.u64()?,
            });
        }
        self.clock = r.u64()?;
        self.stats.restore(r)
    }
}

/// Bitmask of the words in a line touched by an access.
fn word_mask(addr: u64, bytes: u32) -> u8 {
    let first = ((addr >> 2) & (WORDS_PER_LINE as u64 - 1)) as u32;
    let words = bytes.div_ceil(4).max(1);
    // Words past the line end fall off the top in the u8 truncation,
    // matching the bounds check the loop form used to perform.
    ((((1u32 << words) - 1) << first) & 0xff) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coalescing_inner_loop_index() {
        // Repeated writes to the same address (loop index) hit after the
        // first — the first pattern §2.3 calls out.
        let mut wc = WriteCache::new(4);
        assert!(!wc.store(0x2000, 4, 0).hit);
        for i in 1..10 {
            assert!(wc.store(0x2000, 4, i).hit);
        }
        let s = wc.stats();
        assert_eq!(s.store_hits, 9);
        assert_eq!(s.store_transactions, 0);
    }

    #[test]
    fn vector_stores_one_transaction_per_eight_words() {
        // Sequential vector-like writes: 8 words per line, one transaction
        // per line on eviction — the second pattern §2.3 calls out.
        let mut wc = WriteCache::new(4);
        for w in 0..64u64 {
            wc.store(0x4000 + w * 4, 4, w);
        }
        let drained = wc.flush();
        let s = wc.stats();
        // 64 stores, 8 lines total: 4 evictions + 4 flushed.
        assert_eq!(s.store_accesses, 64);
        assert_eq!(s.store_hits, 64 - 8);
        assert_eq!(s.store_transactions, 8);
        assert_eq!(drained.len(), 4);
        assert!(s.traffic_ratio() < 0.2);
    }

    #[test]
    fn eviction_is_lru() {
        let mut wc = WriteCache::new(2);
        wc.store(0x1000, 4, 0); // A
        wc.store(0x2000, 4, 1); // B
        wc.store(0x1004, 4, 2); // touch A
        let out = wc.store(0x3000, 4, 3); // evicts B
        assert_eq!(out.evicted, Some(Geometry::new(64, 32).line(0x2000)));
    }

    #[test]
    fn load_probe_requires_valid_words() {
        let mut wc = WriteCache::new(2);
        wc.store(0x1000, 4, 0);
        assert!(wc.load_probe(0x1000, 4));
        assert!(!wc.load_probe(0x1004, 4), "adjacent word not written");
        assert!(wc.contains_line(0x1004), "but the line is resident");
        assert!(!wc.load_probe(0x5000, 4));
        assert_eq!(wc.stats().load_accesses, 3);
        assert_eq!(wc.stats().load_hits, 1);
    }

    #[test]
    fn double_word_store_sets_two_words() {
        let mut wc = WriteCache::new(2);
        wc.store(0x1000, 8, 0); // sdc1
        assert!(wc.load_probe(0x1000, 4));
        assert!(wc.load_probe(0x1004, 4));
    }

    #[test]
    fn micro_tlb_validation() {
        let mut wc = WriteCache::new(4);
        // First store to a page: needs validation.
        assert!(wc.store(0x1000, 4, 0).needs_validation);
        // Same page: covered by the micro-TLB.
        assert!(!wc.store(0x1800, 4, 1).needs_validation);
        // Different page: needs validation again.
        assert!(wc.store(0x9000, 4, 2).needs_validation);
        assert_eq!(wc.stats().validations, 2);
    }

    #[test]
    fn flush_drains_everything() {
        let mut wc = WriteCache::new(4);
        wc.store(0x1000, 4, 0);
        wc.store(0x2000, 4, 1);
        assert_eq!(wc.occupancy(), 2);
        let lines = wc.flush();
        assert_eq!(lines.len(), 2);
        assert_eq!(wc.occupancy(), 0);
        assert_eq!(wc.stats().store_transactions, 2);
    }

    #[test]
    fn larger_write_cache_has_higher_hit_rate() {
        // Strided writes over several active lines: 8 lines keep all
        // streams resident, 2 lines thrash — Table 5's trend.
        // Stream 0 is touched most often, stream 5 rarely; each stream
        // walks its own region word by word.
        let pattern = [0usize, 1, 0, 2, 0, 1, 3, 0, 1, 2, 4, 5];
        let rates: Vec<f64> = [2usize, 4, 8]
            .into_iter()
            .map(|cap| {
                let mut wc = WriteCache::new(cap);
                let mut counts = [0u64; 6];
                for (t, round) in (0..600u64).enumerate() {
                    let stream = pattern[round as usize % pattern.len()];
                    let k = counts[stream];
                    counts[stream] += 1;
                    let addr = 0x10000 * stream as u64 + (k / 8) * 32 + (k % 8) * 4;
                    wc.store(addr, 4, t as u64);
                }
                wc.stats().hit_rate()
            })
            .collect();
        assert!(rates[0] < rates[1] && rates[1] < rates[2], "{rates:?}");
    }

    proptest! {
        /// No store is ever lost: every line that was allocated is either
        /// still resident or was reported as a transaction.
        #[test]
        fn conservation_of_lines(addrs in proptest::collection::vec(0u64..1 << 16, 1..300)) {
            let mut wc = WriteCache::new(4);
            let mut evicted = 0u64;
            let mut allocated = 0u64;
            for (i, &a) in addrs.iter().enumerate() {
                let out = wc.store(a, 4, i as u64);
                if !out.hit {
                    allocated += 1;
                }
                if out.evicted.is_some() {
                    evicted += 1;
                }
            }
            let resident = wc.occupancy() as u64;
            prop_assert_eq!(allocated, evicted + resident);
            let flushed = wc.flush().len() as u64;
            prop_assert_eq!(flushed, resident);
            prop_assert_eq!(wc.stats().store_transactions, evicted + flushed);
        }

        /// A load probe immediately after a store to the same word hits.
        #[test]
        fn store_then_load_hits(a in (0u64..1 << 20).prop_map(|a| a & !3)) {
            let mut wc = WriteCache::new(2);
            wc.store(a, 4, 0);
            prop_assert!(wc.load_probe(a, 4));
        }

        /// Hit rate is monotone non-decreasing in capacity for any store
        /// stream (more lines never evict earlier).
        #[test]
        fn capacity_monotonicity(addrs in proptest::collection::vec(0u64..1 << 14, 10..200)) {
            let mut prev = -1.0f64;
            for cap in [1usize, 2, 4, 8] {
                let mut wc = WriteCache::new(cap);
                for (i, &a) in addrs.iter().enumerate() {
                    wc.store(a & !3, 4, i as u64);
                }
                let rate = wc.stats().hit_rate();
                prop_assert!(rate >= prev - 1e-12, "cap {cap}: {rate} < {prev}");
                prev = rate;
            }
        }

        /// Validation only triggers when no resident line shares the page.
        #[test]
        fn validation_matches_page_residency(
            pages in proptest::collection::vec(0u64..4, 1..100),
        ) {
            let mut wc = WriteCache::new(8);
            let mut resident_pages = std::collections::HashSet::new();
            for (i, &p) in pages.iter().enumerate() {
                let addr = p * PAGE_BYTES + ((i as u64 % 8) * 32);
                let out = wc.store(addr, 4, i as u64);
                prop_assert_eq!(out.needs_validation, !resident_pages.contains(&p));
                // Recompute residency from scratch (8 lines, FIFO-ish LRU):
                // conservatively track via the cache itself.
                resident_pages.clear();
                for probe_page in 0..4u64 {
                    for line in 0..8u64 {
                        if wc.contains_line(probe_page * PAGE_BYTES + line * 32) {
                            resident_pages.insert(probe_page);
                        }
                    }
                }
            }
        }
    }
}
