//! The Bus Interface Unit and secondary-memory latency model.
//!
//! The Aurora III talks to its off-chip MMU over a bidirectional 32-bit
//! bus with split transactions, separate transmit and receive queues, and
//! data transferred on both clock edges (§2, *Bus Interface Unit*). The
//! study abstracts everything beyond the IPU pins as a secondary memory
//! with an *average* latency of 17 or 35 cycles (§4.2).
//!
//! This model charges:
//!
//! * one transmit-bus cycle per outgoing request (address), plus the line
//!   transfer time for write transactions,
//! * the secondary-memory latency (fixed or uniformly distributed),
//! * line-transfer occupancy on the receive bus (one 32-bit word per
//!   core cycle: dual-edge signalling on a half-core-rate bus clock),
//!
//! with queueing: each bus serialises its transfers, so a burst of misses
//! sees growing completion times even though transactions are split.

use std::fmt;

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Secondary-memory latency distribution (cycles from request receipt to
/// first response word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every access takes exactly this many cycles.
    Fixed(u32),
    /// Uniformly distributed in `[lo, hi]`; the paper quotes *average*
    /// latencies, so `Uniform { lo, hi }` with `(lo + hi) / 2` equal to 17
    /// or 35 models DRAM page-hit/page-miss spread.
    Uniform {
        /// Minimum latency.
        lo: u32,
        /// Maximum latency (inclusive).
        hi: u32,
    },
    /// DRAM page-mode mixture: `hit` cycles with probability
    /// `hit_permille/1000`, otherwise `miss` cycles. (Per-mille keeps the
    /// type `Eq`/`Hash`-able.)
    Bimodal {
        /// Page-hit latency.
        hit: u32,
        /// Page-miss latency.
        miss: u32,
        /// Probability of a page hit, in thousandths.
        hit_permille: u16,
    },
}

impl LatencyModel {
    /// The paper's "medium clock rate" memory system: 17-cycle average.
    pub fn average_17() -> LatencyModel {
        LatencyModel::Uniform { lo: 9, hi: 25 }
    }

    /// The paper's "fast clock rate" memory system: 35-cycle average.
    pub fn average_35() -> LatencyModel {
        LatencyModel::Uniform { lo: 19, hi: 51 }
    }

    /// The mean latency of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(l) => l as f64,
            LatencyModel::Uniform { lo, hi } => (lo as f64 + hi as f64) / 2.0,
            LatencyModel::Bimodal {
                hit,
                miss,
                hit_permille,
            } => {
                let p = f64::from(hit_permille) / 1000.0;
                p * f64::from(hit) + (1.0 - p) * f64::from(miss)
            }
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> u32 {
        match *self {
            LatencyModel::Fixed(l) => l,
            LatencyModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            LatencyModel::Bimodal {
                hit,
                miss,
                hit_permille,
            } => {
                if rng.gen_range(0..1000) < u32::from(hit_permille) {
                    hit
                } else {
                    miss
                }
            }
        }
    }
}

/// What a BIU transaction moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Demand instruction-cache line fill.
    InstrFill,
    /// Demand data-cache line fill.
    DataFill,
    /// Stream-buffer prefetch line fill (low priority).
    Prefetch,
    /// Write-cache eviction (line out to memory).
    WriteBack,
    /// MMU write-validation round trip (no data payload).
    Validation,
}

/// Counters for the BIU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BiuStats {
    /// Demand instruction fills.
    pub instr_fills: u64,
    /// Demand data fills.
    pub data_fills: u64,
    /// Prefetch fills.
    pub prefetches: u64,
    /// Write-back transactions.
    pub write_backs: u64,
    /// Validation round trips.
    pub validations: u64,
    /// Total cycles of receive-bus occupancy.
    pub receive_busy_cycles: u64,
    /// Total cycles of transmit-bus occupancy.
    pub transmit_busy_cycles: u64,
}

impl BiuStats {
    /// Total transactions of all kinds.
    pub fn total(&self) -> u64 {
        self.instr_fills + self.data_fills + self.prefetches + self.write_backs + self.validations
    }
}

impl fmt::Display for BiuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ifills, {} dfills, {} prefetches, {} writebacks, {} validations",
            self.instr_fills, self.data_fills, self.prefetches, self.write_backs, self.validations
        )
    }
}

/// The split-transaction bus interface.
///
/// ```
/// use aurora_mem::{Biu, LatencyModel, TransferKind};
///
/// let mut biu = Biu::new(LatencyModel::Fixed(17), 32, 42);
/// let done = biu.request(0, TransferKind::DataFill);
/// // 1 transmit + 17 memory + 8 receive cycles for an 8-word line.
/// assert_eq!(done, 26);
/// // A simultaneous second fill queues behind the first on the buses.
/// let second = biu.request(0, TransferKind::DataFill);
/// assert!(second > done);
/// ```
#[derive(Debug, Clone)]
pub struct Biu {
    latency: LatencyModel,
    line_bytes: u32,
    /// Dual-edge 32-bit bus at half the core clock: 4 bytes per core cycle.
    bytes_per_cycle: u32,
    transmit_free_at: u64,
    receive_free_at: u64,
    rng: SmallRng,
    stats: BiuStats,
}

impl Biu {
    /// Creates a BIU with the given memory latency model and line size.
    /// `seed` makes the `Uniform` latency stream reproducible.
    pub fn new(latency: LatencyModel, line_bytes: u32, seed: u64) -> Biu {
        Biu {
            latency,
            line_bytes,
            bytes_per_cycle: 4,
            transmit_free_at: 0,
            receive_free_at: 0,
            rng: SmallRng::seed_from_u64(seed),
            stats: BiuStats::default(),
        }
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// Cycles to stream one line across a bus.
    fn line_cycles(&self) -> u64 {
        (self.line_bytes / self.bytes_per_cycle).max(1) as u64
    }

    /// Issues a transaction at cycle `now`, returning its completion cycle
    /// (for fills: when the whole line is on chip; for write-backs and
    /// validations: when the bus/MMU interaction is finished).
    pub fn request(&mut self, now: u64, kind: TransferKind) -> u64 {
        match kind {
            TransferKind::InstrFill => self.stats.instr_fills += 1,
            TransferKind::DataFill => self.stats.data_fills += 1,
            TransferKind::Prefetch => self.stats.prefetches += 1,
            TransferKind::WriteBack => self.stats.write_backs += 1,
            TransferKind::Validation => self.stats.validations += 1,
        }

        // Transmit: the request (plus the line payload for write-backs).
        let tx_cycles = match kind {
            TransferKind::WriteBack => 1 + self.line_cycles(),
            _ => 1,
        };
        let tx_start = now.max(self.transmit_free_at);
        let tx_end = tx_start + tx_cycles;
        self.transmit_free_at = tx_end;
        self.stats.transmit_busy_cycles = self.stats.transmit_busy_cycles.saturating_add(tx_cycles);

        match kind {
            TransferKind::WriteBack => tx_end,
            TransferKind::Validation => {
                // MMU round trip: request out, translation, response back.
                tx_end + self.latency.sample(&mut self.rng) as u64
            }
            _ => {
                let mem_done = tx_end + self.latency.sample(&mut self.rng) as u64;
                let rx_start = mem_done.max(self.receive_free_at);
                let rx_end = rx_start.saturating_add(self.line_cycles());
                self.receive_free_at = rx_end;
                self.stats.receive_busy_cycles = self
                    .stats
                    .receive_busy_cycles
                    .saturating_add(self.line_cycles());
                rx_end
            }
        }
    }

    /// The next cycle after `now` at which a bus transitions from busy to
    /// free — the earliest moment a queued requester can make progress.
    /// Part of the event-horizon protocol: between `now` and this cycle
    /// the BIU's observable state cannot change.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        [self.transmit_free_at, self.receive_free_at]
            .into_iter()
            .filter(|&t| t > now)
            .min()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BiuStats {
        self.stats
    }

    /// Resets statistics (keeps bus state).
    pub fn reset_stats(&mut self) {
        self.stats = BiuStats::default();
    }
}

impl Snapshot for BiuStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.instr_fills);
        w.put_u64(self.data_fills);
        w.put_u64(self.prefetches);
        w.put_u64(self.write_backs);
        w.put_u64(self.validations);
        w.put_u64(self.receive_busy_cycles);
        w.put_u64(self.transmit_busy_cycles);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.instr_fills = r.u64()?;
        self.data_fills = r.u64()?;
        self.prefetches = r.u64()?;
        self.write_backs = r.u64()?;
        self.validations = r.u64()?;
        self.receive_busy_cycles = r.u64()?;
        self.transmit_busy_cycles = r.u64()?;
        Ok(())
    }
}

impl Snapshot for Biu {
    /// Bus occupancy horizons, the raw xoshiro256++ latency-RNG state and
    /// the counters. Serializing the RNG is what makes a resumed run draw
    /// the same `Uniform`/`Bimodal` latency sequence as an uninterrupted
    /// one — without it every subsequent miss time would diverge.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"BIU_");
        w.put_u64(self.transmit_free_at);
        w.put_u64(self.receive_free_at);
        for word in self.rng.state() {
            w.put_u64(word);
        }
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"BIU_")?;
        self.transmit_free_at = r.u64()?;
        self.receive_free_at = r.u64()?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng = SmallRng::from_state(state);
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_biu() -> Biu {
        Biu::new(LatencyModel::Fixed(17), 32, 1)
    }

    #[test]
    fn single_fill_latency() {
        let mut biu = fixed_biu();
        // 1 (tx) + 17 (memory) + 8 (32B at 4B/cycle rx) = 26.
        assert_eq!(biu.request(0, TransferKind::DataFill), 26);
        assert_eq!(biu.stats().data_fills, 1);
    }

    #[test]
    fn back_to_back_fills_queue_on_buses() {
        let mut biu = fixed_biu();
        let a = biu.request(0, TransferKind::DataFill);
        let b = biu.request(0, TransferKind::DataFill);
        let c = biu.request(0, TransferKind::DataFill);
        assert!(b > a && c > b);
        // Overlap: the second miss completes well before 2x the first
        // (split transactions overlap memory access).
        assert!(b < 2 * a, "split transactions should overlap: {a} {b}");
    }

    #[test]
    fn writebacks_only_occupy_transmit() {
        let mut biu = fixed_biu();
        let wb = biu.request(0, TransferKind::WriteBack);
        assert_eq!(wb, 9); // 1 + 8 line cycles, no memory latency charged
                           // A fill right after must wait for the transmit bus.
        let fill = biu.request(0, TransferKind::DataFill);
        assert_eq!(fill, 9 + 1 + 17 + 8);
    }

    #[test]
    fn validation_round_trip() {
        let mut biu = fixed_biu();
        assert_eq!(biu.request(0, TransferKind::Validation), 18); // 1 + 17
        assert_eq!(biu.stats().validations, 1);
    }

    #[test]
    fn uniform_latency_matches_mean() {
        let model = LatencyModel::average_17();
        assert_eq!(model.mean(), 17.0);
        let model35 = LatencyModel::average_35();
        assert_eq!(model35.mean(), 35.0);

        // Empirical mean of idle-bus fills approaches 1 + mean + 4.
        let mut biu = Biu::new(model, 32, 7);
        let n = 2000;
        let mut sum = 0u64;
        for i in 0..n {
            let now = i * 1000; // far apart: no queueing
            sum += biu.request(now, TransferKind::DataFill) - now;
        }
        let avg = sum as f64 / n as f64;
        assert!((avg - 26.0).abs() < 0.5, "avg {avg}");
    }

    #[test]
    fn bimodal_latency_mixes() {
        // 70% page hits at 11 cycles, 30% misses at 31: mean 17.
        let model = LatencyModel::Bimodal {
            hit: 11,
            miss: 31,
            hit_permille: 700,
        };
        assert!((model.mean() - 17.0).abs() < 1e-9);
        let mut biu = Biu::new(model, 32, 3);
        let mut seen_hit = false;
        let mut seen_miss = false;
        for i in 0..500u64 {
            let now = i * 1000;
            let lat = biu.request(now, TransferKind::DataFill) - now - 1 - 8;
            match lat {
                11 => seen_hit = true,
                31 => seen_miss = true,
                other => panic!("unexpected latency {other}"),
            }
        }
        assert!(seen_hit && seen_miss);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Biu::new(LatencyModel::average_35(), 32, 9);
        let mut b = Biu::new(LatencyModel::average_35(), 32, 9);
        for i in 0..100 {
            assert_eq!(
                a.request(i * 7, TransferKind::DataFill),
                b.request(i * 7, TransferKind::DataFill)
            );
        }
    }

    #[test]
    fn prefetches_counted_separately() {
        let mut biu = fixed_biu();
        biu.request(0, TransferKind::Prefetch);
        biu.request(0, TransferKind::InstrFill);
        let s = biu.stats();
        assert_eq!(s.prefetches, 1);
        assert_eq!(s.instr_fills, 1);
        assert_eq!(s.total(), 2);
    }
}
