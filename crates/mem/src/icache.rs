//! The pre-decoded instruction cache of paper Figure 3.
//!
//! Instructions are pre-decoded before insertion into the cache and stored
//! as EVEN/ODD pairs carrying three extra fields:
//!
//! * **DI** — a true dependency inside the pair prohibits dual issue,
//! * **CONT** — the pair contains a control-flow instruction,
//! * **NEXT** — the cache location of the branch target, enabling branch
//!   folding: the target can be fetched the cycle after the branch with no
//!   pipeline bubble.

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::addr::Geometry;
use crate::cache::{CacheStats, DirectMappedCache};

/// Pre-decode information for one instruction pair (Figure 3 fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairInfo {
    /// DI bit: an intra-pair true dependency prohibits dual issue.
    pub dual_issue_inhibit: bool,
    /// CONT bit: the pair contains a branch or jump.
    pub has_control_flow: bool,
    /// NEXT field: the branch target address, when the pair's control-flow
    /// instruction has a statically known target (branch folding).
    pub folded_target: Option<u64>,
}

/// A direct-mapped instruction cache holding pre-decoded pairs.
///
/// Pre-decode entries live in a slot-indexed side array with one slot per
/// pair position of every cache line — the hardware arrangement of
/// Figure 3, where the DI/CONT/NEXT bits are part of the cache line
/// itself. Replacing a line discards its pre-decode (the new text must be
/// decoded afresh), and a pair lookup is one array index with no hashing
/// or heap traffic on the simulator's fetch path.
///
/// ```
/// use aurora_mem::{DecodedICache, Geometry, PairInfo};
///
/// let mut ic = DecodedICache::new(Geometry::new(1024, 32));
/// let pc = 0x400000;
/// assert!(!ic.probe(pc));
/// ic.fill(pc);
/// ic.record_pair(pc, PairInfo { has_control_flow: true, ..Default::default() });
/// assert!(ic.probe(pc));
/// assert!(ic.pair_info(pc).unwrap().has_control_flow);
/// ```
#[derive(Debug, Clone)]
pub struct DecodedICache {
    cache: DirectMappedCache,
    /// `num_lines * pairs_per_line` pre-decode slots, index-parallel with
    /// the tag array; `None` marks a never-decoded (or replaced) pair.
    pairs: Vec<Option<PairInfo>>,
    pairs_per_line: usize,
}

impl DecodedICache {
    /// Creates an empty pre-decoded cache.
    pub fn new(geom: Geometry) -> DecodedICache {
        let pairs_per_line = (geom.line_bytes() / 8).max(1) as usize;
        DecodedICache {
            cache: DirectMappedCache::new(geom),
            pairs: vec![None; geom.num_lines() as usize * pairs_per_line],
            pairs_per_line,
        }
    }

    /// Side-array slot for the pair containing `pc`: the line's index
    /// scaled by pairs-per-line, plus the pair's position within the line.
    /// The pair is identified by `pc >> 3`: EVEN instructions occupy the
    /// lower of two consecutive word addresses (§2, Figure 3).
    fn slot(&self, pc: u64) -> usize {
        let geom = self.cache.geometry();
        geom.index(pc) * self.pairs_per_line + ((pc >> 3) as usize & (self.pairs_per_line - 1))
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> Geometry {
        self.cache.geometry()
    }

    /// Probes the line containing `pc`, recording statistics.
    pub fn probe(&mut self, pc: u64) -> bool {
        self.cache.probe(pc)
    }

    /// Whether the line containing `pc` is resident (no stats).
    pub fn contains(&self, pc: u64) -> bool {
        self.cache.contains(pc)
    }

    /// Credits `n` pre-verified hits (see
    /// [`DirectMappedCache::credit_hits`]).
    pub fn credit_hits(&mut self, n: u64) {
        self.cache.credit_hits(n);
    }

    /// Installs the line containing `pc`. Replacing a line with different
    /// text invalidates its pre-decode slots: the DI/CONT/NEXT fields are
    /// stored with the line and leave with it (Figure 3).
    pub fn fill(&mut self, pc: u64) -> bool {
        if !self.cache.contains(pc) {
            let base = self.cache.geometry().index(pc) * self.pairs_per_line;
            if let Some(slots) = self.pairs.get_mut(base..base + self.pairs_per_line) {
                slots.fill(None);
            }
        }
        self.cache.fill(pc)
    }

    /// Records pre-decode information for the pair containing `pc`.
    pub fn record_pair(&mut self, pc: u64, info: PairInfo) {
        let slot = self.slot(pc);
        if let Some(entry) = self.pairs.get_mut(slot) {
            *entry = Some(info);
        }
    }

    /// Pre-decode info for the pair containing `pc`, if the resident line's
    /// pair has been decoded. Only meaningful when
    /// [`DecodedICache::contains`] holds.
    pub fn pair_info(&self, pc: u64) -> Option<PairInfo> {
        self.pairs.get(self.slot(pc)).copied().flatten()
    }

    /// Whether a taken control transfer from the pair at `branch_pc` can be
    /// folded: the pair's NEXT field points at `target` and the target's
    /// line is resident, so the fetch proceeds with no bubble.
    pub fn can_fold(&self, branch_pc: u64, target: u64) -> bool {
        matches!(
            self.pair_info(branch_pc),
            Some(PairInfo { folded_target: Some(t), .. }) if t == target
        ) && self.contains(target)
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets statistics (keeps contents).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

impl Snapshot for DecodedICache {
    /// Records the tag array (via the inner cache) and every pre-decode
    /// slot, so folding behaviour resumes exactly where it left off.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"ICAC");
        self.cache.save(w);
        w.put_len(self.pairs.len());
        for info in &self.pairs {
            match info {
                Some(p) => {
                    w.put_bool(true);
                    w.put_bool(p.dual_issue_inhibit);
                    w.put_bool(p.has_control_flow);
                    w.put_opt_u64(p.folded_target);
                }
                None => w.put_bool(false),
            }
        }
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"ICAC")?;
        self.cache.restore(r)?;
        let n = r.len(self.pairs.len())?;
        if n != self.pairs.len() {
            return Err(SnapshotError::Corrupt(
                "icache pre-decode slot count mismatch",
            ));
        }
        for slot in self.pairs.iter_mut() {
            *slot = if r.bool()? {
                Some(PairInfo {
                    dual_issue_inhibit: r.bool()?,
                    has_control_flow: r.bool()?,
                    folded_target: r.opt_u64()?,
                })
            } else {
                None
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icache() -> DecodedICache {
        DecodedICache::new(Geometry::new(1024, 32))
    }

    #[test]
    fn pair_identity_is_eight_bytes() {
        let mut ic = icache();
        ic.record_pair(
            0x100,
            PairInfo {
                dual_issue_inhibit: true,
                ..Default::default()
            },
        );
        // Both the EVEN (0x100) and ODD (0x104) member see the same info.
        assert!(ic.pair_info(0x104).unwrap().dual_issue_inhibit);
        assert!(ic.pair_info(0x108).is_none());
    }

    #[test]
    fn folding_requires_matching_target_and_residency() {
        let mut ic = icache();
        ic.fill(0x100);
        ic.record_pair(
            0x100,
            PairInfo {
                has_control_flow: true,
                folded_target: Some(0x800),
                ..Default::default()
            },
        );
        // Target line not resident: no folding.
        assert!(!ic.can_fold(0x100, 0x800));
        ic.fill(0x800);
        assert!(ic.can_fold(0x100, 0x800));
        // Different dynamic target (e.g. jr): no folding.
        assert!(!ic.can_fold(0x100, 0x900));
        // Pair without a NEXT field: no folding.
        ic.fill(0x200);
        ic.record_pair(
            0x200,
            PairInfo {
                has_control_flow: true,
                ..Default::default()
            },
        );
        assert!(!ic.can_fold(0x200, 0x800));
    }

    #[test]
    fn predecode_invalidated_on_replacement() {
        let mut ic = icache();
        ic.fill(0x0);
        ic.record_pair(
            0x0,
            PairInfo {
                has_control_flow: true,
                ..Default::default()
            },
        );
        assert!(ic.pair_info(0x0).unwrap().has_control_flow);
        ic.fill(1024); // evicts line 0 (1 KB cache): pre-decode leaves with it
        assert!(!ic.contains(0x0));
        assert!(ic.pair_info(0x0).is_none());
        // Refill: the line must be decoded afresh.
        ic.fill(0x0);
        assert!(ic.pair_info(0x0).is_none());
        // Re-filling a line that is already resident keeps its pre-decode.
        ic.record_pair(
            0x0,
            PairInfo {
                has_control_flow: true,
                ..Default::default()
            },
        );
        ic.fill(0x0);
        assert!(ic.pair_info(0x0).unwrap().has_control_flow);
    }

    #[test]
    fn stats_delegate() {
        let mut ic = icache();
        ic.probe(0x40);
        ic.fill(0x40);
        ic.probe(0x40);
        assert_eq!(ic.stats().accesses, 2);
        assert_eq!(ic.stats().hits, 1);
        ic.reset_stats();
        assert_eq!(ic.stats().accesses, 0);
    }
}
