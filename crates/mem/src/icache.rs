//! The pre-decoded instruction cache of paper Figure 3.
//!
//! Instructions are pre-decoded before insertion into the cache and stored
//! as EVEN/ODD pairs carrying three extra fields:
//!
//! * **DI** — a true dependency inside the pair prohibits dual issue,
//! * **CONT** — the pair contains a control-flow instruction,
//! * **NEXT** — the cache location of the branch target, enabling branch
//!   folding: the target can be fetched the cycle after the branch with no
//!   pipeline bubble.

use crate::addr::Geometry;
use crate::cache::{CacheStats, DirectMappedCache};
use std::collections::HashMap;

/// Pre-decode information for one instruction pair (Figure 3 fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairInfo {
    /// DI bit: an intra-pair true dependency prohibits dual issue.
    pub dual_issue_inhibit: bool,
    /// CONT bit: the pair contains a branch or jump.
    pub has_control_flow: bool,
    /// NEXT field: the branch target address, when the pair's control-flow
    /// instruction has a statically known target (branch folding).
    pub folded_target: Option<u64>,
}

/// A direct-mapped instruction cache holding pre-decoded pairs.
///
/// Pair pre-decode entries persist across evictions: program text is
/// immutable, so a re-filled line's pre-decode is identical, and entries
/// for non-resident lines are never consulted (the tag probe gates every
/// use). This keeps the model simple without being wrong.
///
/// ```
/// use aurora_mem::{DecodedICache, Geometry, PairInfo};
///
/// let mut ic = DecodedICache::new(Geometry::new(1024, 32));
/// let pc = 0x400000;
/// assert!(!ic.probe(pc));
/// ic.fill(pc);
/// ic.record_pair(pc, PairInfo { has_control_flow: true, ..Default::default() });
/// assert!(ic.probe(pc));
/// assert!(ic.pair_info(pc).unwrap().has_control_flow);
/// ```
#[derive(Debug, Clone)]
pub struct DecodedICache {
    cache: DirectMappedCache,
    pairs: HashMap<u64, PairInfo>,
}

impl DecodedICache {
    /// Creates an empty pre-decoded cache.
    pub fn new(geom: Geometry) -> DecodedICache {
        DecodedICache { cache: DirectMappedCache::new(geom), pairs: HashMap::new() }
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> Geometry {
        self.cache.geometry()
    }

    /// Probes the line containing `pc`, recording statistics.
    pub fn probe(&mut self, pc: u64) -> bool {
        self.cache.probe(pc)
    }

    /// Whether the line containing `pc` is resident (no stats).
    pub fn contains(&self, pc: u64) -> bool {
        self.cache.contains(pc)
    }

    /// Installs the line containing `pc`.
    pub fn fill(&mut self, pc: u64) -> bool {
        self.cache.fill(pc)
    }

    /// Records pre-decode information for the pair containing `pc`.
    ///
    /// The pair is identified by `pc >> 3`: EVEN instructions occupy the
    /// lower of two consecutive word addresses (§2, Figure 3).
    pub fn record_pair(&mut self, pc: u64, info: PairInfo) {
        self.pairs.insert(pc >> 3, info);
    }

    /// Pre-decode info for the pair containing `pc`, if it has ever been
    /// decoded. Only meaningful when [`DecodedICache::contains`] holds.
    pub fn pair_info(&self, pc: u64) -> Option<PairInfo> {
        self.pairs.get(&(pc >> 3)).copied()
    }

    /// Whether a taken control transfer from the pair at `branch_pc` can be
    /// folded: the pair's NEXT field points at `target` and the target's
    /// line is resident, so the fetch proceeds with no bubble.
    pub fn can_fold(&self, branch_pc: u64, target: u64) -> bool {
        matches!(
            self.pair_info(branch_pc),
            Some(PairInfo { folded_target: Some(t), .. }) if t == target
        ) && self.contains(target)
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets statistics (keeps contents).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icache() -> DecodedICache {
        DecodedICache::new(Geometry::new(1024, 32))
    }

    #[test]
    fn pair_identity_is_eight_bytes() {
        let mut ic = icache();
        ic.record_pair(0x100, PairInfo { dual_issue_inhibit: true, ..Default::default() });
        // Both the EVEN (0x100) and ODD (0x104) member see the same info.
        assert!(ic.pair_info(0x104).unwrap().dual_issue_inhibit);
        assert!(ic.pair_info(0x108).is_none());
    }

    #[test]
    fn folding_requires_matching_target_and_residency() {
        let mut ic = icache();
        ic.fill(0x100);
        ic.record_pair(0x100, PairInfo {
            has_control_flow: true,
            folded_target: Some(0x800),
            ..Default::default()
        });
        // Target line not resident: no folding.
        assert!(!ic.can_fold(0x100, 0x800));
        ic.fill(0x800);
        assert!(ic.can_fold(0x100, 0x800));
        // Different dynamic target (e.g. jr): no folding.
        assert!(!ic.can_fold(0x100, 0x900));
        // Pair without a NEXT field: no folding.
        ic.fill(0x200);
        ic.record_pair(0x200, PairInfo { has_control_flow: true, ..Default::default() });
        assert!(!ic.can_fold(0x200, 0x800));
    }

    #[test]
    fn predecode_survives_eviction() {
        let mut ic = icache();
        ic.fill(0x0);
        ic.record_pair(0x0, PairInfo { has_control_flow: true, ..Default::default() });
        ic.fill(1024); // evicts line 0 (1 KB cache)
        assert!(!ic.contains(0x0));
        // Refill: pre-decode is still there, as the text is immutable.
        ic.fill(0x0);
        assert!(ic.pair_info(0x0).unwrap().has_control_flow);
    }

    #[test]
    fn stats_delegate() {
        let mut ic = icache();
        ic.probe(0x40);
        ic.fill(0x40);
        ic.probe(0x40);
        assert_eq!(ic.stats().accesses, 2);
        assert_eq!(ic.stats().hits, 1);
        ic.reset_stats();
        assert_eq!(ic.stats().accesses, 0);
    }
}
