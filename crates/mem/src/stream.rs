//! Jouppi-style sequential prefetch stream buffers (§2.2).
//!
//! On each cache miss that also misses in every stream buffer, a buffer is
//! allocated (LRU victim) and initialised to fetch the *next* sequential
//! line. The allocation fetch is a single line; once a later miss hits in
//! a buffer, the buffer deepens, fetching sequential lines until full.
//!
//! The Aurora III shares one set of buffers between the instruction and
//! data streams, which is what makes the two-buffer small model thrash
//! (§5.2).

use std::fmt;

use aurora_isa::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::addr::LineAddr;

/// Result of probing the stream buffers on a primary-cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamProbe {
    /// The line was found in a buffer; it becomes available at `ready_at`
    /// (already in the past if the prefetch completed earlier).
    Hit {
        /// Cycle at which the line's data is on chip.
        ready_at: u64,
    },
    /// No buffer holds the line.
    Miss,
}

/// Counters for the stream buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Probes made (each is a primary-cache miss).
    pub probes: u64,
    /// Probes that hit a buffer.
    pub hits: u64,
    /// Prefetch line requests issued to the BIU.
    pub prefetches_issued: u64,
    /// Buffers reallocated to a new stream.
    pub allocations: u64,
}

impl StreamStats {
    /// Prefetch hit rate over probes (the paper's Tables 3 and 4 metric:
    /// fraction of primary-cache misses that hit a stream buffer).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} probes, {} hits ({:.2}%), {} prefetches, {} allocations",
            self.probes,
            self.hits,
            100.0 * self.hit_rate(),
            self.prefetches_issued,
            self.allocations
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Request issued; data arrives at the contained cycle.
    Arriving(u64),
}

#[derive(Debug, Clone)]
struct Buffer {
    /// Queue of prefetched lines, head first. Sequential from head.
    slots: Vec<(LineAddr, SlotState)>,
    /// Next sequential line this stream would fetch.
    next_line: LineAddr,
    /// LRU timestamp.
    last_used: u64,
    /// Whether the stream has proven useful (hit at least once); useful
    /// streams deepen to full depth.
    deepened: bool,
}

/// A set of associative prefetch stream buffers.
///
/// A full miss reallocates buffers **round-robin** — with few buffers and
/// interleaved instruction/data miss streams the buffers destroy each
/// other, which is exactly the two-buffer thrashing §5.2 blames for the
/// small model's poor prefetch payoff.
///
/// Timing is co-operative: the caller (the simulator's prefetch unit)
/// supplies a callback that issues a line fetch on the BIU and returns its
/// completion cycle.
///
/// ```
/// use aurora_mem::{StreamBuffers, StreamProbe};
/// use aurora_mem::LineAddr;
///
/// let mut sb = StreamBuffers::new(2, 4);
/// // Miss on line 10: nothing buffered yet, allocate a stream at line 11.
/// assert_eq!(sb.probe(LineAddr(10), 0), StreamProbe::Miss);
/// sb.allocate(LineAddr(10), 0, |_line| 20); // fetch completes at cycle 20
/// // The next sequential miss hits the buffer.
/// match sb.probe(LineAddr(11), 25) {
///     StreamProbe::Hit { ready_at } => assert_eq!(ready_at, 20),
///     StreamProbe::Miss => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StreamBuffers {
    buffers: Vec<Buffer>,
    depth: usize,
    clock: u64,
    next_victim: usize,
    stats: StreamStats,
}

impl StreamBuffers {
    /// Creates `count` buffers of `depth` lines each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(count: usize, depth: usize) -> StreamBuffers {
        assert!(count > 0 && depth > 0);
        StreamBuffers {
            buffers: Vec::with_capacity(count),
            depth,
            clock: 0,
            next_victim: 0,
            stats: StreamStats::default(),
        }
        .with_capacity_slots(count)
    }

    fn with_capacity_slots(mut self, count: usize) -> StreamBuffers {
        for _ in 0..count {
            self.buffers.push(Buffer {
                slots: Vec::new(),
                next_line: LineAddr(0),
                last_used: 0,
                deepened: false,
            });
        }
        self
    }

    /// Number of buffers.
    pub fn count(&self) -> usize {
        self.buffers.len()
    }

    /// Lines per buffer.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Probes all buffer heads for `line` after a primary-cache miss.
    ///
    /// On a hit the line is consumed from its buffer (it is being moved
    /// into the primary cache); call [`StreamBuffers::deepen`] afterwards
    /// to issue the follow-on prefetches.
    pub fn probe(&mut self, line: LineAddr, now: u64) -> StreamProbe {
        self.stats.probes += 1;
        self.clock += 1;
        for buf in &mut self.buffers {
            if let Some(&(head, SlotState::Arriving(at))) = buf.slots.first() {
                if head == line {
                    buf.slots.remove(0);
                    buf.last_used = self.clock;
                    buf.deepened = true;
                    self.stats.hits += 1;
                    let _ = now;
                    return StreamProbe::Hit { ready_at: at };
                }
            }
        }
        StreamProbe::Miss
    }

    /// Allocates a buffer for a new stream after a full miss on `line`.
    ///
    /// The next buffer in round-robin order is reassigned to fetch
    /// `line + 1`; `issue` is called with each line to prefetch and must
    /// return the cycle at which the fetch completes. A fresh allocation
    /// fetches a single line (§2.2).
    pub fn allocate(&mut self, line: LineAddr, _now: u64, mut issue: impl FnMut(LineAddr) -> u64) {
        self.clock += 1;
        self.stats.allocations += 1;
        let clock = self.clock;
        let victim = self.next_victim;
        self.next_victim = (self.next_victim + 1) % self.buffers.len();
        // The modulo above keeps the round-robin cursor in range.
        let Some(buf) = self.buffers.get_mut(victim) else {
            return;
        };
        buf.slots.clear();
        buf.deepened = false;
        buf.last_used = clock;
        let first = line.next();
        let done = issue(first);
        self.stats.prefetches_issued += 1;
        buf.slots.push((first, SlotState::Arriving(done)));
        buf.next_line = first.next();
    }

    /// Deepens the most recently hit stream: issues sequential prefetches
    /// until the buffer holds `depth` lines. Call after a successful
    /// [`StreamBuffers::probe`].
    pub fn deepen(&mut self, mut issue: impl FnMut(LineAddr) -> u64) {
        let depth = self.depth;
        let Some(buf) = self
            .buffers
            .iter_mut()
            .filter(|b| b.deepened)
            .max_by_key(|b| b.last_used)
        else {
            return;
        };
        while buf.slots.len() < depth {
            let line = buf.next_line;
            let done = issue(line);
            self.stats.prefetches_issued += 1;
            buf.slots.push((line, SlotState::Arriving(done)));
            buf.next_line = line.next();
        }
    }

    /// The next cycle after `now` at which a prefetched line arrives on
    /// chip. Part of the event-horizon protocol: no buffered line's
    /// availability changes before this cycle.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        self.buffers
            .iter()
            .flat_map(|b| b.slots.iter())
            .map(|&(_, SlotState::Arriving(at))| at)
            .filter(|&at| at > now)
            .min()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Resets statistics (keeps buffer contents).
    pub fn reset_stats(&mut self) {
        self.stats = StreamStats::default();
    }
}

impl Snapshot for StreamStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.probes);
        w.put_u64(self.hits);
        w.put_u64(self.prefetches_issued);
        w.put_u64(self.allocations);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.probes = r.u64()?;
        self.hits = r.u64()?;
        self.prefetches_issued = r.u64()?;
        self.allocations = r.u64()?;
        Ok(())
    }
}

impl Snapshot for StreamBuffers {
    /// Records every buffer's prefetch queue (line + arrival cycle), the
    /// per-stream bookkeeping and the round-robin cursor, so replacement
    /// decisions after a restore match the uninterrupted run exactly.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section(*b"STRM");
        w.put_len(self.buffers.len());
        for buf in &self.buffers {
            w.put_len(buf.slots.len());
            for &(line, SlotState::Arriving(at)) in &buf.slots {
                w.put_u64(line.0);
                w.put_u64(at);
            }
            w.put_u64(buf.next_line.0);
            w.put_u64(buf.last_used);
            w.put_bool(buf.deepened);
        }
        w.put_u64(self.clock);
        w.put_len(self.next_victim);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section(*b"STRM")?;
        let n = r.len(self.buffers.len())?;
        if n != self.buffers.len() {
            return Err(SnapshotError::Corrupt("stream buffer count mismatch"));
        }
        let depth = self.depth;
        for buf in self.buffers.iter_mut() {
            let slots = r.len(depth)?;
            buf.slots.clear();
            for _ in 0..slots {
                let line = LineAddr(r.u64()?);
                let at = r.u64()?;
                buf.slots.push((line, SlotState::Arriving(at)));
            }
            buf.next_line = LineAddr(r.u64()?);
            buf.last_used = r.u64()?;
            buf.deepened = r.bool()?;
        }
        self.clock = r.u64()?;
        self.next_victim = r.len(self.buffers.len().saturating_sub(1))?;
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue_at(cycle: u64) -> impl FnMut(LineAddr) -> u64 {
        move |_| cycle
    }

    #[test]
    fn fresh_allocation_fetches_one_line() {
        let mut sb = StreamBuffers::new(2, 4);
        sb.allocate(LineAddr(100), 0, issue_at(10));
        assert_eq!(sb.stats().prefetches_issued, 1);
        // Line 101 is buffered; 102 is not (not yet deepened).
        assert!(matches!(
            sb.probe(LineAddr(101), 20),
            StreamProbe::Hit { ready_at: 10 }
        ));
        assert_eq!(sb.probe(LineAddr(102), 20), StreamProbe::Miss);
    }

    #[test]
    fn hit_then_deepen_fills_buffer() {
        let mut sb = StreamBuffers::new(1, 4);
        sb.allocate(LineAddr(100), 0, issue_at(5));
        assert!(matches!(
            sb.probe(LineAddr(101), 6),
            StreamProbe::Hit { .. }
        ));
        sb.deepen(issue_at(30));
        // 102, 103, 104, 105 now queued (4 deep).
        assert_eq!(sb.stats().prefetches_issued, 5);
        for l in 102..=105 {
            assert!(
                matches!(sb.probe(LineAddr(l), 40), StreamProbe::Hit { .. }),
                "line {l}"
            );
            sb.deepen(issue_at(50));
        }
    }

    #[test]
    fn ready_at_accounts_for_late_arrival() {
        let mut sb = StreamBuffers::new(1, 2);
        sb.allocate(LineAddr(0), 0, issue_at(100));
        // Probe at cycle 3, data arrives at 100: ready_at is 100.
        match sb.probe(LineAddr(1), 3) {
            StreamProbe::Hit { ready_at } => assert_eq!(ready_at, 100),
            StreamProbe::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn round_robin_allocation_cycles_buffers() {
        let mut sb = StreamBuffers::new(2, 2);
        sb.allocate(LineAddr(100), 0, issue_at(1)); // buffer 0: stream A
        sb.allocate(LineAddr(200), 0, issue_at(1)); // buffer 1: stream B
                                                    // A third stream reclaims buffer 0 even though A just hit — the
                                                    // thrashing behaviour of §5.2.
        assert!(matches!(
            sb.probe(LineAddr(101), 5),
            StreamProbe::Hit { .. }
        ));
        sb.allocate(LineAddr(300), 0, issue_at(1)); // replaces A's buffer
        sb.allocate(LineAddr(400), 0, issue_at(1)); // replaces B
        assert_eq!(sb.probe(LineAddr(201), 10), StreamProbe::Miss);
        assert!(matches!(
            sb.probe(LineAddr(301), 10),
            StreamProbe::Hit { .. }
        ));
        assert!(matches!(
            sb.probe(LineAddr(401), 10),
            StreamProbe::Hit { .. }
        ));
    }

    #[test]
    fn two_buffers_thrash_under_interleaved_streams() {
        // Three interleaved streams over two buffers: the paper's small
        // model pathology. After the warm-up allocation, sustained hits are
        // impossible for at least one stream.
        let mut sb = StreamBuffers::new(2, 4);
        let mut hits = 0;
        let mut probes = 0;
        for step in 0..60u64 {
            for (s, base) in [(0u64, 1000u64), (1, 2000), (2, 3000)] {
                let line = LineAddr(base + step);
                probes += 1;
                match sb.probe(line, step) {
                    StreamProbe::Hit { .. } => {
                        hits += 1;
                        sb.deepen(issue_at(step));
                    }
                    StreamProbe::Miss => sb.allocate(line, step, issue_at(step)),
                }
                let _ = s;
            }
        }
        // With 2 buffers and 3 streams, at most two streams can ever hit.
        assert!(hits as f64 / probes as f64 <= 0.67, "{hits}/{probes}");
    }

    #[test]
    fn four_buffers_capture_three_streams() {
        let mut sb = StreamBuffers::new(4, 4);
        let mut hits = 0;
        let mut probes = 0;
        for step in 0..60u64 {
            for base in [1000u64, 2000, 3000] {
                let line = LineAddr(base + step);
                probes += 1;
                match sb.probe(line, step) {
                    StreamProbe::Hit { .. } => {
                        hits += 1;
                        sb.deepen(issue_at(step));
                    }
                    StreamProbe::Miss => sb.allocate(line, step, issue_at(step)),
                }
            }
        }
        assert!(hits as f64 / probes as f64 > 0.9, "{hits}/{probes}");
    }

    #[test]
    fn stats_hit_rate() {
        let mut sb = StreamBuffers::new(1, 2);
        sb.allocate(LineAddr(0), 0, issue_at(0));
        let _ = sb.probe(LineAddr(1), 1); // hit
        let _ = sb.probe(LineAddr(9), 1); // miss
        assert!((sb.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
