//! Address geometry shared by all memory structures.

use std::fmt;

/// A cache-line address: the byte address shifted right by the line size.
///
/// Using a newtype keeps line numbers and byte addresses from being mixed
/// up across the many structures that traffic in lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The next sequential line.
    pub fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// The byte address of the first byte in the line.
    pub fn to_bytes(self, line_bytes: u32) -> u64 {
        self.0 * line_bytes as u64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Size and line geometry of a direct-mapped structure.
///
/// ```
/// use aurora_mem::Geometry;
/// let g = Geometry::new(16 * 1024, 32);
/// assert_eq!(g.num_lines(), 512);
/// assert_eq!(g.line(0x43), g.line(0x5f));
/// assert_ne!(g.index(0x0), g.index(0x20));
/// // Addresses one cache-size apart share an index but differ in tag.
/// assert_eq!(g.index(0x100), g.index(0x100 + 16 * 1024));
/// assert_ne!(g.tag(0x100), g.tag(0x100 + 16 * 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    size_bytes: u32,
    line_bytes: u32,
    line_shift: u32,
    index_mask: u64,
}

impl Geometry {
    /// Creates a geometry for a structure of `size_bytes` split into
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two and
    /// `size_bytes >= line_bytes`.
    pub fn new(size_bytes: u32, line_bytes: u32) -> Geometry {
        assert!(
            size_bytes.is_power_of_two(),
            "size {size_bytes} not a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line {line_bytes} not a power of two"
        );
        assert!(size_bytes >= line_bytes);
        Geometry {
            size_bytes,
            line_bytes,
            line_shift: line_bytes.trailing_zeros(),
            index_mask: (size_bytes / line_bytes - 1) as u64,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of lines (sets, for a direct-mapped structure).
    pub fn num_lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// The line containing byte address `addr`.
    pub fn line(&self, addr: u64) -> LineAddr {
        LineAddr(addr >> self.line_shift)
    }

    /// The direct-mapped set index for byte address `addr`.
    pub fn index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.index_mask) as usize
    }

    /// The set index for a line address.
    pub fn line_index(&self, line: LineAddr) -> usize {
        (line.0 & self.index_mask) as usize
    }

    /// The tag for byte address `addr` (the line bits above the index).
    pub fn tag(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) >> (self.index_mask.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn geometry_basic() {
        let g = Geometry::new(1024, 32);
        assert_eq!(g.num_lines(), 32);
        assert_eq!(g.line_bytes(), 32);
        assert_eq!(g.size_bytes(), 1024);
        assert_eq!(g.line(0).0, 0);
        assert_eq!(g.line(31).0, 0);
        assert_eq!(g.line(32).0, 1);
        assert_eq!(g.index(1024), 0);
        assert_eq!(g.index(1024 + 32), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Geometry::new(1000, 32);
    }

    #[test]
    fn line_addr_helpers() {
        let l = LineAddr(5);
        assert_eq!(l.next(), LineAddr(6));
        assert_eq!(l.to_bytes(32), 160);
        assert_eq!(l.to_string(), "L0x5");
    }

    proptest! {
        /// index/tag decomposition uniquely identifies a line.
        #[test]
        fn index_tag_uniquely_identify_line(
            a in 0u64..1 << 34,
            b in 0u64..1 << 34,
            size_pow in 10u32..18,
            line_pow in 4u32..7,
        ) {
            let g = Geometry::new(1 << size_pow, 1 << line_pow);
            let same_line = g.line(a) == g.line(b);
            let same_slot = g.index(a) == g.index(b) && g.tag(a) == g.tag(b);
            prop_assert_eq!(same_line, same_slot);
        }

        /// All indices are within range.
        #[test]
        fn index_in_range(a in any::<u64>()) {
            let g = Geometry::new(4096, 32);
            prop_assert!(g.index(a) < g.num_lines() as usize);
        }
    }
}
