//! Memory-hierarchy substrates for the Aurora III study.
//!
//! This crate models every on- and off-chip memory structure the paper's
//! design-space study varies (§2, Table 1):
//!
//! * [`Geometry`] — line/index/tag arithmetic shared by all structures,
//! * [`DirectMappedCache`] — tags-only direct-mapped cache with statistics,
//!   used for the on-chip instruction cache and the external pipelined
//!   data cache,
//! * [`DecodedICache`] — the pre-decoded instruction cache of Figure 3,
//!   tracking the DI / CONT / NEXT branch-folding fields per pair,
//! * [`StreamBuffers`] — Jouppi-style sequential prefetch stream buffers
//!   shared between the instruction and data streams (§2.2),
//! * [`WriteCache`] — the 4-line × 8-word coalescing write cache with
//!   page-field micro-TLB write validation (§2.3),
//! * [`MshrFile`] — miss status holding registers bounding the number of
//!   outstanding data-cache misses (§2.3, §5.4),
//! * [`Biu`] — the split-transaction bus interface unit plus the secondary
//!   memory latency model (17- or 35-cycle average, §4.2).
//!
//! All structures are *timing* models: they track tags, occupancy and
//! cycle counts, not data contents (the functional emulator in
//! `aurora-isa` owns the data).
//!
//! # Example
//!
//! ```
//! use aurora_mem::{DirectMappedCache, Geometry};
//!
//! let geom = Geometry::new(2 * 1024, 32); // 2 KB of 32-byte lines
//! let mut icache = DirectMappedCache::new(geom);
//! assert!(!icache.probe(0x400000));
//! icache.fill(0x400000);
//! assert!(icache.probe(0x400000));
//! assert!(icache.probe(0x40001c)); // same line
//! assert_eq!(icache.stats().misses, 1);
//! ```

mod addr;
mod biu;
mod cache;
mod icache;
mod mshr;
mod stream;
mod write_cache;

pub use addr::{Geometry, LineAddr};
pub use biu::{Biu, BiuStats, LatencyModel, TransferKind};
pub use cache::{CacheStats, DirectMappedCache};
pub use icache::{DecodedICache, PairInfo};
pub use mshr::{MshrFile, MshrStats};
pub use stream::{StreamBuffers, StreamProbe, StreamStats};
pub use write_cache::{StoreOutcome, WriteCache, WriteCacheStats};
