//! Capture-once / replay-many trace memoisation.
//!
//! A configuration sweep simulates the same workloads against many
//! machine configurations. Re-running the functional emulator for every
//! cell repeats identical work: the dynamic trace of a (workload, scale)
//! pair never changes. [`TraceStore`] captures each trace exactly once —
//! even when many sweep threads ask for it concurrently — and hands out
//! `Arc<PackedTrace>` clones that replay without copying.
//!
//! An optional on-disk cache (the `AURORA_TRACE_CACHE` environment
//! variable for [`TraceStore::global`], or [`TraceStore::with_cache_dir`])
//! persists captures across processes in the `trace_io` binary format
//! (`.trc`), and block lowerings alongside them in the `BlockTrace`
//! format (`.blk`) — a `.blk` hit skips both the emulator capture *and*
//! the lowering pass. Cache files are keyed by workload name, scale, the
//! relevant format versions and a content hash of the assembled kernel,
//! so edits to a kernel or to an encoding invalidate stale files
//! automatically; a corrupt or stale file is treated as a miss.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use aurora_isa::{BlockTrace, PackedTrace, BLOCK_FORMAT_VERSION, TRACE_FORMAT_VERSION};

use crate::workload::{Scale, Workload, WorkloadError};

/// Memo key: kernel name, scale, and a content hash distinguishing
/// same-named kernel variants such as the single- vs double-word
/// floating-point encodings.
type TraceKey = (&'static str, Scale, u64);
/// One memo slot: concurrent requesters clone the cell, then race to
/// initialise it exactly once outside the map lock.
type TraceCell = Arc<OnceLock<Arc<PackedTrace>>>;
/// Memo slot for a lowered block trace (same keying as [`TraceCell`]).
type BlockCell = Arc<OnceLock<Arc<BlockTrace>>>;

/// A concurrent memo of captured traces.
///
/// ```
/// use aurora_workloads::{IntBenchmark, Scale, TraceStore};
///
/// let store = TraceStore::new();
/// let w = IntBenchmark::Compress.workload(Scale::Test);
/// let first = store.get(&w).unwrap();
/// let second = store.get(&w).unwrap();
/// // The second request is a memo hit: same buffer, one capture total.
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// assert_eq!(store.captures(), 1);
/// assert!(!first.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct TraceStore {
    cells: Mutex<HashMap<TraceKey, TraceCell>>,
    block_cells: Mutex<HashMap<TraceKey, BlockCell>>,
    captures: AtomicU64,
    disk_hits: AtomicU64,
    block_disk_hits: AtomicU64,
    lowerings: AtomicU64,
    cache_dir: Option<PathBuf>,
}

impl TraceStore {
    /// A store with no disk cache: traces live only in memory.
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    /// A store that also persists captures under `dir` (created on first
    /// write if missing).
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> TraceStore {
        TraceStore {
            cache_dir: Some(dir.into()),
            ..TraceStore::default()
        }
    }

    /// The process-wide store used by the benchmark harness.
    ///
    /// Honours the `AURORA_TRACE_CACHE` environment variable at first
    /// use: when set to a non-empty path, captures persist there across
    /// runs; otherwise the store is memory-only.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(|| match std::env::var_os("AURORA_TRACE_CACHE") {
            Some(dir) if !dir.is_empty() => TraceStore::with_cache_dir(PathBuf::from(dir)),
            _ => TraceStore::new(),
        })
    }

    /// Returns the trace for `workload`, capturing it if this is the
    /// first request for its (name, scale, content-hash) key. Concurrent
    /// callers for the same key block until the single capture finishes;
    /// all of them share one buffer.
    ///
    /// # Errors
    ///
    /// Propagates the capture's [`WorkloadError`]. A failed capture is
    /// not cached, so a later call retries.
    pub fn get(&self, workload: &Workload) -> Result<Arc<PackedTrace>, WorkloadError> {
        let key = (workload.name(), workload.scale(), workload.content_hash());
        let cell = {
            let mut cells = self.cells.lock().expect("trace store poisoned");
            Arc::clone(cells.entry(key).or_default())
        };
        if let Some(trace) = cell.get() {
            return Ok(Arc::clone(trace));
        }
        // Capture outside the map lock so unrelated workloads proceed in
        // parallel; the per-key cell still guarantees exactly one winner.
        let mut result = Ok(());
        let trace = cell.get_or_init(|| match self.load_or_capture(workload) {
            Ok(trace) => Arc::new(trace),
            Err(e) => {
                result = Err(e);
                Arc::new(PackedTrace::new())
            }
        });
        match result {
            Ok(()) => Ok(Arc::clone(trace)),
            Err(e) => {
                // Do not cache the failure: clear the cell so a retry can
                // run the capture again.
                let mut cells = self.cells.lock().expect("trace store poisoned");
                cells.remove(&key);
                Err(e)
            }
        }
    }

    /// Returns the basic-block lowering of `workload`'s trace, computing
    /// it at most once per (name, scale, content-hash) key. With a disk
    /// cache configured, a valid `.blk` file satisfies the request
    /// without capturing or lowering anything; otherwise the packed
    /// trace is obtained through [`TraceStore::get`] (so a workload
    /// requested both ways still captures exactly once), lowered, and
    /// the lowering persisted for the next process.
    ///
    /// # Errors
    ///
    /// Propagates the underlying capture's [`WorkloadError`]. A failed
    /// lowering is not cached, so a later call retries.
    pub fn get_blocks(&self, workload: &Workload) -> Result<Arc<BlockTrace>, WorkloadError> {
        let key = (workload.name(), workload.scale(), workload.content_hash());
        let cell = {
            let mut cells = self.block_cells.lock().expect("trace store poisoned");
            Arc::clone(cells.entry(key).or_default())
        };
        if let Some(blocks) = cell.get() {
            return Ok(Arc::clone(blocks));
        }
        // Lower outside the map lock; the per-key cell guarantees one
        // winner even under concurrent requests.
        let mut result = Ok(());
        let blocks = cell.get_or_init(|| {
            let path = self.blocks_cache_path(workload);
            if let Some(path) = &path {
                if let Some(blocks) = load_cached_blocks(path) {
                    self.block_disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::new(blocks);
                }
            }
            match self.get(workload) {
                Ok(trace) => {
                    self.lowerings.fetch_add(1, Ordering::Relaxed);
                    let blocks = BlockTrace::lower(&trace);
                    if let Some(path) = &path {
                        // Best-effort, like the packed-trace cache.
                        let _ = store_cached_blocks(path, &blocks);
                    }
                    Arc::new(blocks)
                }
                Err(e) => {
                    result = Err(e);
                    Arc::new(BlockTrace::default())
                }
            }
        });
        match result {
            Ok(()) => Ok(Arc::clone(blocks)),
            Err(e) => {
                let mut cells = self.block_cells.lock().expect("trace store poisoned");
                cells.remove(&key);
                Err(e)
            }
        }
    }

    /// Number of emulator captures this store has performed (disk-cache
    /// loads do not count).
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Number of block lowerings this store has performed.
    pub fn lowerings(&self) -> u64 {
        self.lowerings.load(Ordering::Relaxed)
    }

    /// Number of traces satisfied from the on-disk cache.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Number of block lowerings satisfied from the on-disk cache
    /// (each one skips a capture *and* a lowering).
    pub fn block_disk_hits(&self) -> u64 {
        self.block_disk_hits.load(Ordering::Relaxed)
    }

    fn load_or_capture(&self, workload: &Workload) -> Result<PackedTrace, WorkloadError> {
        let path = self.cache_path(workload);
        if let Some(path) = &path {
            if let Some(trace) = load_cached(path) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(trace);
            }
        }
        let trace = workload.capture()?;
        self.captures.fetch_add(1, Ordering::Relaxed);
        if let Some(path) = &path {
            // Cache writes are best-effort: a read-only or full disk must
            // not fail the simulation.
            let _ = store_cached(path, &trace);
        }
        Ok(trace)
    }

    fn cache_path(&self, workload: &Workload) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        Some(dir.join(format!(
            "{}-{}-v{}-{:016x}.trc",
            workload.name(),
            workload.scale(),
            TRACE_FORMAT_VERSION,
            workload.content_hash(),
        )))
    }

    /// The `.blk` sibling of [`cache_path`](Self::cache_path): same
    /// content-hash key, plus the block-format version (the embedded
    /// record stream carries the trace-format version itself).
    fn blocks_cache_path(&self, workload: &Workload) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        Some(dir.join(format!(
            "{}-{}-v{}.{}-{:016x}.blk",
            workload.name(),
            workload.scale(),
            TRACE_FORMAT_VERSION,
            BLOCK_FORMAT_VERSION,
            workload.content_hash(),
        )))
    }
}

fn load_cached(path: &Path) -> Option<PackedTrace> {
    let file = fs::File::open(path).ok()?;
    // A corrupt or truncated cache file is treated as a miss.
    PackedTrace::read_from(io::BufReader::new(file)).ok()
}

fn store_cached(path: &Path, trace: &PackedTrace) -> io::Result<()> {
    write_atomically(path, |file| trace.write_to(file))
}

fn load_cached_blocks(path: &Path) -> Option<BlockTrace> {
    let file = fs::File::open(path).ok()?;
    // A corrupt, truncated or stale cache file is treated as a miss.
    BlockTrace::read_from(io::BufReader::new(file)).ok()
}

fn store_cached_blocks(path: &Path, blocks: &BlockTrace) -> io::Result<()> {
    write_atomically(path, |file| blocks.write_to(file))
}

fn write_atomically(
    path: &Path,
    write: impl FnOnce(&mut io::BufWriter<fs::File>) -> io::Result<()>,
) -> io::Result<()> {
    let dir = path.parent().expect("cache path has a parent");
    fs::create_dir_all(dir)?;
    // Write to a temporary sibling then rename, so concurrent sweeps
    // never observe a half-written file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let mut file = io::BufWriter::new(fs::File::create(&tmp)?);
    write(&mut file)?;
    io::Write::flush(&mut file)?;
    drop(file);
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integer::IntBenchmark;

    fn test_workload() -> Workload {
        IntBenchmark::Compress.workload(Scale::Test)
    }

    #[test]
    fn capture_happens_once() {
        let store = TraceStore::new();
        let w = test_workload();
        let a = store.get(&w).unwrap();
        let b = store.get(&w).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.captures(), 1);
        assert_eq!(store.disk_hits(), 0);
        assert_eq!(a.len() as u64, a.stats().total);
    }

    #[test]
    fn concurrent_requests_share_one_capture() {
        let store = TraceStore::new();
        let w = test_workload();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| store.get(&w).unwrap().len()))
                .collect();
            let lens: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(lens.windows(2).all(|w| w[0] == w[1]));
        });
        assert_eq!(store.captures(), 1);
    }

    #[test]
    fn disk_cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("aurora-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let w = test_workload();

        let first = TraceStore::with_cache_dir(&dir);
        let a = first.get(&w).unwrap();
        assert_eq!((first.captures(), first.disk_hits()), (1, 0));

        let second = TraceStore::with_cache_dir(&dir);
        let b = second.get(&w).unwrap();
        assert_eq!((second.captures(), second.disk_hits()), (0, 1));
        assert_eq!(*a, *b);

        // A corrupt cache file falls back to capture.
        let path = second.cache_path(&w).unwrap();
        fs::write(&path, b"junk").unwrap();
        let third = TraceStore::with_cache_dir(&dir);
        let c = third.get(&w).unwrap();
        assert_eq!((third.captures(), third.disk_hits()), (1, 0));
        assert_eq!(*a, *c);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn block_disk_cache_skips_capture_and_lowering() {
        let dir = std::env::temp_dir().join(format!("aurora-blk-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let w = test_workload();

        // Cold: capture + lower, then persist the lowering.
        let first = TraceStore::with_cache_dir(&dir);
        let a = first.get_blocks(&w).unwrap();
        assert_eq!(
            (first.captures(), first.lowerings(), first.block_disk_hits()),
            (1, 1, 0)
        );

        // Warm: the .blk file alone satisfies the request.
        let second = TraceStore::with_cache_dir(&dir);
        let b = second.get_blocks(&w).unwrap();
        assert_eq!(
            (
                second.captures(),
                second.lowerings(),
                second.block_disk_hits()
            ),
            (0, 0, 1)
        );
        assert_eq!(*a, *b, "cached lowering must reproduce the fresh one");

        // A corrupt .blk is a miss: the trace is re-read (or recaptured)
        // and re-lowered, never trusted.
        let path = second.blocks_cache_path(&w).unwrap();
        fs::write(&path, b"junk").unwrap();
        let third = TraceStore::with_cache_dir(&dir);
        let c = third.get_blocks(&w).unwrap();
        assert_eq!((third.lowerings(), third.block_disk_hits()), (1, 0));
        assert_eq!(*a, *c);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_named_variants_get_distinct_traces() {
        use crate::floating::FpBenchmark;
        let store = TraceStore::new();
        let sw = FpBenchmark::Alvinn.workload(Scale::Test);
        let dw = FpBenchmark::Alvinn.workload_doubleword(Scale::Test);
        let a = store.get(&sw).unwrap();
        let b = store.get(&dw).unwrap();
        assert_eq!(store.captures(), 2);
        assert_ne!(*a, *b, "variants must not share a memo cell");
    }

    #[test]
    fn content_hash_distinguishes_kernels() {
        let a = IntBenchmark::Compress.workload(Scale::Test).content_hash();
        let b = IntBenchmark::Espresso.workload(Scale::Test).content_hash();
        let a2 = IntBenchmark::Compress.workload(Scale::Test).content_hash();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }
}
