//! The six SPEC92-integer-like kernels (§4.1).
//!
//! Each kernel is a from-scratch mini-MIPS program that mimics its
//! benchmark's dominant behaviour rather than its semantics:
//!
//! | kernel | models | character |
//! |---|---|---|
//! | espresso | two-level logic minimisation | bit-vector AND/OR over cube arrays, data-dependent popcount loops |
//! | li | Lisp interpreter | tagged-node heap traversal (pointer chasing), cons allocation, sweep |
//! | eqntott | truth-table generation | tight lexicographic compares and swaps over large row arrays |
//! | compress | LZW compression | byte stream hashing into a large table, insert/emit on miss |
//! | sc | spreadsheet | row-major recalculation plus strided column sums |
//! | gcc | compiler | jump-table lexing, tree descent, indirect calls over many small functions |
//!
//! Real programs execute a few kilobytes of *hot* code that alternates at
//! fine grain between many small routines — that is what produces the
//! paper's ~96.5 % base-model instruction-cache hit rate. The kernels
//! reproduce it structurally: their inner loops are unrolled over
//! generated *clone routines* (each clone textually distinct), so
//! instruction fetch rotates through a footprint comparable to the 1–4 KB
//! caches under study.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

use crate::workload::{words_data, Scale, Workload};

/// The integer benchmark suite of paper Tables 3–5 and Figures 4–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntBenchmark {
    /// Boolean-function minimiser (cube operations).
    Espresso,
    /// XLISP interpreter (pointer chasing).
    Li,
    /// Truth-table to PLA converter (sorting/comparison).
    Eqntott,
    /// LZW file compression (hashing).
    Compress,
    /// Spreadsheet recalculation.
    Sc,
    /// GNU C compiler (irregular control flow).
    Gcc,
}

impl IntBenchmark {
    /// All six benchmarks in the paper's table order.
    pub const ALL: [IntBenchmark; 6] = [
        IntBenchmark::Espresso,
        IntBenchmark::Li,
        IntBenchmark::Eqntott,
        IntBenchmark::Compress,
        IntBenchmark::Sc,
        IntBenchmark::Gcc,
    ];

    /// The benchmark's SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            IntBenchmark::Espresso => "espresso",
            IntBenchmark::Li => "li",
            IntBenchmark::Eqntott => "eqntott",
            IntBenchmark::Compress => "compress",
            IntBenchmark::Sc => "sc",
            IntBenchmark::Gcc => "gcc",
        }
    }

    /// Builds the kernel at the given scale.
    pub fn workload(self, scale: Scale) -> Workload {
        let src = match self {
            IntBenchmark::Espresso => espresso(scale),
            IntBenchmark::Li => li(scale),
            IntBenchmark::Eqntott => eqntott(scale),
            IntBenchmark::Compress => compress(scale),
            IntBenchmark::Sc => sc(scale),
            IntBenchmark::Gcc => gcc(scale),
        };
        Workload::assemble(self.name(), scale, &src)
    }
}

impl fmt::Display for IntBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a benchmark name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError(pub(crate) String);

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`", self.0)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for IntBenchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IntBenchmark::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

/// Formats `.byte` lines from a generator function over indices.
pub(crate) fn byte_table(n: usize, f: impl Fn(usize) -> u8) -> String {
    let mut out = String::with_capacity(n * 5);
    for start in (0..n).step_by(16) {
        out.push_str("  .byte ");
        for i in start..(start + 16).min(n) {
            if i > start {
                out.push_str(", ");
            }
            out.push_str(&f(i).to_string());
        }
        out.push('\n');
    }
    out
}

/// espresso: cube intersection + sharp over bit-vector arrays. The B and
/// OUT cubes are visited through a shuffled permutation (set operations in
/// the real program follow cover lists, not array order), and a popcount
/// histogram adds scattered single-word stores.
fn espresso(scale: Scale) -> String {
    let clones = 12;
    let group = 64; // cube-loop iterations of `clones` cubes each
    let ncubes = clones * group; // 768
    let nw = 4; // words per cube
    let cube_bytes = nw * 4;
    let iters = scale.factor();
    let a = words_data(0xE59, ncubes * nw, 0x1_0000, 12);
    let b = words_data(0xE5A, ncubes * nw, 0x1_0000, 12);
    // A shuffled permutation of cube indices.
    let mut rng = SmallRng::seed_from_u64(0xE5B);
    let mut perm: Vec<u32> = (0..ncubes as u32).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut perm_words = String::new();
    for chunk in perm.chunks(12) {
        perm_words.push_str("  .word ");
        perm_words.push_str(
            &chunk
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        );
        perm_words.push('\n');
    }

    // Clone routines: intersect_k and sharp_k, textually distinct. They
    // are laid out in shuffled order so consecutive *calls* are not
    // memory-sequential (real call graphs scatter the hot text).
    let mut routines = String::new();
    let layout = [7usize, 2, 10, 0, 5, 11, 3, 8, 1, 9, 4, 6];
    for &k in layout.iter().take(clones) {
        let bias = k % 3;
        routines.push_str(&format!(
            r#"
        # intersect_{k}: OUT[p] = A & B[p], histogram of biased popcount
        intersect_{k}:
            lw   $t9, 0($s6)
            sll  $t9, $t9, 4
            la   $t2, b_cubes
            addu $t2, $t2, $t9
            la   $t3, out_cubes
            addu $t3, $t3, $t9
            li   $t0, {nw}
            move $t1, $s0
            li   $v0, {bias}
        iw_loop_{k}:
            lw   $t4, 0($t1)
            lw   $t5, 0($t2)
            and  $t6, $t4, $t5
            sw   $t6, 0($t3)
        ipc_loop_{k}:
            beq  $t6, $zero, ipc_done_{k}
            nop
            addiu $t7, $t6, -1
            and  $t6, $t6, $t7
            b    ipc_loop_{k}
            addiu $v0, $v0, 1
        ipc_done_{k}:
            addiu $t1, $t1, 4
            addiu $t2, $t2, 4
            addiu $t3, $t3, 4
            addiu $t0, $t0, -1
            bgtz $t0, iw_loop_{k}
            nop
            andi $t8, $v0, 63
            sll  $t8, $t8, 2
            la   $t7, hist
            addu $t7, $t7, $t8
            lw   $t6, 0($t7)
            addiu $t6, $t6, 1
            sw   $t6, 0($t7)
            jr   $ra
            nop

        # sharp_{k}: $v0 = 1 if A & ~OUT[p] is nonempty (early exit)
        sharp_{k}:
            lw   $t9, 0($s6)
            sll  $t9, $t9, 4
            la   $t2, out_cubes
            addu $t2, $t2, $t9
            li   $t0, {nw}
            move $t1, $s0
            li   $v0, 0
        sw_loop_{k}:
            lw   $t4, 0($t1)
            lw   $t5, 0($t2)
            nor  $t6, $t5, $t5
            and  $t6, $t4, $t6
            bne  $t6, $zero, sharp_live_{k}
            nop
            addiu $t1, $t1, 4
            addiu $t2, $t2, 4
            addiu $t0, $t0, -1
            bgtz $t0, sw_loop_{k}
            nop
            jr   $ra
            nop
        sharp_live_{k}:
            li   $v0, {live}
            jr   $ra
            nop
        "#,
            live = 1 + k % 2,
        ));
    }
    // The cube loop: one unrolled group calls every clone once.
    let mut islots = String::new();
    let mut sslots = String::new();
    for k in 0..clones {
        islots.push_str(&format!(
            "            jal  intersect_{k}\n            nop\n            \
             addiu $s0, $s0, {cube_bytes}\n            addiu $s6, $s6, 4\n"
        ));
        sslots.push_str(&format!(
            "            jal  sharp_{k}\n            nop\n            \
             addu $s5, $s5, $v0\n            addiu $s0, $s0, {cube_bytes}\n            \
             addiu $s6, $s6, 4\n"
        ));
    }
    format!(
        r#"
        .data
        a_cubes:
        {a}
        b_cubes:
        {b}
        perm:
        {perm_words}
        out_cubes: .space {out_bytes}
        hist: .space 256
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s0, a_cubes
            la   $s6, perm
            li   $s3, {group}
        cube_loop:
{islots}
            addiu $s3, $s3, -1
            bgtz $s3, cube_loop
            nop
            la   $s0, a_cubes
            la   $s6, perm
            li   $s3, {group}
            li   $s5, 0
        sharp_loop:
{sslots}
            addiu $s3, $s3, -1
            bgtz $s3, sharp_loop
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        {routines}
        "#,
        out_bytes = ncubes * cube_bytes,
    )
}

/// li: tagged-node heap traversal with the step body unrolled over 24
/// textually distinct clones, plus cons allocation rotating through a
/// 64 KB new space and a sweep over the freshly allocated cells.
fn li(scale: Scale) -> String {
    let nodes = 4096usize; // 64 KB heap of 16-byte nodes
    let cons = 1024;
    let clones = 8; // hot traversal loop ~1 KB
    let groups = 768; // traversal steps = clones * groups
    let iters = scale.factor();
    let mut rng = SmallRng::seed_from_u64(0x11);
    let mut heap = String::new();
    for start in (0..nodes).step_by(4) {
        heap.push_str("  .word ");
        for i in start..(start + 4).min(nodes) {
            if i > start {
                heap.push_str(", ");
            }
            let tag = rng.gen_range(0..4u32);
            let val = rng.gen_range(0..1_000_000u32);
            let car = rng.gen_range(0..nodes as u32);
            let cdr = rng.gen_range(0..nodes as u32);
            heap.push_str(&format!("{tag}, {val}, {car}, {cdr}"));
        }
        heap.push('\n');
    }
    // A colder mark phase: 12 generated routines touching heap regions.
    let mut marks = String::new();
    for k in 0..12 {
        marks.push_str(&format!(
            r#"
        mark_{k}:
            lw   $t0, {off}($s0)
            srl  $t1, $t0, {sh}
            xor  $t0, $t0, $t1
            andi $t0, $t0, 4095
            sll  $t0, $t0, 2
            addu $t2, $s0, $t0
            lw   $t3, 0($t2)
            addiu $t3, $t3, 1
            sw   $t3, 0($t2)
            addiu $s0, $s0, 64
        "#,
            off = 4 * (k % 4),
            sh = 3 + k % 5,
        ));
    }
    // Unrolled traversal steps: each clone is one full tag dispatch.
    let mut steps = String::new();
    for k in 0..clones {
        // Vary the tag test order per clone so the code is distinct.
        let (first, second) = if k % 2 == 0 { (1, 2) } else { (2, 1) };
        steps.push_str(&format!(
            r#"
        step_{k}:
            sll  $t0, $s1, 4
            addu $t0, $s0, $t0
            lw   $t1, 0($t0)
            lw   $t2, 4($t0)
            beq  $t1, $zero, tag0_{k}
            nop
            li   $t4, {first}
            beq  $t1, $t4, tagf_{k}
            nop
            li   $t4, {second}
            beq  $t1, $t4, tags_{k}
            nop
            addiu $t2, $t2, {incr}
            sw   $t2, 4($t0)
            b    nexts_{k}
            nop
        tag0_{k}:
            addu $s5, $s5, $t2
            b    nexts_{k}
            nop
        tagf_{k}:
            xor  $s5, $s5, $t2
            b    nexts_{k}
            nop
        tags_{k}:
            lw   $s1, 8($t0)
            b    stepd_{k}
            nop
        nexts_{k}:
            lw   $s1, 12($t0)
        stepd_{k}:
        "#,
            incr = 1 + k % 3,
        ));
    }
    format!(
        r#"
        .data
        heap:
        {heap}
        newspace: .space {new_bytes}
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s0, heap
            li   $s1, 0
            li   $s2, {groups}
            li   $s5, 0
        trav:
        {steps}
            addiu $s2, $s2, -1
            bgtz $s2, trav
            nop
            # cons: bump-allocate into a rotating quarter of the new space
            andi $t0, $s7, 3
            sll  $t0, $t0, 14
            la   $s0, newspace
            addu $s0, $s0, $t0
            move $s6, $s0
            li   $s2, {cons}
            li   $t5, 0
        consl:
            sw   $t5, 12($s0)
            sw   $s5, 4($s0)
            sw   $zero, 0($s0)
            sw   $zero, 8($s0)
            move $t5, $s0
            addiu $s0, $s0, 16
            addiu $s2, $s2, -1
            bgtz $s2, consl
            nop
            # sweep: touch every freshly allocated cell's tag word
            move $s0, $s6
            li   $s2, {cons}
        sweep:
            lw   $t0, 0($s0)
            addiu $t0, $t0, 1
            sw   $t0, 0($s0)
            addiu $s0, $s0, 16
            addiu $s2, $s2, -1
            bgtz $s2, sweep
            nop
            # gc mark: a colder phase through 12 distinct routines
            la   $s0, heap
            li   $s2, 24
        gcl:
        {marks}
            addiu $s2, $s2, -1
            bgtz $s2, gcl
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
        new_bytes = 4 * cons * 16,
        marks = marks,
    )
}

/// eqntott: lexicographic compare/swap of row pairs selected through a
/// shuffled permutation (quicksort partners are not adjacent in memory),
/// with the pair loop unrolled over 16 clone routines.
fn eqntott(scale: Scale) -> String {
    let clones = 16;
    let groups = 127; // pairs per pass = clones * groups
    let nrows = 2048usize;
    let rw = 4; // words per row
    let row_bytes = rw * 4;
    let iters = 4 * scale.factor();
    let rows = words_data(0xE9, nrows * rw, u32::MAX, 10);
    let mut rng = SmallRng::seed_from_u64(0xE9A);
    let mut perm: Vec<u32> = (0..nrows as u32).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let mut perm_words = String::new();
    for chunk in perm.chunks(12) {
        perm_words.push_str("  .word ");
        perm_words.push_str(
            &chunk
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(", "),
        );
        perm_words.push('\n');
    }

    let mut bodies = String::new();
    let layout = [11usize, 4, 14, 1, 8, 0, 12, 6, 2, 15, 9, 3, 13, 5, 10, 7];
    for &k in layout.iter().take(clones) {
        bodies.push_str(&format!(
            r#"
        cmp_{k}:
            lw   $t6, 0($s6)
            lw   $t7, 4($s6)
            sll  $t6, $t6, 4
            sll  $t7, $t7, 4
            la   $t1, rows
            addu $t1, $t1, $t6
            la   $t2, rows
            addu $t2, $t2, $t7
            li   $t0, {rw}
        cw_{k}:
            lw   $t3, 0($t1)
            lw   $t4, 0($t2)
            bne  $t3, $t4, cdone_{k}
            nop
            addiu $t1, $t1, 4
            addiu $t2, $t2, 4
            addiu $t0, $t0, -1
            bgtz $t0, cw_{k}
            nop
            jr   $ra
            nop
        cdone_{k}:
            sltu $t5, $t3, $t4
            bne  $t5, $zero, ceq_{k}
            nop
            addiu $s5, $s5, 1
            lw   $t6, 0($s6)
            lw   $t7, 4($s6)
            sll  $t6, $t6, 4
            sll  $t7, $t7, 4
            la   $t1, rows
            addu $t1, $t1, $t6
            la   $t2, rows
            addu $t2, $t2, $t7
            li   $t0, {rw}
        swp_{k}:
            lw   $t3, 0($t1)
            lw   $t4, 0($t2)
            sw   $t4, 0($t1)
            sw   $t3, 0($t2)
            addiu $t1, $t1, 4
            addiu $t2, $t2, 4
            addiu $t0, $t0, -1
            bgtz $t0, swp_{k}
            nop
        ceq_{k}:
            jr   $ra
            nop
        "#
        ));
    }
    let mut slots = String::new();
    for k in 0..clones {
        slots.push_str(&format!(
            "            jal  cmp_{k}\n            nop\n            addiu $s6, $s6, 4\n"
        ));
    }
    let _ = row_bytes;
    format!(
        r#"
        .data
        rows:
        {rows}
        perm:
        {perm_words}
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s6, perm
            li   $s1, {groups}
            li   $s5, 0
        cmp_loop:
{slots}
            addiu $s1, $s1, -1
            bgtz $s1, cmp_loop
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        {bodies}
        "#,
    )
}

/// compress: LZW-style hash-probe loop, unrolled over 24 clone bodies
/// with per-clone hash mixing.
fn compress(scale: Scale) -> String {
    let clones = 10;
    let groups = 1638; // chars per pass = clones * groups (~16 K)
    let hsize = 8192u32; // entries of 8 bytes: 64 KB table
    let iters = scale.factor();
    let inbytes = clones * groups;
    let input = byte_table(inbytes, {
        let mut rng = SmallRng::seed_from_u64(0xC0);
        let bytes: Vec<u8> = (0..inbytes).map(|_| rng.gen_range(0..=255)).collect();
        move |i| bytes[i]
    });
    // Cold dictionary-scrub routines (footprint without hot-loop bloat).
    let mut scrubs = String::new();
    for k in 0..12 {
        scrubs.push_str(&format!(
            r#"
        scrub_{k}:
            lw   $t0, {off}($s2)
            srl  $t1, $t0, {sh}
            subu $t0, $t0, $t1
            sw   $t0, {off}($s2)
            addiu $s2, $s2, 32
        "#,
            off = 4 * (k % 8),
            sh = 1 + k % 6,
        ));
    }
    let mut bodies = String::new();
    for k in 0..clones {
        let shift = 4 + k % 3; // hash mix varies per clone
        bodies.push_str(&format!(
            r#"
        ch_{k}:
            lbu  $t0, 0($s0)
            addiu $s0, $s0, 1
            sll  $t1, $s4, {shift}
            xor  $t1, $t1, $t0
            srl  $t5, $t1, {back}
            xor  $t1, $t1, $t5
            andi $t1, $t1, {hmask}
            sll  $t2, $t1, 3
            addu $t2, $s2, $t2
            lw   $t3, 0($t2)
            lw   $t4, 4($t2)
            bne  $t3, $s4, cmiss_{k}
            nop
            bne  $t4, $t0, cmiss_{k}
            nop
            move $s4, $t1
            b    cnext_{k}
            nop
        cmiss_{k}:
            sw   $s4, 0($s3)
            addiu $s3, $s3, 4
            sw   $s4, 0($t2)
            sw   $t0, 4($t2)
            move $s4, $t0
        cnext_{k}:
        "#,
            hmask = hsize - 1,
            back = 7 + k % 4,
        ));
    }
    format!(
        r#"
        .data
        input:
        {input}
        .align 2
        htab: .space {htab_bytes}
        outbuf: .space {out_bytes}
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s0, input
            li   $s1, {groups}
            la   $s2, htab
            la   $s3, outbuf
            li   $s4, 0
        cloop:
        {bodies}
            addiu $s1, $s1, -1
            bgtz $s1, cloop
            nop
            # cold phase: partial dictionary scrub through distinct routines
            la   $s2, htab
            li   $s1, 64
        scrub:
        {scrubs}
            addiu $s1, $s1, -1
            bgtz $s1, scrub
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
        htab_bytes = hsize * 8,
        out_bytes = inbytes * 4,
        scrubs = scrubs,
    )
}

/// sc: recalculation with 16 distinct generated cell formulas over a
/// ~96 KB grid (sequential, stream-friendly misses each pass) plus
/// strided column sums.
fn sc(scale: Scale) -> String {
    let rows = 193;
    let cols = 128;
    let clones = 16;
    let row_bytes = cols * 4;
    let iters = scale.factor();
    let grid = words_data(0x5C, rows * cols, 10_000, 12);

    // Each clone evaluates a different "formula" on (left, above).
    let mut formulas = String::new();
    for k in 0..clones {
        let op = match k % 4 {
            0 => "addu $t2, $t0, $t1",
            1 => "subu $t2, $t0, $t1",
            2 => "xor  $t2, $t0, $t1",
            _ => "or   $t2, $t0, $t1",
        };
        formulas.push_str(&format!(
            r#"
        cell_{k}:
            lw   $t0, -4($s1)
            lw   $t1, -{row_bytes}($s1)
            {op}
            sra  $t2, $t2, {shift}
            bgez $t2, cpos_{k}
            nop
            subu $t2, $zero, $t2
        cpos_{k}:
            addiu $t2, $t2, {k}
            sw   $t2, 0($s1)
            addiu $s1, $s1, 4
        "#,
            shift = 1 + k % 3,
        ));
    }
    // Min/max scan routines over 16-word segments, one per clone.
    let mut ranges = String::new();
    for k in 0..8 {
        let cmp = if k % 2 == 0 { "slt" } else { "sltu" };
        ranges.push_str(&format!(
            r#"
        rng_{k}:
            lw   $t0, 0($s1)
            lw   $t1, 4($s1)
            {cmp}  $t2, $t0, $t1
            beq  $t2, $zero, rmax_{k}
            nop
            move $t0, $t1
        rmax_{k}:
            lw   $t3, 8($s1)
            lw   $t4, 12($s1)
            {cmp}  $t5, $t3, $t4
            beq  $t5, $zero, rmin_{k}
            nop
            move $t3, $t4
        rmin_{k}:
            addu $s5, $t0, $t3
            addiu $s1, $s1, 16
        "#
        ));
    }
    format!(
        r#"
        .data
        grid:
        {grid}
        totals: .space {totals_bytes}
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s0, grid
            addiu $s1, $s0, {row_bytes}
            li   $s2, {cell_groups}
        recalc:
        {formulas}
            addiu $s2, $s2, -1
            bgtz $s2, recalc
            nop
            # strided column sums over 8 sampled columns
            li   $s3, 8
            li   $s4, 0
        colsel:
            sll  $t0, $s4, 2
            la   $t1, grid
            addu $t1, $t1, $t0
            li   $t2, {rows}
            li   $t3, 0
        colsum:
            lw   $t4, 0($t1)
            addu $t3, $t3, $t4
            addiu $t1, $t1, {row_bytes}
            addiu $t2, $t2, -1
            bgtz $t2, colsum
            nop
            la   $t5, totals
            sll  $t6, $s4, 2
            addu $t5, $t5, $t6
            sw   $t3, 0($t5)
            addiu $s4, $s4, 16
            addiu $s3, $s3, -1
            bgtz $s3, colsel
            nop
            # range pass: per-segment min/max via generated routines
            la   $s1, grid
            li   $s2, {range_groups}
        rangel:
        {ranges}
            addiu $s2, $s2, -1
            bgtz $s2, rangel
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
        cell_groups = (rows - 1) * cols / clones,
        totals_bytes = cols * 4,
        range_groups = 64,
        ranges = ranges,
    )
}

/// gcc: jump-table lexer, tree descent and indirect calls through a
/// function table of 24 generated routines — the most irregular control
/// flow in the suite.
fn gcc(scale: Scale) -> String {
    let inbytes = 6144usize;
    let tree_nodes = 1024usize;
    let nkeys = 600;
    let ncalls = 1024;
    let nfuncs = 24;
    let iters = scale.factor();

    let input = byte_table(inbytes, {
        let mut rng = SmallRng::seed_from_u64(0x6CC);
        let bytes: Vec<u8> = (0..inbytes).map(|_| rng.gen_range(0..=255)).collect();
        move |i| bytes[i]
    });
    // Character classes: skew towards identifiers like real source text.
    let ctype = byte_table(256, |c| match c % 10 {
        0..=4 => 0, // ident
        5..=6 => 1, // digit
        7..=8 => 2, // punct
        _ => 3,     // space
    });
    // A complete-binary-tree search structure: node = [val, left, right, 0].
    let mut rng = SmallRng::seed_from_u64(0x731);
    let mut tree = String::new();
    for i in 0..tree_nodes {
        let val = rng.gen_range(0..0x8000u32);
        let l = if 2 * i + 1 < tree_nodes {
            (2 * i + 1) as u32
        } else {
            0
        };
        let r = if 2 * i + 2 < tree_nodes {
            (2 * i + 2) as u32
        } else {
            0
        };
        tree.push_str(&format!("  .word {val}, {l}, {r}, 0\n"));
    }
    // Generated leaf functions with distinct bodies, reached via jalr,
    // laid out in shuffled order so round-robin calls scatter in memory.
    let mut funcs = String::new();
    let mut ftab_init = String::new();
    let layout: Vec<usize> = (0..nfuncs).map(|i| (i * 17 + 5) % nfuncs).collect();
    for &k in &layout {
        let c1 = 0x11 * (k + 1);
        let c2 = 3 + k % 6;
        funcs.push_str(&format!(
            r#"
        func{k}:
            la   $t0, globals
            lw   $t1, {off}($t0)
            sll  $t2, $t1, {sh}
            xor  $t1, $t1, $t2
            addiu $t1, $t1, {c1}
            srl  $t3, $t1, {c2}
            addu $t1, $t1, $t3
            sw   $t1, {off}($t0)
            lw   $t4, {off2}($t0)
            slt  $t5, $t4, $t1
            beq  $t5, $zero, f{k}_skip
            nop
            sw   $t1, {off2}($t0)
        f{k}_skip:
            jr   $ra
            nop
        "#,
            off = 4 * k,
            off2 = 4 * ((k + 3) % nfuncs),
            sh = 1 + (k % 4),
        ));
        ftab_init.push_str(&format!(
            "            la   $t1, func{k}\n            sw   $t1, {}($t0)\n",
            4 * k
        ));
    }
    format!(
        r#"
        .data
        src:
        {input}
        ctype:
        {ctype}
        .align 2
        tree:
        {tree}
        jtab: .space 16
        ftab: .space {ftab_bytes}
        globals: .space {globals_bytes}
        symtab: .space 65536
        obuf: .space {obuf_bytes}
        .text
        main:
            # Build the lexer jump table and function table at run time.
            la   $t0, jtab
            la   $t1, lex_ident
            sw   $t1, 0($t0)
            la   $t1, lex_digit
            sw   $t1, 4($t0)
            la   $t1, lex_punct
            sw   $t1, 8($t0)
            la   $t1, lex_space
            sw   $t1, 12($t0)
            la   $t0, ftab
{ftab_init}
            li   $s7, {iters}
        outer:
            # --- phase A: lexer with a jr-based switch ---
            la   $s0, src
            li   $s1, {inbytes}
            la   $s3, obuf
            li   $s4, 0
            li   $s5, 0
        lexloop:
            lbu  $t2, 0($s0)
            addiu $s0, $s0, 1
            la   $t3, ctype
            addu $t3, $t3, $t2
            lbu  $t4, 0($t3)
            sll  $t4, $t4, 2
            la   $t5, jtab
            addu $t5, $t5, $t4
            lw   $t6, 0($t5)
            jr   $t6
            nop
        lex_ident:
            sll  $s4, $s4, 1
            xor  $s4, $s4, $t2
            b    lex_next
            nop
        lex_digit:
            sll  $t7, $s5, 3
            sll  $t8, $s5, 1
            addu $s5, $t7, $t8
            addu $s5, $s5, $t2
            b    lex_next
            nop
        lex_punct:
            sw   $s4, 0($s3)
            addiu $s3, $s3, 4
            li   $s4, 0
            b    lex_next
            nop
        lex_space:
        lex_next:
            addiu $s1, $s1, -1
            bgtz $s1, lexloop
            nop
            # --- phase B: binary-tree descent for pseudo-random keys ---
            li   $s1, {nkeys}
            li   $s4, 12345
        btree:
            li   $t9, 1103515245
            mult $s4, $t9
            mflo $s4
            addiu $s4, $s4, 12345
            andi $t0, $s4, 0x7FFF
            li   $t1, 0
            la   $t2, tree
        bdesc:
            sll  $t3, $t1, 4
            addu $t3, $t2, $t3
            lw   $t4, 0($t3)
            beq  $t4, $t0, bfound
            nop
            slt  $t5, $t0, $t4
            beq  $t5, $zero, bright
            nop
            lw   $t1, 4($t3)
            b    bcheck
            nop
        bright:
            lw   $t1, 8($t3)
        bcheck:
            bgtz $t1, bdesc
            nop
        bfound:
            addiu $s1, $s1, -1
            bgtz $s1, btree
            nop
            # --- phase C: indirect calls through the function table ---
            li   $s1, {ncalls}
            li   $s2, 0
            li   $k0, {nfuncs}
        ccall:
            slt  $t9, $s2, $k0
            bne  $t9, $zero, cc_ok
            nop
            li   $s2, 0
        cc_ok:
            sll  $t0, $s2, 2
            la   $t1, ftab
            addu $t1, $t1, $t0
            lw   $t2, 0($t1)
            jalr $ra, $t2
            nop
            addiu $s2, $s2, 1
            addiu $s1, $s1, -1
            bgtz $s1, ccall
            nop
            # --- phase D: scattered symbol-table probes ---
            li   $s1, {nprobes}
            la   $s2, symtab
        syml:
            li   $t9, 1103515245
            mult $s4, $t9
            mflo $s4
            addiu $s4, $s4, 12345
            andi $t0, $s4, 0xFFFC
            addu $t1, $s2, $t0
            lw   $t2, 0($t1)
            addiu $t2, $t2, 1
            sw   $t2, 0($t1)
            addiu $s1, $s1, -1
            bgtz $s1, syml
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        {funcs}
        "#,
        ftab_bytes = 4 * nfuncs,
        globals_bytes = 4 * nfuncs,
        obuf_bytes = inbytes,
        nprobes = 1200,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_isa::OpKind;

    #[test]
    fn all_kernels_assemble_and_halt() {
        for b in IntBenchmark::ALL {
            let w = b.workload(Scale::Test);
            let trace = w.trace().unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(
                trace.stats.total > 20_000,
                "{b}: only {} instructions",
                trace.stats.total
            );
            assert!(
                trace.stats.total < 2_000_000,
                "{b}: {} instructions is too long for Test scale",
                trace.stats.total
            );
        }
    }

    #[test]
    fn kernels_have_integer_character() {
        for b in IntBenchmark::ALL {
            let trace = b.workload(Scale::Test).trace().unwrap();
            let s = &trace.stats;
            assert_eq!(s.fp_ops, 0, "{b} must not use the FPU");
            let mem = s.memory_fraction();
            assert!(
                (0.05..0.60).contains(&mem),
                "{b}: memory fraction {mem:.2} out of range"
            );
            let br = s.branches as f64 / s.total as f64;
            assert!((0.03..0.40).contains(&br), "{b}: branch fraction {br:.2}");
            assert!(s.stores > 0, "{b} must store");
        }
    }

    #[test]
    fn kernels_have_realistic_code_footprints() {
        // The clone structure should give each kernel a hot footprint in
        // the same ballpark as the 1-4 KB caches under study.
        for b in IntBenchmark::ALL {
            let w = b.workload(Scale::Test);
            let bytes = w.program().text_bytes();
            assert!(
                (1200..12_000).contains(&bytes),
                "{b}: text footprint {bytes} bytes"
            );
        }
    }

    #[test]
    fn gcc_uses_indirect_jumps() {
        let trace = IntBenchmark::Gcc.workload(Scale::Test).trace().unwrap();
        let indirect = trace
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Jump { register: true, .. }))
            .count();
        assert!(indirect > 1000, "gcc should jr/jalr a lot, got {indirect}");
    }

    #[test]
    fn li_chases_pointers() {
        let trace = IntBenchmark::Li.workload(Scale::Test).trace().unwrap();
        assert!(trace.stats.loads > trace.stats.stores);
    }

    #[test]
    fn compress_misses_spread_over_table() {
        let trace = IntBenchmark::Compress
            .workload(Scale::Test)
            .trace()
            .unwrap();
        let mut lines = std::collections::HashSet::new();
        for op in &trace.ops {
            if let OpKind::Load { ea, .. } = op.kind {
                lines.insert(ea / 32);
            }
        }
        assert!(
            lines.len() > 1000,
            "hash probes should span many lines: {}",
            lines.len()
        );
    }

    #[test]
    fn scale_increases_length() {
        let t = IntBenchmark::Eqntott.workload(Scale::Test).trace().unwrap();
        let s = IntBenchmark::Eqntott
            .workload(Scale::Small)
            .trace()
            .unwrap();
        assert!(s.stats.total > 3 * t.stats.total);
    }

    #[test]
    fn names_round_trip() {
        for b in IntBenchmark::ALL {
            assert_eq!(b.name().parse::<IntBenchmark>().unwrap(), b);
        }
        assert!("bogus".parse::<IntBenchmark>().is_err());
    }
}
