//! SPEC92-like synthetic workloads for the Aurora III study.
//!
//! The paper evaluates the architecture with the SPEC92 integer and
//! floating-point suites (§4.1). Those binaries and the authors' traces
//! are not available, so this crate provides *from-scratch kernels*, one
//! per benchmark, each written in mini-MIPS assembly and mimicking its
//! benchmark's dominant behaviour: instruction mix, working-set size,
//! branch character, store coalescing opportunity and floating-point
//! operation blend. The kernels execute on the functional
//! [`Emulator`](aurora_isa::Emulator) to produce the dynamic traces that
//! drive the cycle-level simulator.
//!
//! * [`IntBenchmark`] — espresso, li, eqntott, compress, sc, gcc,
//! * [`FpBenchmark`] — alvinn, doduc, ear, hydro2d, mdljdp2, nasa7, ora,
//!   spice2g6, su2cor,
//! * [`synthetic`] — a parameterised statistical trace generator for
//!   controlled experiments and stress tests.
//!
//! # Example
//!
//! ```
//! use aurora_workloads::{IntBenchmark, Scale};
//!
//! let espresso = IntBenchmark::Espresso.workload(Scale::Test);
//! let trace = espresso.trace().unwrap();
//! assert!(trace.stats.total > 10_000);
//! assert!(trace.stats.memory_fraction() > 0.05);
//! ```

mod floating;
mod integer;
mod store;
pub mod synthetic;
mod workload;

pub use floating::{FpBenchmark, FpLoadWidth};
pub use integer::IntBenchmark;
pub use store::TraceStore;
pub use workload::{Scale, Trace, Workload, WorkloadError};

/// Resolves a benchmark by its canonical name (`"espresso"`, `"alvinn"`,
/// …) at the given scale, searching the integer suite then the
/// floating-point suite. Returns `None` for an unknown name. This is the
/// lookup the `aurora-serve` wire protocol uses to turn workload strings
/// into kernels; floating-point benchmarks resolve to their default
/// single-word-load variant.
///
/// ```
/// use aurora_workloads::{workload_by_name, Scale};
///
/// let w = workload_by_name("compress", Scale::Test).unwrap();
/// assert_eq!(w.name(), "compress");
/// assert!(workload_by_name("no-such-kernel", Scale::Test).is_none());
/// ```
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    IntBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .map(|b| b.workload(scale))
        .or_else(|| {
            FpBenchmark::ALL
                .into_iter()
                .find(|b| b.name() == name)
                .map(|b| b.workload(scale))
        })
}
