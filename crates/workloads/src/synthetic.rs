//! Parameterised statistical trace generation.
//!
//! Kernels give realistic whole-program behaviour; controlled experiments
//! (unit tests, ablations, stress runs) often want a trace whose mix is a
//! *knob*. [`SyntheticConfig`] draws instruction kinds from configured
//! fractions, walks a bounded code footprint with realistic branch
//! behaviour, and mixes sequential with random data accesses over a
//! bounded working set.

use aurora_isa::{ArchReg, MemWidth, OpKind, TraceOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TEXT_BASE: u32 = 0x0040_0000;
const DATA_BASE: u32 = 0x1001_0000;

/// Knobs for the synthetic trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Trace length.
    pub instructions: u64,
    /// Fraction of integer loads.
    pub load_fraction: f64,
    /// Fraction of integer stores.
    pub store_fraction: f64,
    /// Fraction of conditional branches.
    pub branch_fraction: f64,
    /// Probability a branch is taken.
    pub branch_taken_prob: f64,
    /// Fraction of FPU arithmetic (split across add/mul/div/cvt).
    pub fp_fraction: f64,
    /// Static code footprint in bytes (distinct instruction addresses).
    pub code_footprint: u32,
    /// Data working-set size in bytes.
    pub data_working_set: u32,
    /// Probability a memory access continues a sequential stream rather
    /// than striking randomly into the working set.
    pub sequential_data_prob: f64,
    /// Probability an op consumes the previous op's destination (creates
    /// scoreboard pressure).
    pub dependency_prob: f64,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            instructions: 100_000,
            load_fraction: 0.20,
            store_fraction: 0.10,
            branch_fraction: 0.15,
            branch_taken_prob: 0.6,
            fp_fraction: 0.0,
            code_footprint: 4096,
            data_working_set: 64 * 1024,
            sequential_data_prob: 0.5,
            dependency_prob: 0.3,
            seed: 0xBEEF,
        }
    }
}

impl SyntheticConfig {
    /// Validates that the fractions form a sensible distribution.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let sum =
            self.load_fraction + self.store_fraction + self.branch_fraction + self.fp_fraction;
        if !(0.0..=1.0).contains(&sum) {
            return Err(format!("kind fractions sum to {sum}, must be <= 1"));
        }
        for (name, p) in [
            ("branch_taken_prob", self.branch_taken_prob),
            ("sequential_data_prob", self.sequential_data_prob),
            ("dependency_prob", self.dependency_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} out of [0,1]"));
            }
        }
        if self.code_footprint < 8 || !self.code_footprint.is_multiple_of(4) {
            return Err(format!("code_footprint {} invalid", self.code_footprint));
        }
        if self.data_working_set < 64 {
            return Err("data_working_set too small".to_owned());
        }
        Ok(())
    }

    /// Builds the generator iterator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SyntheticConfig::validate`]).
    pub fn generate(&self) -> Generator {
        self.validate()
            .unwrap_or_else(|e| panic!("invalid synthetic config: {e}"));
        Generator {
            cfg: self.clone(),
            rng: SmallRng::seed_from_u64(self.seed),
            pc: TEXT_BASE,
            seq_ptr: DATA_BASE,
            emitted: 0,
            last_dst: None,
            next_reg: 8,
        }
    }

    /// Convenience: collects the whole trace.
    pub fn collect(&self) -> Vec<TraceOp> {
        self.generate().collect()
    }
}

/// Streaming iterator over a synthetic trace.
#[derive(Debug, Clone)]
pub struct Generator {
    cfg: SyntheticConfig,
    rng: SmallRng,
    pc: u32,
    seq_ptr: u32,
    emitted: u64,
    last_dst: Option<ArchReg>,
    next_reg: u8,
}

impl Generator {
    fn pick_dst(&mut self) -> ArchReg {
        let r = ArchReg::Int(self.next_reg);
        self.next_reg = 8 + (self.next_reg - 7) % 16;
        r
    }

    fn pick_src(&mut self) -> ArchReg {
        if let Some(d) = self.last_dst {
            if self.rng.gen_bool(self.cfg.dependency_prob) {
                return d;
            }
        }
        ArchReg::Int(self.rng.gen_range(8..24))
    }

    fn data_address(&mut self) -> u32 {
        if self.rng.gen_bool(self.cfg.sequential_data_prob) {
            self.seq_ptr = self.seq_ptr.wrapping_add(4);
            if self.seq_ptr >= DATA_BASE + self.cfg.data_working_set {
                self.seq_ptr = DATA_BASE;
            }
            self.seq_ptr
        } else {
            DATA_BASE + (self.rng.gen_range(0..self.cfg.data_working_set) & !3)
        }
    }

    fn advance_pc(&mut self, redirect: Option<u32>) {
        self.pc = match redirect {
            Some(t) => t,
            None => {
                let next = self.pc + 4;
                if next >= TEXT_BASE + self.cfg.code_footprint {
                    TEXT_BASE
                } else {
                    next
                }
            }
        };
    }
}

impl Iterator for Generator {
    type Item = TraceOp;

    fn next(&mut self) -> Option<TraceOp> {
        if self.emitted >= self.cfg.instructions {
            return None;
        }
        self.emitted += 1;
        let pc = self.pc;
        let c = &self.cfg;
        let roll: f64 = self.rng.gen();
        let load_t = c.load_fraction;
        let store_t = load_t + c.store_fraction;
        let branch_t = store_t + c.branch_fraction;
        let fp_t = branch_t + c.fp_fraction;

        let mut redirect = None;
        let op = if roll < load_t {
            let ea = self.data_address();
            let dst = self.pick_dst();
            let src = self.pick_src();
            self.last_dst = Some(dst);
            TraceOp {
                pc,
                kind: OpKind::Load {
                    ea,
                    width: MemWidth::Word,
                },
                dst: Some(dst),
                src1: Some(src),
                src2: None,
            }
        } else if roll < store_t {
            let ea = self.data_address();
            let s1 = self.pick_src();
            let s2 = self.pick_src();
            self.last_dst = None;
            TraceOp {
                pc,
                kind: OpKind::Store {
                    ea,
                    width: MemWidth::Word,
                },
                dst: None,
                src1: Some(s1),
                src2: Some(s2),
            }
        } else if roll < branch_t {
            let taken = self.rng.gen_bool(c.branch_taken_prob);
            let span = c.code_footprint / 4;
            let target = TEXT_BASE + 4 * self.rng.gen_range(0..span);
            if taken {
                redirect = Some(target);
            }
            let s1 = self.pick_src();
            self.last_dst = None;
            TraceOp {
                pc,
                kind: OpKind::Branch { taken, target },
                dst: None,
                src1: Some(s1),
                src2: None,
            }
        } else if roll < fp_t {
            let kind = match self.rng.gen_range(0..10) {
                0..=3 => OpKind::FpAdd,
                4..=6 => OpKind::FpMul,
                7 => OpKind::FpDiv,
                8 => OpKind::FpCvt,
                _ => OpKind::FpMove,
            };
            let fd = 2 * self.rng.gen_range(1..8u8);
            let fs = 2 * self.rng.gen_range(1..8u8);
            let ft = 2 * self.rng.gen_range(1..8u8);
            TraceOp {
                pc,
                kind,
                dst: Some(ArchReg::Fp(fd)),
                src1: Some(ArchReg::Fp(fs)),
                src2: Some(ArchReg::Fp(ft)),
            }
        } else {
            let dst = self.pick_dst();
            let s1 = self.pick_src();
            let s2 = self.pick_src();
            self.last_dst = Some(dst);
            TraceOp {
                pc,
                kind: OpKind::IntAlu,
                dst: Some(dst),
                src1: Some(s1),
                src2: Some(s2),
            }
        };
        // Note: the synthetic stream does not model delay slots — branch
        // redirects take effect on the next instruction. The simulator's
        // delay-slot chaining tolerates this (it simply sees the "slot" at
        // the target address).
        self.advance_pc(redirect);
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.cfg.instructions - self.emitted) as usize;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_isa::TraceStats;

    #[test]
    fn fractions_are_respected() {
        let cfg = SyntheticConfig {
            instructions: 50_000,
            load_fraction: 0.25,
            store_fraction: 0.10,
            branch_fraction: 0.15,
            fp_fraction: 0.10,
            ..Default::default()
        };
        let mut stats = TraceStats::default();
        for op in cfg.generate() {
            stats.record(&op);
        }
        assert_eq!(stats.total, 50_000);
        let loads = stats.loads as f64 / stats.total as f64;
        let stores = stats.stores as f64 / stats.total as f64;
        let branches = stats.branches as f64 / stats.total as f64;
        let fp = stats.fp_ops as f64 / stats.total as f64;
        assert!((loads - 0.25).abs() < 0.02, "{loads}");
        assert!((stores - 0.10).abs() < 0.02, "{stores}");
        assert!((branches - 0.15).abs() < 0.02, "{branches}");
        assert!((fp - 0.10).abs() < 0.02, "{fp}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig {
            instructions: 1_000,
            ..Default::default()
        };
        assert_eq!(cfg.collect(), cfg.collect());
        let other = SyntheticConfig { seed: 1, ..cfg };
        assert_ne!(other.collect(), cfg.collect());
    }

    #[test]
    fn code_footprint_bounds_pcs() {
        let cfg = SyntheticConfig {
            instructions: 10_000,
            code_footprint: 1024,
            ..Default::default()
        };
        for op in cfg.generate() {
            assert!(op.pc >= TEXT_BASE && op.pc < TEXT_BASE + 1024);
            assert_eq!(op.pc % 4, 0);
        }
    }

    #[test]
    fn working_set_bounds_addresses() {
        let cfg = SyntheticConfig {
            instructions: 10_000,
            data_working_set: 4096,
            ..Default::default()
        };
        for op in cfg.generate() {
            if let Some(ea) = op.kind.effective_address() {
                assert!((DATA_BASE..DATA_BASE + 4096 + 4).contains(&ea));
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = SyntheticConfig {
            load_fraction: 0.9,
            store_fraction: 0.9,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SyntheticConfig {
            branch_taken_prob: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SyntheticConfig {
            code_footprint: 6,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn size_hint_is_exact() {
        let cfg = SyntheticConfig {
            instructions: 123,
            ..Default::default()
        };
        let gen = cfg.generate();
        assert_eq!(gen.size_hint(), (123, Some(123)));
        assert_eq!(gen.count(), 123);
    }

    #[test]
    fn dependency_prob_creates_chains() {
        let chained = SyntheticConfig {
            instructions: 20_000,
            dependency_prob: 0.9,
            branch_fraction: 0.0,
            load_fraction: 0.0,
            store_fraction: 0.0,
            ..Default::default()
        };
        let mut hits = 0;
        let mut last: Option<ArchReg> = None;
        for op in chained.generate() {
            if let (Some(prev), true) = (last, op.sources().any(|s| Some(s) == last)) {
                let _ = prev;
                hits += 1;
            }
            last = op.dst;
        }
        assert!(hits > 15_000, "{hits}");
    }
}
