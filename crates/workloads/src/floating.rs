//! The nine SPEC92-floating-point-like kernels (§4.1, Table 6).
//!
//! | kernel | models | character |
//! |---|---|---|
//! | alvinn | neural-net training | serial dot-product accumulation, saxpy updates |
//! | doduc | Monte-Carlo reactor sim | branchy mixed arithmetic, occasional divides |
//! | ear | cochlea model | independent second-order filters (high ILP) |
//! | hydro2d | Navier-Stokes | 4-point stencil sweeps over double grids |
//! | mdljdp2 | molecular dynamics | pairwise distances with a divide per pair |
//! | nasa7 | seven NASA kernels | dense matrix multiply (j-inner, high ILP) |
//! | ora | optical ray tracing | serial sqrt/divide chains |
//! | spice2g6 | circuit simulation | sparse gather MVM, low FP fraction |
//! | su2cor | quantum physics | complex multiply-accumulate vectors |

use std::fmt;
use std::str::FromStr;

use crate::integer::ParseBenchmarkError;
use crate::workload::{doubles_data, words_data, Scale, Workload};

/// How double-precision values move between memory and the FPU.
///
/// The paper's Table 6 / Figure 9 simulations loaded each double operand
/// with **two 32-bit loads** (§5.9); the FPU being implemented adds
/// double-word loads and stores "which should improve performance". Both
/// are available here so that claim can be measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FpLoadWidth {
    /// Two `lwc1`/`swc1` per double — the paper's simulated condition.
    #[default]
    SingleWord,
    /// One `ldc1`/`sdc1` per double — the §5.9 extension.
    DoubleWord,
}

/// Rewrites every `ldc1`/`sdc1` into the equivalent `lwc1`/`swc1` pair.
///
/// Kernel delay slots never contain FP memory ops, so the 1-to-2 expansion
/// is safe.
fn expand_single_word(src: &str) -> String {
    let mut out = String::with_capacity(src.len() * 11 / 10);
    for line in src.lines() {
        let trimmed = line.trim_start();
        let (op, word_op) = if trimmed.starts_with("ldc1") {
            ("ldc1", "lwc1")
        } else if trimmed.starts_with("sdc1") {
            ("sdc1", "swc1")
        } else {
            out.push_str(line);
            out.push('\n');
            continue;
        };
        let indent = &line[..line.len() - trimmed.len()];
        let rest = trimmed[op.len()..].trim();
        // Parse "$fN, off(base)" with an optional trailing comment.
        let (operands, comment) = match rest.find('#') {
            Some(i) => (rest[..i].trim(), &rest[i..]),
            None => (rest, ""),
        };
        let (freg, mem) = operands.split_once(',').expect("fp mem operands");
        let n: u8 = freg
            .trim()
            .trim_start_matches("$f")
            .parse()
            .expect("fp register");
        let mem = mem.trim();
        let open = mem.find('(').expect("mem operand");
        let off: i64 = mem[..open].parse().expect("offset");
        let base = &mem[open..];
        out.push_str(&format!("{indent}{word_op} $f{n}, {off}{base} {comment}\n"));
        out.push_str(&format!(
            "{indent}{word_op} $f{}, {}{base}\n",
            n + 1,
            off + 4
        ));
    }
    out
}

/// The floating-point benchmark suite of Table 6 and Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBenchmark {
    /// Neural network training.
    Alvinn,
    /// Monte-Carlo simulation of a nuclear reactor.
    Doduc,
    /// Human-ear model (filter banks).
    Ear,
    /// Galactic-jet hydrodynamics.
    Hydro2d,
    /// Molecular dynamics (liquid argon).
    Mdljdp2,
    /// NASA kernel collection (matrix multiply dominant).
    Nasa7,
    /// Optical ray tracing.
    Ora,
    /// Analog circuit simulation.
    Spice2g6,
    /// Quark-gluon physics (complex arithmetic).
    Su2cor,
}

impl FpBenchmark {
    /// All nine benchmarks in the paper's Table 6 order.
    pub const ALL: [FpBenchmark; 9] = [
        FpBenchmark::Alvinn,
        FpBenchmark::Doduc,
        FpBenchmark::Ear,
        FpBenchmark::Hydro2d,
        FpBenchmark::Mdljdp2,
        FpBenchmark::Nasa7,
        FpBenchmark::Ora,
        FpBenchmark::Spice2g6,
        FpBenchmark::Su2cor,
    ];

    /// The benchmark's SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            FpBenchmark::Alvinn => "alvinn",
            FpBenchmark::Doduc => "doduc",
            FpBenchmark::Ear => "ear",
            FpBenchmark::Hydro2d => "hydro2d",
            FpBenchmark::Mdljdp2 => "mdljdp2",
            FpBenchmark::Nasa7 => "nasa7",
            FpBenchmark::Ora => "ora",
            FpBenchmark::Spice2g6 => "spice2g6",
            FpBenchmark::Su2cor => "su2cor",
        }
    }

    /// Builds the kernel at the given scale under the paper's simulated
    /// condition: each double operand moves as two 32-bit loads/stores.
    pub fn workload(self, scale: Scale) -> Workload {
        self.workload_with(scale, FpLoadWidth::SingleWord)
    }

    /// Builds the kernel using double-word FP loads/stores — the §5.9
    /// improvement the implemented FPU supports.
    pub fn workload_doubleword(self, scale: Scale) -> Workload {
        self.workload_with(scale, FpLoadWidth::DoubleWord)
    }

    /// Builds the kernel with an explicit [`FpLoadWidth`].
    pub fn workload_with(self, scale: Scale, width: FpLoadWidth) -> Workload {
        let src = match self {
            FpBenchmark::Alvinn => alvinn(scale),
            FpBenchmark::Doduc => doduc(scale),
            FpBenchmark::Ear => ear(scale),
            FpBenchmark::Hydro2d => hydro2d(scale),
            FpBenchmark::Mdljdp2 => mdljdp2(scale),
            FpBenchmark::Nasa7 => nasa7(scale),
            FpBenchmark::Ora => ora(scale),
            FpBenchmark::Spice2g6 => spice2g6(scale),
            FpBenchmark::Su2cor => su2cor(scale),
        };
        let src = match width {
            FpLoadWidth::SingleWord => expand_single_word(&src),
            FpLoadWidth::DoubleWord => src,
        };
        Workload::assemble(self.name(), scale, &src)
    }
}

impl fmt::Display for FpBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FpBenchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FpBenchmark::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError(s.to_owned()))
    }
}

/// alvinn: forward dot products with a serial accumulator, then saxpy
/// weight updates. Little instruction-level parallelism by construction.
fn alvinn(scale: Scale) -> String {
    let inputs = 64;
    let outputs = 32;
    let epochs = 3 * scale.factor();
    let w = doubles_data(0xA1, inputs * outputs, -1.0, 1.0, 6);
    let x = doubles_data(0xA2, inputs, -1.0, 1.0, 6);
    format!(
        r#"
        .data
        .align 3
        weights:
        {w}
        xvec:
        {x}
        yvec: .space {y_bytes}
        consts: .double 0.01
        .text
        main:
            la   $t0, consts
            ldc1 $f20, 0($t0)       # learning rate
            li   $s7, {epochs}
        epoch:
            # ---- forward: y[j] = sum_i x[i] * W[j][i] ----
            la   $s0, weights
            la   $s2, yvec
            li   $s3, {outputs}
        fwd_out:
            la   $s1, xvec
            li   $s4, {inputs}
            sub.d $f4, $f4, $f4     # acc = 0
        fwd_in:
            ldc1 $f6, 0($s1)
            ldc1 $f8, 0($s0)
            mul.d $f10, $f6, $f8
            add.d $f4, $f4, $f10    # serial accumulation chain
            addiu $s1, $s1, 8
            addiu $s0, $s0, 8
            addiu $s4, $s4, -1
            bgtz $s4, fwd_in
            nop
            sdc1 $f4, 0($s2)
            addiu $s2, $s2, 8
            addiu $s3, $s3, -1
            bgtz $s3, fwd_out
            nop
            # ---- backward: W[j][i] += lr * y[j] * x[i] ----
            la   $s0, weights
            la   $s2, yvec
            li   $s3, {outputs}
        bwd_out:
            ldc1 $f12, 0($s2)
            mul.d $f14, $f12, $f20  # delta
            la   $s1, xvec
            li   $s4, {inputs}
        bwd_in:
            ldc1 $f6, 0($s1)
            ldc1 $f8, 0($s0)
            mul.d $f10, $f6, $f14
            add.d $f8, $f8, $f10
            sdc1 $f8, 0($s0)
            addiu $s1, $s1, 8
            addiu $s0, $s0, 8
            addiu $s4, $s4, -1
            bgtz $s4, bwd_in
            nop
            addiu $s2, $s2, 8
            addiu $s3, $s3, -1
            bgtz $s3, bwd_out
            nop
            addiu $s7, $s7, -1
            bgtz $s7, epoch
            nop
            break
        "#,
        y_bytes = outputs * 8,
    )
}

/// doduc: branchy Monte-Carlo style arithmetic with table lookups and
/// occasional divides.
fn doduc(scale: Scale) -> String {
    let n = 8000;
    let iters = scale.factor();
    let xsect = doubles_data(0xD0D, 512, 0.1, 4.0, 6);
    format!(
        r#"
        .data
        .align 3
        consts: .double 4.656612873e-10, 0.3, 1.0, 2.5
        xsect:
        {xsect}
        .text
        main:
            la   $t0, consts
            ldc1 $f20, 0($t0)       # LCG scale
            ldc1 $f22, 8($t0)       # branch threshold
            ldc1 $f24, 16($t0)      # 1.0
            ldc1 $f26, 24($t0)      # 2.5
            sub.d $f8, $f8, $f8     # accumulator
            li   $s4, 987654321
            li   $s7, {iters}
        outer:
            li   $s1, {n}
        mc_loop:
            li   $t9, 1103515245
            mult $s4, $t9
            mflo $s4
            addiu $s4, $s4, 12345
            mtc1 $s4, $f4
            cvt.d.w $f4, $f4
            mul.d $f4, $f4, $f20    # u in (-1, 1)
            abs.d $f4, $f4          # u in [0, 1)
            c.lt.d $f4, $f22
            bc1t mc_rare
            nop
            # common path: cross-section table lookup + multiply-add blend
            srl  $t0, $s4, 8
            andi $t0, $t0, 511
            sll  $t0, $t0, 3
            la   $t1, xsect
            addu $t1, $t1, $t0
            ldc1 $f12, 0($t1)
            mul.d $f6, $f4, $f12
            add.d $f6, $f6, $f24
            mul.d $f10, $f6, $f4
            add.d $f8, $f8, $f10
            b    mc_next
            nop
        mc_rare:
            # rare path: a divide (cross-section lookup flavour)
            add.d $f6, $f4, $f24
            div.d $f10, $f26, $f6
            add.d $f8, $f8, $f10
        mc_next:
            addiu $s1, $s1, -1
            bgtz $s1, mc_loop
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
    )
}

/// ear: a bank of independent second-order filters — high ILP.
fn ear(scale: Scale) -> String {
    let filters = 32;
    let samples = 64;
    let iters = 4 * scale.factor();
    let a = doubles_data(0xEA1, filters, 0.1, 0.9, 6);
    let b = doubles_data(0xEA2, filters, 0.05, 0.5, 6);
    let x = doubles_data(0xEA3, samples, -1.0, 1.0, 6);
    format!(
        r#"
        .data
        .align 3
        coef_a:
        {a}
        coef_b:
        {b}
        signal:
        {x}
        state: .space {state_bytes}
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s0, signal
            li   $s1, {samples}
        sample:
            ldc1 $f4, 0($s0)        # x[n]
            la   $s2, coef_a
            la   $s3, coef_b
            la   $s4, state
            li   $s5, {filters}
        filt:
            ldc1 $f6, 0($s2)        # a[f]
            ldc1 $f8, 0($s4)        # y1[f]
            ldc1 $f12, 0($s3)       # b[f]
            mul.d $f10, $f6, $f4    # a*x   (independent across filters)
            mul.d $f14, $f12, $f8   # b*y1
            add.d $f16, $f10, $f14  # stage-1 output
            mul.d $f18, $f16, $f6   # stage-2 pole
            mul.d $f2, $f8, $f12    # stage-2 zero
            add.d $f16, $f18, $f2
            sub.d $f16, $f16, $f10  # stage-2 output
            sdc1 $f16, 0($s4)
            addiu $s2, $s2, 8
            addiu $s3, $s3, 8
            addiu $s4, $s4, 8
            addiu $s5, $s5, -1
            bgtz $s5, filt
            nop
            addiu $s0, $s0, 8
            addiu $s1, $s1, -1
            bgtz $s1, sample
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
        state_bytes = filters * 8,
    )
}

/// hydro2d: 4-point stencil sweeps between two double grids.
fn hydro2d(scale: Scale) -> String {
    let rows = 48;
    let cols = 48;
    let sweeps = 3 * scale.factor();
    let g = doubles_data(0x42D, rows * cols, 0.0, 10.0, 6);
    let row_bytes = cols * 8;
    format!(
        r#"
        .data
        .align 3
        grid_a:
        {g}
        grid_b: .space {grid_bytes}
        consts: .double 0.25
        .text
        main:
            la   $t0, consts
            ldc1 $f20, 0($t0)
            la   $s0, grid_a        # src
            la   $s1, grid_b        # dst
            li   $s7, {sweeps}
        sweep:
            # interior points, row-major
            addiu $s2, $s0, {first_interior}
            addiu $s3, $s1, {first_interior}
            li   $s4, {int_rows}
        row:
            li   $s5, {int_cols}
        col:
            ldc1 $f4, -8($s2)           # left
            ldc1 $f6, 8($s2)            # right
            ldc1 $f8, -{row_bytes}($s2) # up
            ldc1 $f10, {row_bytes}($s2) # down
            ldc1 $f2, 0($s2)            # centre
            add.d $f12, $f4, $f6        # flux terms
            add.d $f14, $f8, $f10
            mul.d $f18, $f12, $f20      # weighted fluxes
            mul.d $f22, $f14, $f20
            add.d $f16, $f18, $f22
            mul.d $f24, $f2, $f20       # centre damping
            add.d $f16, $f16, $f24
            sub.d $f16, $f16, $f2       # delta form
            sdc1 $f16, 0($s3)
            addiu $s2, $s2, 8
            addiu $s3, $s3, 8
            addiu $s5, $s5, -1
            bgtz $s5, col
            nop
            addiu $s2, $s2, 16      # skip boundary pair
            addiu $s3, $s3, 16
            addiu $s4, $s4, -1
            bgtz $s4, row
            nop
            # swap src and dst for the next sweep
            move $t0, $s0
            move $s0, $s1
            move $s1, $t0
            addiu $s7, $s7, -1
            bgtz $s7, sweep
            nop
            break
        "#,
        grid_bytes = rows * cols * 8,
        first_interior = row_bytes + 8,
        int_rows = rows - 2,
        int_cols = cols - 2,
    )
}

/// mdljdp2: pairwise distance computation with one divide per pair.
fn mdljdp2(scale: Scale) -> String {
    let particles = 256;
    let neighbours = 8;
    let iters = 2 * scale.factor();
    let px = doubles_data(0x3D1, particles, 0.5, 100.0, 6);
    let py = doubles_data(0x3D2, particles, 0.5, 100.0, 6);
    let pz = doubles_data(0x3D3, particles, 0.5, 100.0, 6);
    format!(
        r#"
        .data
        .align 3
        pos_x:
        {px}
        pos_y:
        {py}
        pos_z:
        {pz}
        force: .space {force_bytes}
        consts: .double 1.0
        .text
        main:
            la   $t0, consts
            ldc1 $f24, 0($t0)       # 1.0 for 1/r^2
            li   $s7, {iters}
        step:
            la   $s0, pos_x
            la   $s1, pos_y
            la   $s2, pos_z
            la   $s3, force
            li   $s4, {outer_count}
        particle:
            li   $s5, {neighbours}
            move $t0, $s0
            move $t1, $s1
            move $t2, $s2
            ldc1 $f4, 0($s0)        # xi
            ldc1 $f6, 0($s1)        # yi
            ldc1 $f8, 0($s2)        # zi
            ldc1 $f28, 0($s3)       # f accumulator
        pair:
            ldc1 $f10, 8($t0)       # xj
            ldc1 $f12, 8($t1)
            ldc1 $f14, 8($t2)
            sub.d $f10, $f4, $f10   # dx
            sub.d $f12, $f6, $f12
            sub.d $f14, $f8, $f14
            mul.d $f10, $f10, $f10
            mul.d $f12, $f12, $f12
            mul.d $f14, $f14, $f14
            add.d $f16, $f10, $f12
            add.d $f16, $f16, $f14  # r^2
            div.d $f18, $f24, $f16  # 1/r^2 (f24 set below)
            mul.d $f18, $f18, $f18  # 1/r^4 flavour
            add.d $f28, $f28, $f18
            addiu $t0, $t0, 8
            addiu $t1, $t1, 8
            addiu $t2, $t2, 8
            addiu $s5, $s5, -1
            bgtz $s5, pair
            nop
            sdc1 $f28, 0($s3)
            addiu $s0, $s0, 8
            addiu $s1, $s1, 8
            addiu $s2, $s2, 8
            addiu $s3, $s3, 8
            addiu $s4, $s4, -1
            bgtz $s4, particle
            nop
            addiu $s7, $s7, -1
            bgtz $s7, step
            nop
            break
        "#,
        force_bytes = particles * 8,
        outer_count = particles - neighbours - 1,
    )
}

/// nasa7: dense matrix multiply in dot-product form — the accumulator
/// lives in a register across the k loop, with a Frobenius-norm side
/// accumulation (the suite mixes several kernels), giving the high
/// FP-density, high-ILP profile of the real program.
fn nasa7(scale: Scale) -> String {
    let n = 24;
    let iters = scale.factor();
    let a = doubles_data(0x7A, n * n, -2.0, 2.0, 6);
    let b = doubles_data(0x7B, n * n, -2.0, 2.0, 6);
    format!(
        r#"
        .data
        .align 3
        mat_a:
        {a}
        mat_b:
        {b}
        mat_c: .space {c_bytes}
        .text
        main:
            li   $s7, {iters}
        mm:
            la   $s0, mat_a
            la   $s6, mat_c
            li   $s1, {n}           # i loop
            sub.d $f26, $f26, $f26  # norm accumulator
        iloop:
            la   $s2, mat_b
            li   $s3, {n}           # j loop
        jloop:
            move $t0, $s0           # &a[i][0]
            move $t1, $s2           # &b[0][j]
            li   $s5, {n}           # k loop
            sub.d $f8, $f8, $f8     # c accumulator in a register
        kloop:
            ldc1 $f4, 0($t0)        # a[i][k]
            ldc1 $f6, 0($t1)        # b[k][j]
            mul.d $f10, $f4, $f6
            add.d $f8, $f8, $f10    # c += a*b
            mul.d $f12, $f10, $f10
            add.d $f26, $f26, $f12  # norm += (a*b)^2
            addiu $t0, $t0, 8
            addiu $t1, $t1, {row_bytes}
            addiu $s5, $s5, -1
            bgtz $s5, kloop
            nop
            sdc1 $f8, 0($s6)
            addiu $s6, $s6, 8
            addiu $s2, $s2, 8       # next column of b
            addiu $s3, $s3, -1
            bgtz $s3, jloop
            nop
            addiu $s0, $s0, {row_bytes}
            addiu $s1, $s1, -1
            bgtz $s1, iloop
            nop
            addiu $s7, $s7, -1
            bgtz $s7, mm
            nop
            break
        "#,
        c_bytes = n * n * 8,
        row_bytes = n * 8,
    )
}

/// ora: ray-surface intersection with serial sqrt/divide chains.
fn ora(scale: Scale) -> String {
    let n = 2500;
    let iters = scale.factor();
    let rays = doubles_data(0x0AA, 512, 0.1, 2.0, 6);
    format!(
        r#"
        .data
        .align 3
        rays:
        {rays}
        consts: .double 1.0, 0.5, 4.0
        .text
        main:
            la   $t0, consts
            ldc1 $f20, 0($t0)       # 1.0
            ldc1 $f22, 8($t0)       # 0.5
            ldc1 $f24, 16($t0)      # 4.0
            sub.d $f28, $f28, $f28  # accumulated path length
            li   $s7, {iters}
        outer:
            la   $s0, rays
            li   $s1, {n}
            li   $s2, 0             # ray table cursor
        ray:
            andi $t0, $s2, 511
            sll  $t0, $t0, 3
            la   $t1, rays
            addu $t1, $t1, $t0
            ldc1 $f4, 0($t1)        # direction component d
            mul.d $f6, $f4, $f4     # b = d*d
            mul.d $f8, $f6, $f24    # scaled
            sub.d $f10, $f8, $f20   # disc = 4 d^2 - 1
            c.lt.d $f10, $f22
            bc1t miss_ray
            nop
            sqrt.d $f12, $f10       # serial: sqrt ...
            add.d $f14, $f12, $f6
            div.d $f16, $f20, $f14  # ... feeding a divide
            add.d $f28, $f28, $f16
        miss_ray:
            addiu $s2, $s2, 1
            addiu $s1, $s1, -1
            bgtz $s1, ray
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
    )
}

/// spice2g6: sparse gather matrix-vector product — memory-bound, low FP
/// fraction.
fn spice2g6(scale: Scale) -> String {
    let rows = 512;
    let nnz_per_row = 5;
    let xs = 1024;
    let iters = 4 * scale.factor();
    let nnz = rows * nnz_per_row;
    let colidx = words_data(0x5B1, nnz, xs as u32, 12);
    let vals = doubles_data(0x5B2, nnz, -1.0, 1.0, 6);
    let x = doubles_data(0x5B3, xs, -5.0, 5.0, 6);
    format!(
        r#"
        .data
        colidx:
        {colidx}
        .align 3
        vals:
        {vals}
        xvec:
        {x}
        yvec: .space {y_bytes}
        .text
        main:
            li   $s7, {iters}
        mvm:
            la   $s0, colidx
            la   $s1, vals
            la   $s2, yvec
            li   $s3, {rows}
        rowl:
            li   $s4, {nnz_per_row}
            sub.d $f4, $f4, $f4     # acc
        nzl:
            lw   $t0, 0($s0)        # column index
            sll  $t0, $t0, 3
            la   $t1, xvec
            addu $t1, $t1, $t0
            ldc1 $f6, 0($t1)        # x[col] gather
            ldc1 $f8, 0($s1)        # A value
            mul.d $f10, $f6, $f8
            add.d $f4, $f4, $f10
            addiu $s0, $s0, 4
            addiu $s1, $s1, 8
            addiu $s4, $s4, -1
            bgtz $s4, nzl
            nop
            sdc1 $f4, 0($s2)
            addiu $s2, $s2, 8
            addiu $s3, $s3, -1
            bgtz $s3, rowl
            nop
            addiu $s7, $s7, -1
            bgtz $s7, mvm
            nop
            break
        "#,
        y_bytes = rows * 8,
    )
}

/// su2cor: complex multiply-accumulate over interleaved re/im vectors.
fn su2cor(scale: Scale) -> String {
    let n = 512;
    let iters = 8 * scale.factor();
    let a = doubles_data(0x521, 2 * n, -1.0, 1.0, 6);
    let b = doubles_data(0x522, 2 * n, -1.0, 1.0, 6);
    format!(
        r#"
        .data
        .align 3
        vec_a:
        {a}
        vec_b:
        {b}
        vec_c: .space {c_bytes}
        .text
        main:
            li   $s7, {iters}
        outer:
            la   $s0, vec_a
            la   $s1, vec_b
            la   $s2, vec_c
            li   $s3, {n}
        cmul:
            ldc1 $f4, 0($s0)        # ar
            ldc1 $f6, 8($s0)        # ai
            ldc1 $f8, 0($s1)        # br
            ldc1 $f10, 8($s1)       # bi
            mul.d $f12, $f4, $f8    # ar*br
            mul.d $f14, $f6, $f10   # ai*bi
            mul.d $f16, $f4, $f10   # ar*bi
            mul.d $f18, $f6, $f8    # ai*br
            sub.d $f12, $f12, $f14  # cr
            add.d $f16, $f16, $f18  # ci
            sdc1 $f12, 0($s2)
            sdc1 $f16, 8($s2)
            addiu $s0, $s0, 16
            addiu $s1, $s1, 16
            addiu $s2, $s2, 16
            addiu $s3, $s3, -1
            bgtz $s3, cmul
            nop
            addiu $s7, $s7, -1
            bgtz $s7, outer
            nop
            break
        "#,
        c_bytes = 2 * n * 8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_isa::OpKind;

    #[test]
    fn all_kernels_assemble_and_halt() {
        for b in FpBenchmark::ALL {
            let w = b.workload(Scale::Test);
            let trace = w.trace().unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(
                trace.stats.total > 20_000,
                "{b}: only {} instructions",
                trace.stats.total
            );
        }
    }

    #[test]
    fn kernels_have_floating_point_character() {
        for b in FpBenchmark::ALL {
            let trace = b.workload(Scale::Test).trace().unwrap();
            let s = &trace.stats;
            let fp = s.fp_fraction();
            assert!(fp > 0.08, "{b}: fp fraction {fp:.3} too low");
            assert!(s.fp_loads > 0, "{b} must load FP data");
            assert!(
                s.fp_stores > 0 || b == FpBenchmark::Doduc || b == FpBenchmark::Ora,
                "{b} should store FP data"
            );
        }
    }

    #[test]
    fn ora_uses_sqrt_and_divide() {
        let trace = FpBenchmark::Ora.workload(Scale::Test).trace().unwrap();
        let sqrts = trace
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::FpSqrt)
            .count();
        let divs = trace.ops.iter().filter(|o| o.kind == OpKind::FpDiv).count();
        assert!(sqrts > 500, "sqrts {sqrts}");
        assert!(divs > 500, "divs {divs}");
    }

    #[test]
    fn mdljdp2_divides_per_pair() {
        let trace = FpBenchmark::Mdljdp2.workload(Scale::Test).trace().unwrap();
        let divs = trace.ops.iter().filter(|o| o.kind == OpKind::FpDiv).count();
        assert!(divs > 1000, "divs {divs}");
    }

    #[test]
    fn alvinn_is_serial_nasa7_is_parallel() {
        // Structural check: alvinn's adds form one chain per dot product
        // (every FpAdd writes the same accumulator), while nasa7's adds
        // write many different registers over a window.
        let alvinn = FpBenchmark::Alvinn.workload(Scale::Test).trace().unwrap();
        let adds: Vec<_> = alvinn
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::FpAdd)
            .take(64)
            .collect();
        let distinct: std::collections::HashSet<_> = adds.iter().map(|o| o.dst).collect();
        assert!(
            distinct.len() <= 2,
            "alvinn accumulators: {}",
            distinct.len()
        );
    }

    #[test]
    fn spice_has_low_fp_fraction() {
        let spice = FpBenchmark::Spice2g6.workload(Scale::Test).trace().unwrap();
        let nasa = FpBenchmark::Nasa7.workload(Scale::Test).trace().unwrap();
        assert!(spice.stats.fp_fraction() < nasa.stats.fp_fraction());
    }

    #[test]
    fn doduc_branches_on_fp_condition() {
        let trace = FpBenchmark::Doduc.workload(Scale::Test).trace().unwrap();
        let cmps = trace.ops.iter().filter(|o| o.kind == OpKind::FpCmp).count();
        assert!(cmps > 5000, "compares {cmps}");
    }

    #[test]
    fn names_round_trip() {
        for b in FpBenchmark::ALL {
            assert_eq!(b.name().parse::<FpBenchmark>().unwrap(), b);
        }
    }
}
