//! The [`Workload`] wrapper: an assembled kernel plus trace utilities.

use std::fmt;

use aurora_isa::{
    Assembler, EmuError, Emulator, Fnv1a, PackedTrace, Program, RunOutcome, TraceOp, TraceStats,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How long a kernel runs.
///
/// `Test` keeps unit tests fast; `Small` is the default used by the
/// benchmark harness (the paper itself truncated runs for the same
/// reason, §4.1); `Full` is for high-fidelity reproduction runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// A few tens of thousands of instructions.
    Test,
    /// A few hundred thousand instructions (harness default).
    #[default]
    Small,
    /// Millions of instructions.
    Full,
}

impl Scale {
    /// Multiplier applied to each kernel's base iteration count.
    pub fn factor(self) -> u32 {
        match self {
            Scale::Test => 1,
            Scale::Small => 6,
            Scale::Full => 40,
        }
    }

    /// Instruction budget guard for the emulator.
    pub fn instruction_limit(self) -> u64 {
        match self {
            Scale::Test => 3_000_000,
            Scale::Small => 30_000_000,
            Scale::Full => 300_000_000,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Full => "full",
        })
    }
}

/// Error produced while building or running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The kernel's emulation faulted.
    Emu(EmuError),
    /// The kernel did not halt within its instruction budget.
    DidNotHalt {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Emu(e) => write!(f, "emulation fault: {e}"),
            WorkloadError::DidNotHalt { limit } => {
                write!(f, "kernel did not halt within {limit} instructions")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Emu(e) => Some(e),
            WorkloadError::DidNotHalt { .. } => None,
        }
    }
}

impl From<EmuError> for WorkloadError {
    fn from(e: EmuError) -> Self {
        WorkloadError::Emu(e)
    }
}

/// A fully collected dynamic trace with its summary statistics.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The trace records in program order.
    pub ops: Vec<TraceOp>,
    /// Summary statistics.
    pub stats: TraceStats,
}

/// An assembled, runnable kernel.
#[derive(Debug, Clone)]
pub struct Workload {
    name: &'static str,
    scale: Scale,
    program: Program,
}

impl Workload {
    /// Wraps an assembled program.
    pub(crate) fn new(name: &'static str, scale: Scale, program: Program) -> Workload {
        Workload {
            name,
            scale,
            program,
        }
    }

    /// Assembles `source`, panicking with kernel context on failure
    /// (kernels are compiled-in constants; failing to assemble is a bug).
    pub(crate) fn assemble(name: &'static str, scale: Scale, source: &str) -> Workload {
        let program = Assembler::new()
            .assemble(source)
            .unwrap_or_else(|e| panic!("kernel `{name}` failed to assemble: {e}"));
        program
            .verify_delay_slots()
            .unwrap_or_else(|e| panic!("kernel `{name}`: {e}"));
        Workload::new(name, scale, program)
    }

    /// The benchmark name (e.g. `"espresso"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The scale this instance was built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the kernel, streaming each retired instruction into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if emulation faults or the kernel fails
    /// to halt within the scale's instruction budget.
    pub fn run_traced(&self, sink: impl FnMut(TraceOp)) -> Result<TraceStats, WorkloadError> {
        let limit = self.scale.instruction_limit();
        let mut stats = TraceStats::default();
        let mut sink = sink;
        let mut emu = Emulator::new(&self.program);
        let outcome = emu.run_traced(limit, |op| {
            stats.record(&op);
            sink(op);
        })?;
        if outcome != RunOutcome::Halted {
            return Err(WorkloadError::DidNotHalt { limit });
        }
        Ok(stats)
    }

    /// Runs the kernel and collects the whole trace.
    ///
    /// # Errors
    ///
    /// See [`Workload::run_traced`].
    pub fn trace(&self) -> Result<Trace, WorkloadError> {
        let mut ops = Vec::new();
        let stats = self.run_traced(|op| ops.push(op))?;
        Ok(Trace { ops, stats })
    }

    /// Runs the kernel once and captures the whole trace in packed form,
    /// ready for replay against any number of machine configurations (see
    /// [`TraceStore`](crate::TraceStore) for the memoising layer).
    ///
    /// # Errors
    ///
    /// See [`Workload::run_traced`].
    pub fn capture(&self) -> Result<PackedTrace, WorkloadError> {
        let mut trace = PackedTrace::new();
        self.run_traced(|op| trace.push(op))?;
        Ok(trace)
    }

    /// A stable FNV-1a hash of the assembled program's content (entry
    /// point, encoded instructions and initialised data). Used to key
    /// on-disk trace caches: two builds whose kernels differ in any way
    /// hash differently, so a stale cached trace can never be replayed.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u32(self.program.entry());
        h.write_u32(self.program.text_base());
        for instr in self.program.instructions() {
            h.write_u32(instr.encode());
        }
        let data = self.program.data();
        h.write_u32(data.base);
        h.write(&data.bytes);
        h.finish()
    }

    /// A stable fingerprint of the *dynamic trace identity* of this
    /// workload: kernel name, scale, and [`content_hash`]. Two workloads
    /// with equal trace hashes replay the same packed trace, so memoised
    /// per-trace results (the `aurora-serve` result store) key on this.
    ///
    /// [`content_hash`]: Workload::content_hash
    pub fn trace_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(self.name);
        h.write_str(&self.scale.to_string());
        h.write_u64(self.content_hash());
        h.finish()
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} static instructions)",
            self.name,
            self.scale,
            self.program.instructions().len()
        )
    }
}

/// Formats `n` pseudo-random words (from a seeded generator) as `.word`
/// directives, `per_line` values per line, each in `[0, bound)`.
pub(crate) fn words_data(seed: u64, n: usize, bound: u32, per_line: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::with_capacity(n * 8);
    for chunk_start in (0..n).step_by(per_line) {
        out.push_str("  .word ");
        let end = (chunk_start + per_line).min(n);
        for i in chunk_start..end {
            if i > chunk_start {
                out.push_str(", ");
            }
            out.push_str(&rng.gen_range(0..bound.max(1)).to_string());
        }
        out.push('\n');
    }
    out
}

/// Formats `n` pseudo-random doubles in `[lo, hi)` as `.double` directives.
pub(crate) fn doubles_data(seed: u64, n: usize, lo: f64, hi: f64, per_line: usize) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::with_capacity(n * 12);
    for chunk_start in (0..n).step_by(per_line) {
        out.push_str("  .double ");
        let end = (chunk_start + per_line).min(n);
        for i in chunk_start..end {
            if i > chunk_start {
                out.push_str(", ");
            }
            let v: f64 = rng.gen_range(lo..hi);
            out.push_str(&format!("{v:.6}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_increase() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
        assert!(Scale::Test.instruction_limit() < Scale::Full.instruction_limit());
    }

    #[test]
    fn workload_runs_a_trivial_kernel() {
        let w = Workload::assemble(
            "trivial",
            Scale::Test,
            ".text\n li $t0, 100\nl: addiu $t0, $t0, -1\n bgtz $t0, l\n nop\n break\n",
        );
        let trace = w.trace().unwrap();
        assert_eq!(trace.stats.total, trace.ops.len() as u64);
        assert!(trace.stats.branches >= 100);
        assert!(w.to_string().contains("trivial"));
    }

    #[test]
    fn non_halting_kernel_reports() {
        let w = Workload::assemble("spin", Scale::Test, ".text\nx: b x\n nop\n break\n");
        match w.trace() {
            Err(WorkloadError::DidNotHalt { .. }) => {}
            other => panic!("expected DidNotHalt, got {other:?}"),
        }
    }

    #[test]
    fn words_data_is_deterministic_and_bounded() {
        let a = words_data(7, 64, 100, 16);
        let b = words_data(7, 64, 100, 16);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 4);
        for line in a.lines() {
            for v in line.trim().trim_start_matches(".word").split(',') {
                let v: u32 = v.trim().parse().unwrap();
                assert!(v < 100);
            }
        }
    }

    #[test]
    fn trace_hash_separates_name_scale_and_content() {
        let a = Workload::assemble("k", Scale::Test, ".text\n nop\n break\n");
        let same = Workload::assemble("k", Scale::Test, ".text\n nop\n break\n");
        let other_scale = Workload::assemble("k", Scale::Small, ".text\n nop\n break\n");
        let other_name = Workload::assemble("k2", Scale::Test, ".text\n nop\n break\n");
        let other_body = Workload::assemble("k", Scale::Test, ".text\n nop\n nop\n break\n");
        assert_eq!(a.trace_hash(), same.trace_hash());
        assert_ne!(a.trace_hash(), other_scale.trace_hash());
        assert_ne!(a.trace_hash(), other_name.trace_hash());
        assert_ne!(a.trace_hash(), other_body.trace_hash());
    }

    #[test]
    fn doubles_data_parses() {
        let d = doubles_data(3, 8, -1.0, 1.0, 4);
        assert_eq!(d.lines().count(), 2);
        assert!(d.contains(".double"));
    }
}
