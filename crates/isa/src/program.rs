//! The [`Program`] container produced by the assembler and consumed by the
//! emulator.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::Instruction;

/// Default base address of the text segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x1001_0000;
/// Default initial stack pointer (grows downwards).
pub const STACK_TOP: u32 = 0x7FFF_F000;

/// A contiguous memory segment with its load address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load address of the first byte.
    pub base: u32,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl Segment {
    /// The address one past the last byte.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

/// An assembled program: instructions, initialised data and symbols.
///
/// ```
/// use aurora_isa::Assembler;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Assembler::new().assemble(".text\nstart: nop\n break\n")?;
/// assert_eq!(p.instructions().len(), 2);
/// assert_eq!(p.symbol("start"), Some(p.entry()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    text_base: u32,
    instructions: Vec<Instruction>,
    data: Segment,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not word-aligned or lies outside the text
    /// segment.
    pub fn new(
        text_base: u32,
        instructions: Vec<Instruction>,
        data: Segment,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Program {
        assert_eq!(entry % 4, 0, "entry point {entry:#x} not word-aligned");
        let text_end = text_base + 4 * instructions.len() as u32;
        assert!(
            entry >= text_base && entry < text_end.max(text_base + 4),
            "entry {entry:#x} outside text [{text_base:#x}, {text_end:#x})"
        );
        Program {
            text_base,
            instructions,
            data,
            entry,
            symbols,
        }
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// The instructions, in address order from [`Program::text_base`].
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The initialised data segment.
    pub fn data(&self) -> &Segment {
        &self.data
    }

    /// The entry-point address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// The instruction at `addr`, if it lies in the text segment.
    pub fn instruction_at(&self, addr: u32) -> Option<&Instruction> {
        if addr < self.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        self.instructions
            .get(((addr - self.text_base) / 4) as usize)
    }

    /// Static code size in bytes.
    pub fn text_bytes(&self) -> usize {
        self.instructions.len() * 4
    }

    /// Statically verifies MIPS delay-slot rules: no control-flow
    /// instruction may occupy the delay slot of another (§2.4 of the
    /// paper explains the superscalar havoc this would cause), and the
    /// final instruction must not be control flow (its delay slot would
    /// fall off the text segment).
    ///
    /// # Errors
    ///
    /// Returns the address of the first offending instruction.
    pub fn verify_delay_slots(&self) -> Result<(), DelaySlotError> {
        for (i, pair) in self.instructions.windows(2).enumerate() {
            if pair[0].op.is_control_flow() && pair[1].op.is_control_flow() {
                return Err(DelaySlotError {
                    pc: self.text_base + 4 * (i as u32 + 1),
                });
            }
        }
        if let Some(last) = self.instructions.last() {
            if last.op.is_control_flow() {
                return Err(DelaySlotError {
                    pc: self.text_base + 4 * (self.instructions.len() as u32 - 1),
                });
            }
        }
        Ok(())
    }
}

/// Error returned by [`Program::verify_delay_slots`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelaySlotError {
    /// Address of the offending instruction.
    pub pc: u32,
}

impl fmt::Display for DelaySlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "control-flow instruction in a delay slot (or unterminated text) at {:#010x}",
            self.pc
        )
    }
}

impl std::error::Error for DelaySlotError {}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} instructions at {:#x}, {} data bytes at {:#x}, entry {:#x}",
            self.instructions.len(),
            self.text_base,
            self.data.bytes.len(),
            self.data.base,
            self.entry
        )?;
        for (i, instr) in self.instructions.iter().enumerate() {
            let addr = self.text_base + 4 * i as u32;
            for (name, a) in &self.symbols {
                if *a == addr {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "  {addr:#010x}  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    fn tiny() -> Program {
        let mut syms = BTreeMap::new();
        syms.insert("start".to_owned(), TEXT_BASE);
        Program::new(
            TEXT_BASE,
            vec![Instruction::nop(), Instruction::system(Opcode::Break)],
            Segment {
                base: DATA_BASE,
                bytes: vec![1, 2, 3, 4],
            },
            TEXT_BASE,
            syms,
        )
    }

    #[test]
    fn accessors() {
        let p = tiny();
        assert_eq!(p.entry(), TEXT_BASE);
        assert_eq!(p.text_bytes(), 8);
        assert_eq!(p.symbol("start"), Some(TEXT_BASE));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.instruction_at(TEXT_BASE + 4).unwrap().op, Opcode::Break);
        assert_eq!(p.instruction_at(TEXT_BASE + 2), None);
        assert_eq!(p.instruction_at(0), None);
        assert_eq!(p.data().end(), DATA_BASE + 4);
    }

    #[test]
    #[should_panic(expected = "outside text")]
    fn entry_outside_text_panics() {
        Program::new(
            TEXT_BASE,
            vec![Instruction::nop()],
            Segment {
                base: DATA_BASE,
                bytes: vec![],
            },
            TEXT_BASE + 0x1000,
            BTreeMap::new(),
        );
    }

    #[test]
    fn delay_slot_verification() {
        use crate::instr::Instruction;
        use crate::opcode::Opcode;
        use crate::reg::Reg;
        let mk = |instrs: Vec<Instruction>| {
            Program::new(
                TEXT_BASE,
                instrs,
                Segment {
                    base: DATA_BASE,
                    bytes: vec![],
                },
                TEXT_BASE,
                BTreeMap::new(),
            )
        };
        // Legal: branch, nop, break.
        let ok = mk(vec![
            Instruction::branch_cmp(Opcode::Beq, Reg::ZERO, Reg::ZERO, 1),
            Instruction::nop(),
            Instruction::system(Opcode::Break),
        ]);
        assert!(ok.verify_delay_slots().is_ok());
        // Illegal: branch in a delay slot.
        let bad = mk(vec![
            Instruction::branch_cmp(Opcode::Beq, Reg::ZERO, Reg::ZERO, 1),
            Instruction::branch_cmp(Opcode::Bne, Reg::ZERO, Reg::ZERO, 1),
            Instruction::system(Opcode::Break),
        ]);
        let err = bad.verify_delay_slots().unwrap_err();
        assert_eq!(err.pc, TEXT_BASE + 4);
        assert!(err.to_string().contains("delay slot"));
        // Illegal: program ends on a control-flow instruction.
        let tail = mk(vec![
            Instruction::nop(),
            Instruction::jump(Opcode::J, TEXT_BASE >> 2),
        ]);
        assert!(tail.verify_delay_slots().is_err());
    }

    #[test]
    fn display_lists_instructions() {
        let text = tiny().to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("break"));
    }
}
