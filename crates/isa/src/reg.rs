//! Architectural register names for the integer and floating-point files.

use std::fmt;
use std::str::FromStr;

/// One of the 32 MIPS integer registers.
///
/// The conventional ABI aliases (`$t0`, `$sp`, …) are exposed as associated
/// constants and understood by the assembler alongside numeric `$0`–`$31`
/// names.
///
/// ```
/// use aurora_isa::Reg;
/// assert_eq!(Reg::T0.number(), 8);
/// assert_eq!("$t0".parse::<Reg>().unwrap(), Reg::T0);
/// assert_eq!("$8".parse::<Reg>().unwrap(), Reg::T0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// First function result register.
    pub const V0: Reg = Reg(2);
    /// Second function result register.
    pub const V1: Reg = Reg(3);
    /// First argument register.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporary 0.
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary 1.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary 2.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary 3.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary 4.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary 5.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary 6.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary 7.
    pub const T7: Reg = Reg(15);
    /// Callee-saved register 0.
    pub const S0: Reg = Reg(16);
    /// Callee-saved register 1.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register 2.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register 3.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register 4.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register 5.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register 6.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register 7.
    pub const S7: Reg = Reg(23);
    /// Caller-saved temporary 8.
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary 9.
    pub const T9: Reg = Reg(25);
    /// First register reserved for the OS kernel.
    pub const K0: Reg = Reg(26);
    /// Second register reserved for the OS kernel.
    pub const K1: Reg = Reg(27);
    /// Global pointer.
    pub const GP: Reg = Reg(28);
    /// Stack pointer.
    pub const SP: Reg = Reg(29);
    /// Frame pointer.
    pub const FP: Reg = Reg(30);
    /// Return address.
    pub const RA: Reg = Reg(31);

    const NAMES: [&'static str; 32] = [
        "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
        "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp",
        "fp", "ra",
    ];

    /// Creates a register from its number.
    ///
    /// Returns `None` if `n > 31`.
    pub fn new(n: u8) -> Option<Reg> {
        (n < 32).then_some(Reg(n))
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The conventional ABI name without the `$` sigil, e.g. `"t0"`.
    pub fn name(self) -> &'static str {
        Self::NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s.strip_prefix('$').unwrap_or(s);
        if let Ok(n) = body.parse::<u8>() {
            return Reg::new(n).ok_or_else(|| ParseRegError(s.to_owned()));
        }
        Reg::NAMES
            .iter()
            .position(|&n| n == body)
            .map(|i| Reg(i as u8))
            .ok_or_else(|| ParseRegError(s.to_owned()))
    }
}

/// One of the 32 single-width MIPS floating-point registers (`$f0`–`$f31`).
///
/// Double-precision values occupy an even/odd pair, addressed by the even
/// register, exactly as on the R3000.
///
/// ```
/// use aurora_isa::FReg;
/// let f2 = FReg::new(2).unwrap();
/// assert!(f2.is_even());
/// assert_eq!("$f2".parse::<FReg>().unwrap(), f2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register from its number.
    ///
    /// Returns `None` if `n > 31`.
    pub fn new(n: u8) -> Option<FReg> {
        (n < 32).then_some(FReg(n))
    }

    /// The register number, 0–31.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this register can hold the low half of a double.
    pub fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The odd partner register holding the high half of a double.
    ///
    /// # Panics
    ///
    /// Panics if `self` is odd-numbered.
    pub fn pair(self) -> FReg {
        assert!(self.is_even(), "double pair of odd register {self}");
        FReg(self.0 + 1)
    }

    /// Iterates over all 32 floating-point registers in numeric order.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..32).map(FReg)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

impl FromStr for FReg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix('$')
            .unwrap_or(s)
            .strip_prefix('f')
            .and_then(|n| n.parse::<u8>().ok())
            .and_then(FReg::new)
            .ok_or_else(|| ParseRegError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_match_abi_layout() {
        assert_eq!(Reg::ZERO.number(), 0);
        assert_eq!(Reg::V0.number(), 2);
        assert_eq!(Reg::A0.number(), 4);
        assert_eq!(Reg::T0.number(), 8);
        assert_eq!(Reg::S0.number(), 16);
        assert_eq!(Reg::T8.number(), 24);
        assert_eq!(Reg::SP.number(), 29);
        assert_eq!(Reg::RA.number(), 31);
    }

    #[test]
    fn parse_by_name_and_number() {
        for r in Reg::all() {
            assert_eq!(format!("${}", r.name()).parse::<Reg>().unwrap(), r);
            assert_eq!(format!("${}", r.number()).parse::<Reg>().unwrap(), r);
        }
        assert!("$x9".parse::<Reg>().is_err());
        assert!("$32".parse::<Reg>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for r in Reg::all() {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
        for f in FReg::all() {
            assert_eq!(f.to_string().parse::<FReg>().unwrap(), f);
        }
    }

    #[test]
    fn freg_pairing() {
        let f4 = FReg::new(4).unwrap();
        assert_eq!(f4.pair().number(), 5);
        assert!(!FReg::new(5).unwrap().is_even());
    }

    #[test]
    #[should_panic(expected = "double pair")]
    fn freg_pair_of_odd_panics() {
        let _ = FReg::new(3).unwrap().pair();
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::new(32).is_none());
        assert!(FReg::new(32).is_none());
        assert!(Reg::new(31).is_some());
    }
}
