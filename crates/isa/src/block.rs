//! Basic-block superinstruction lowering for the replay fast path.
//!
//! A configuration sweep replays the same [`PackedTrace`] hundreds of
//! times (§4.1 capture-once / replay-many). Walking it one record at a
//! time pays per-op unpack, pairing look-ahead and full constraint
//! gathering for every dynamic instruction. [`BlockTrace`] amortises
//! that work at lowering time: the dynamic trace is segmented into
//! *basic blocks* — maximal runs of ops ending at each control-flow
//! change — and identical blocks are deduplicated into static
//! *templates* holding pre-decoded [`TraceOp`]s plus a pre-resolved
//! footprint (register read/write sets, batchable runs, static
//! dual-issue pairing, dynamic-source-check masks, touched fetch
//! pairs, unit demand and a worst-case latency class). Replay then
//! streams one `u32` template id per dynamic block instead of sixteen
//! bytes per op, and the timing core executes whole runs through a
//! specialised issue loop whose fetch, source and pairing checks were
//! resolved at lowering time.
//!
//! The lowering is purely a re-encoding: [`BlockTrace::iter`] yields
//! exactly the ops of the source trace, in order, and the simulator
//! asserts bit-identical `SimStats` between block-mode and per-op
//! replay (see `tests/block_replay_differential.rs` in the workspace
//! root).

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::io::{self, Read, Write};

use crate::packed::PackedTrace;
use crate::trace::{ArchReg, OpKind, TraceOp, TraceStats};
use crate::trace_io::{TraceReader, TraceWriter};

/// Template dedup map. Hashing every dynamic block dominates lowering
/// cost with the default SipHash, so the map uses a multiply-fold
/// hasher (FxHash-style): lowering is a trusted offline step with no
/// adversarial keys, and the op encoding mixes well under
/// multiplication.
type DedupMap = HashMap<Vec<TraceOp>, u32, BuildHasherDefault<FxHasher>>;

/// Word-at-a-time multiply-fold hasher for the dedup map.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// Hard cap on ops per block. Blocks longer than this (straight-line
/// stretches with no control flow) are split; the split is invisible to
/// replay semantics and keeps every per-op bitmask in a single `u64`.
pub const MAX_BLOCK_OPS: usize = 64;

/// Bit index used for the HI/LO pair in `live_in` / `writes` masks,
/// alongside bits 0–31 for the integer registers.
pub const HILO_BIT: u32 = 32;

/// Coarse worst-case issue-latency class of a block, from its slowest
/// member op. Useful for scheduling heuristics and reported by
/// [`BlockTemplate::latency_class`]; the cycle-accurate core does not
/// consult it for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LatencyClass {
    /// Only single-cycle ALU ops / nops.
    Alu,
    /// Contains control flow but nothing slower.
    Control,
    /// Contains an integer multiply or divide (HI/LO latency).
    MulDiv,
    /// Contains a floating-point op (decoupled FPU latency).
    Fpu,
    /// Contains a data-memory access (cache-miss latency possible).
    Memory,
}

/// Per-template op-class demand: how many issue slots of each unit
/// class one execution of the block consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassDemand {
    /// Integer ALU ops, nops, multiplies and divides.
    pub int_ops: u16,
    /// Data-memory accesses (integer and FP loads/stores).
    pub mem_ops: u16,
    /// Decoupled-FPU arithmetic ops.
    pub fp_ops: u16,
    /// Control-flow ops (at most one, and always last when present).
    pub ctl_ops: u16,
}

/// A maximal run of *batchable* ops inside a block: everything except
/// control flow — integer ALU ops, nops, multiplies, divides, FPU
/// arithmetic, and all four memory-op kinds. None of these ops arms
/// the fetch redirect state, so a specialised issue loop can execute
/// the whole run with precomputed fetch, source and static-pairing
/// checks, consulting the dynamic machine state (ROB, data-cache
/// port, MSHRs, FPU issue queue, flagged sources) only where the
/// [`BlockTemplate::need_src`] mask or the op kind says a constraint
/// could still bind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRun {
    /// First op index of the run within the block.
    pub start: u16,
    /// One past the last op index of the run.
    pub end: u16,
    /// Registers the run reads before writing them: bits 0–31 are the
    /// integer registers, bit [`HILO_BIT`] is the HI/LO pair. Sources
    /// outside the scoreboard (FP registers, `$k`-style indices ≥ 32)
    /// never bind a stall and are excluded. Informational: the timing
    /// core does not gate run entry on this set — every live-in reader
    /// carries a [`BlockTemplate::need_src`] bit and is checked
    /// dynamically at its own issue group.
    pub live_in: u64,
    /// Whether any op in the run reads the FP condition code. Like
    /// [`live_in`](Self::live_in), informational: fpcond readers carry
    /// `need_src` bits.
    pub reads_fpcond: bool,
}

impl BlockRun {
    /// Number of ops in the run.
    pub fn len(&self) -> usize {
        usize::from(self.end) - usize::from(self.start)
    }

    /// Whether the run is empty (never true for stored runs).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Minimum ops a pre-compiled issue schedule must cover to be worth
/// storing (shorter stretches stay on the per-group loop).
pub const MIN_PLAN_OPS: usize = 4;

/// A pre-compiled issue schedule — a *superinstruction* — for a
/// stretch of plannable ops (integer ALU, nop, mul/div, load, store)
/// inside a run, entered exactly at [`SegPlan::entry`]. Once no
/// dynamic issue constraint can bind — every flagged source ready at
/// entry, ROB space for every op, an MSHR per memory op, the data-
/// cache port idle and every fetch-pair transition resident — each
/// issue group resolves at the fetch lower bound, one cycle after the
/// previous, and the grouping, dual-issue outcomes and probe points
/// are exactly the statically computed ones. The timing core verifies
/// the preconditions once, then either applies the pre-summed effects
/// directly (pure ALU stretches: O(registers + lines) instead of
/// O(ops)) or walks the groups through a stripped schedule that keeps
/// only the inherently dynamic work (LSU execution, fill-arrival
/// checks). A failed precondition falls back to the per-group loop,
/// so a plan can only ever reproduce — never alter — the per-op
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegPlan {
    /// Op index (within the block) this plan enters at.
    pub entry: u8,
    /// Ops the plan consumes. The stretch's last op is left to the
    /// per-group loop when it cannot complete a group (it may still
    /// dual-issue with the op after the stretch), and a flagged
    /// consumer of an in-stretch slow result (load, mul/div) ends the
    /// plan early — its issue time depends on dynamic latencies.
    pub consumed: u8,
    /// Issue groups formed — the cycles the stretch advances.
    pub groups: u8,
    /// Dual-issued groups among them.
    pub duals: u8,
    /// Memory ops (loads + stores) consumed: each needs a free MSHR
    /// and the shared data-cache port at apply time.
    pub mem_ops: u8,
    /// Ops with dynamic effects (anything but `IntAlu`/`Nop`). Zero
    /// selects the pre-summed bulk apply; otherwise the group walk.
    pub dynamic_ops: u8,
    /// Bit `g` set: group `g` dual-issues (consumes two ops).
    pub dual_mask: u64,
    /// Bit `g` set: group `g`'s leader crosses onto a new fetch pair
    /// and probes the I-cache. Bit 0 is never set — the entry group's
    /// transition depends on the dynamic fetch state.
    pub probe_mask: u64,
    /// Union of the scoreboard sources of `need_src`-flagged ops in
    /// the stretch (bits 0–31 integer registers, bit [`HILO_BIT`] the
    /// HI/LO pair); all must be ready at entry.
    pub src_mask: u64,
    /// Whether any flagged op reads the FP condition code.
    pub reads_fpcond: bool,
    /// Group-leader pcs at fetch-pair transitions after the entry op —
    /// one per set `probe_mask` bit, in group order; all must be
    /// resident at apply time.
    pub probe_pcs: Vec<u32>,
    /// `pc >> 3` of the last group leader — the fetch pair a full bulk
    /// apply leaves behind (the group walk tracks it incrementally).
    pub final_pair: u32,
    /// Net scoreboard effect for the bulk apply: integer register
    /// `reg` is last written by group `g`, so its ready time is
    /// `entry_cycle + g + 1`. Empty when `dynamic_ops > 0`.
    pub writes: Vec<(u8, u8)>,
    /// Group of the last HI/LO write, if any op targets the pair
    /// (bulk apply only).
    pub hilo_write: Option<u8>,
    /// Per consumed op in issue order: the op's group index (its ROB
    /// entry retires in order at `entry_cycle + g + 2`). Empty when
    /// `dynamic_ops > 0`.
    pub rob_groups: Vec<u8>,
}

/// One deduplicated static block: an op range into the shared pool plus
/// the pre-resolved footprint replay needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTemplate {
    /// First op index in the [`BlockTrace`] pool.
    pub(crate) start: u32,
    /// Number of ops (1 ..= [`MAX_BLOCK_OPS`]).
    pub(crate) len: u16,
    /// Bit `j` set: ops `j` and `j + 1` satisfy every *static*
    /// dual-issue rule (alignment, adjacency, not both memory, no
    /// intra-pair dependence, no FP-compare/branch hazard). Dynamic
    /// rules — partner readiness, ROB space — remain replay's job.
    pub pair_ok: u64,
    /// Bit `j` set: op `j` reads the HI/LO pair.
    pub reads_hilo: u64,
    /// Bit `j` set: op `j`'s sources must be re-checked dynamically
    /// inside a batched run, because one of them is either *live into
    /// the run* (produced before the run, readiness unknowable
    /// statically) or produced in-run by a *slow* writer — a load
    /// result or a multiply/divide into HI/LO, whose latency exceeds
    /// the one-cycle ALU forward. Ops with a clear bit provably never
    /// bind on a source: every source was written by an earlier in-run
    /// ALU group and forwards one cycle later, no later than the next
    /// group's fetch-bound issue time.
    pub need_src: u64,
    /// Registers written by the block (same bit layout as
    /// [`BlockRun::live_in`]).
    pub writes: u64,
    /// Registers read by the block before it writes them.
    pub live_in: u64,
    /// Maximal batchable runs, in order, covering every op that is
    /// not control flow.
    pub runs: Vec<BlockRun>,
    /// Bit `j` set: a [`SegPlan`] enters at op `j`. Its position in
    /// [`plans`](Self::plans) is the rank of bit `j` — the popcount of
    /// the mask below it.
    pub plan_mask: u64,
    /// Pre-compiled issue schedules, sorted by entry index.
    pub plans: Vec<SegPlan>,
    /// Bit `j` set: op `j` is batchable (lies inside a run). Because
    /// runs are *maximal* contiguous stretches of batchable ops, the
    /// end of the run containing op `i` is
    /// `i + (batch_mask >> i).trailing_ones()` — an O(1), pointer-free
    /// replacement for scanning [`runs`](Self::runs) at every
    /// candidate entry point.
    pub batch_mask: u64,
    /// Issue-slot demand by unit class.
    pub demand: ClassDemand,
    /// Worst-case latency class over the block's ops.
    pub latency: LatencyClass,
}

impl BlockTemplate {
    /// Number of ops in the block.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the block is empty (never true for stored templates).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Worst-case latency class over the block's ops.
    pub fn latency_class(&self) -> LatencyClass {
        self.latency
    }

    /// The batchable run containing op index `i`, if any. A run may be
    /// entered at any interior index: the `need_src` analysis holds
    /// for every suffix of the run (an op's clear bit means its
    /// sources come from earlier in-run ALU groups, which forward in
    /// one cycle whether they issued inside or before the batch).
    pub fn run_at(&self, i: usize) -> Option<&BlockRun> {
        self.runs
            .iter()
            .find(|r| usize::from(r.start) <= i && i < usize::from(r.end))
    }
}

/// A dynamic trace lowered to basic-block superinstructions.
///
/// Layout: `pool` concatenates the pre-decoded ops of every distinct
/// template; `seq` holds one template id per *dynamic* block instance.
/// Loops collapse to repeated ids, so replay streams ~4 bytes per
/// executed block instead of 16 bytes per executed op and the decoded
/// templates stay hot in cache.
///
/// ```
/// use aurora_isa::{BlockTrace, OpKind, PackedTrace, TraceOp};
///
/// let branch = TraceOp::bare(8, OpKind::Branch { taken: true, target: 0 });
/// let body = [TraceOp::bare(0, OpKind::IntAlu), TraceOp::bare(4, OpKind::IntAlu), branch];
/// // Two iterations of the same loop body...
/// let trace: PackedTrace = body.iter().chain(body.iter()).copied().collect();
/// let blocks = BlockTrace::lower(&trace);
/// // ...lower to ONE static template replayed twice.
/// assert_eq!(blocks.templates().len(), 1);
/// assert_eq!(blocks.instances(), &[0, 0]);
/// assert_eq!(blocks.iter().count(), 6);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockTrace {
    pool: Vec<TraceOp>,
    templates: Vec<BlockTemplate>,
    seq: Vec<u32>,
    total_ops: u64,
    stats: TraceStats,
}

impl BlockTrace {
    /// Lowers a packed trace: segments it at control-flow ops (and at
    /// the [`MAX_BLOCK_OPS`] cap), deduplicates identical blocks into
    /// templates, and pre-resolves each template's footprint.
    pub fn lower(trace: &PackedTrace) -> BlockTrace {
        let mut b = BlockTrace::lower_ops(trace.iter());
        b.stats = *trace.stats();
        b
    }

    /// Lowers an arbitrary op stream (trace statistics are recomputed).
    pub fn lower_ops(ops: impl IntoIterator<Item = TraceOp>) -> BlockTrace {
        let mut out = BlockTrace::default();
        let mut dedup: DedupMap = HashMap::default();
        let mut cur: Vec<TraceOp> = Vec::with_capacity(MAX_BLOCK_OPS);
        for op in ops {
            out.stats.record(&op);
            cur.push(op);
            if op.kind.is_control_flow() || cur.len() == MAX_BLOCK_OPS {
                out.emit(&mut dedup, &mut cur);
            }
        }
        out.emit(&mut dedup, &mut cur);
        out
    }

    fn emit(&mut self, dedup: &mut DedupMap, cur: &mut Vec<TraceOp>) {
        if cur.is_empty() {
            return;
        }
        self.total_ops += cur.len() as u64;
        if let Some(&id) = dedup.get(cur.as_slice()) {
            self.seq.push(id);
            cur.clear();
            return;
        }
        let id = u32::try_from(self.templates.len()).unwrap_or(u32::MAX);
        let start = u32::try_from(self.pool.len()).unwrap_or(u32::MAX);
        let tmpl = analyze(start, cur);
        self.templates.push(tmpl);
        self.pool.extend_from_slice(cur);
        // Clone the key (one allocation per *unique* template) so `cur`
        // keeps its capacity for the next — usually deduplicated — block.
        dedup.insert(cur.clone(), id);
        cur.clear();
        self.seq.push(id);
    }

    /// The deduplicated static templates.
    pub fn templates(&self) -> &[BlockTemplate] {
        &self.templates
    }

    /// One template id per dynamic block instance, in trace order.
    pub fn instances(&self) -> &[u32] {
        &self.seq
    }

    /// The pre-decoded ops of `tmpl` (a slice into the shared pool).
    pub fn ops_of(&self, tmpl: &BlockTemplate) -> &[TraceOp] {
        let start = tmpl.start as usize;
        self.pool
            .get(start..start.saturating_add(usize::from(tmpl.len)))
            .unwrap_or(&[])
    }

    /// Total dynamic instruction count (equals the source trace length).
    pub fn len(&self) -> u64 {
        self.total_ops
    }

    /// Whether the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.total_ops == 0
    }

    /// Number of pre-decoded ops held by the template pool — the
    /// *static* footprint the dynamic trace collapsed to.
    pub fn static_ops(&self) -> usize {
        self.pool.len()
    }

    /// Dynamic-to-static reuse factor: executed ops per pooled op.
    /// Loop-dominated traces score high; straight-line code scores ~1.
    pub fn reuse_factor(&self) -> f64 {
        if self.pool.is_empty() {
            return 0.0;
        }
        self.total_ops as f64 / self.pool.len() as f64
    }

    /// Aggregate statistics of the source trace.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Iterates over the dynamic op stream the lowering encodes —
    /// exactly the ops of the source trace, in order.
    pub fn iter(&self) -> impl Iterator<Item = TraceOp> + '_ {
        self.seq
            .iter()
            .filter_map(|&id| self.templates.get(id as usize))
            .flat_map(|t| self.ops_of(t).iter().copied())
    }
}

/// Magic number of the serialised block-trace format.
const BLOCK_MAGIC: &[u8; 8] = b"AUR3BLK\0";

/// On-disk layout version of [`BlockTrace::write_to`]. Bump when the
/// section layout changes. Changes to the template *analysis* (runs,
/// pairing, plans) need no bump: only op data is serialised, and
/// templates are re-derived from it at read time, so an old file always
/// yields the current lowering.
pub const BLOCK_FORMAT_VERSION: u32 = 1;

/// Number of `u64` words in the serialised [`TraceStats`] section.
const TRACE_STAT_WORDS: usize = 11;

fn bad_blk(msg: impl fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("block trace file: {msg}"),
    )
}

fn stat_words(s: &TraceStats) -> [u64; TRACE_STAT_WORDS] {
    [
        s.total,
        s.int_alu,
        s.int_muldiv,
        s.loads,
        s.stores,
        s.fp_loads,
        s.fp_stores,
        s.branches,
        s.taken_branches,
        s.jumps,
        s.fp_ops,
    ]
}

fn stats_from_words(w: &[u64; TRACE_STAT_WORDS]) -> TraceStats {
    TraceStats {
        total: w[0],
        int_alu: w[1],
        int_muldiv: w[2],
        loads: w[3],
        stores: w[4],
        fp_loads: w[5],
        fp_stores: w[6],
        branches: w[7],
        taken_branches: w[8],
        jumps: w[9],
        fp_ops: w[10],
    }
}

fn read_u32<R: Read>(source: &mut R) -> io::Result<u32> {
    let mut word = [0u8; 4];
    source.read_exact(&mut word)?;
    Ok(u32::from_le_bytes(word))
}

fn read_u64<R: Read>(source: &mut R) -> io::Result<u64> {
    let mut word = [0u8; 8];
    source.read_exact(&mut word)?;
    Ok(u64::from_le_bytes(word))
}

impl BlockTrace {
    /// Serialises the lowering so a sweep can skip both the emulator
    /// capture *and* the lowering pass on later runs (the `.blk` disk
    /// cache in `aurora-workloads`' trace store).
    ///
    /// Only op data crosses the boundary: the header, the source-trace
    /// statistics, one op count per template, the dynamic instance
    /// sequence, and the pooled ops as an embedded `trace_io` stream
    /// (last, so the record stream is end-of-file-delimited). Template
    /// starts are implied by the counts — pool extents are contiguous
    /// by construction — and the pre-resolved footprints (runs, pairing
    /// masks, [`SegPlan`]s) are recomputed by [`BlockTrace::read_from`],
    /// which keeps the format stable across analysis improvements and
    /// makes a round trip exactly reproduce a fresh lowering.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_to<W: Write>(&self, mut sink: W) -> io::Result<()> {
        sink.write_all(BLOCK_MAGIC)?;
        sink.write_all(&BLOCK_FORMAT_VERSION.to_le_bytes())?;
        sink.write_all(&self.total_ops.to_le_bytes())?;
        for word in stat_words(&self.stats) {
            sink.write_all(&word.to_le_bytes())?;
        }
        let n = u32::try_from(self.templates.len()).map_err(|_| bad_blk("too many templates"))?;
        sink.write_all(&n.to_le_bytes())?;
        for tmpl in &self.templates {
            sink.write_all(&u32::from(tmpl.len).to_le_bytes())?;
        }
        let n = u32::try_from(self.seq.len()).map_err(|_| bad_blk("too many instances"))?;
        sink.write_all(&n.to_le_bytes())?;
        for id in &self.seq {
            sink.write_all(&id.to_le_bytes())?;
        }
        let mut w = TraceWriter::new(sink)?;
        for op in &self.pool {
            w.write(op)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Reads a lowering written by [`BlockTrace::write_to`], re-running
    /// the footprint analysis on the pooled ops so the result is
    /// bit-identical to lowering the source trace afresh.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a malformed header, record or section
    /// (bad magic, unsupported version, out-of-range template extents or
    /// instance ids, op counts that disagree with the stored totals),
    /// and propagates I/O errors. Callers using the format as a cache
    /// treat any error as a miss and re-lower.
    pub fn read_from<R: Read>(mut source: R) -> io::Result<BlockTrace> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if &magic != BLOCK_MAGIC {
            return Err(bad_blk("bad magic"));
        }
        let version = read_u32(&mut source)?;
        if version != BLOCK_FORMAT_VERSION {
            return Err(bad_blk(format!("unsupported version {version}")));
        }
        let total_ops = read_u64(&mut source)?;
        let mut words = [0u64; TRACE_STAT_WORDS];
        for word in &mut words {
            *word = read_u64(&mut source)?;
        }
        let stats = stats_from_words(&words);
        if stats.total != total_ops {
            return Err(bad_blk("trace statistics disagree with op total"));
        }
        let n_templates = read_u32(&mut source)? as usize;
        // Reserve conservatively: a lying count fails at the first
        // truncated read instead of a huge up-front allocation.
        let mut lens: Vec<usize> = Vec::with_capacity(n_templates.min(1 << 16));
        for _ in 0..n_templates {
            let len = read_u32(&mut source)? as usize;
            if len == 0 || len > MAX_BLOCK_OPS {
                return Err(bad_blk("template length out of range"));
            }
            lens.push(len);
        }
        let n_seq = read_u32(&mut source)? as usize;
        let mut seq: Vec<u32> = Vec::with_capacity(n_seq.min(1 << 20));
        for _ in 0..n_seq {
            seq.push(read_u32(&mut source)?);
        }
        let pool: Vec<TraceOp> = TraceReader::new(source)?.collect::<io::Result<_>>()?;
        let mut templates = Vec::with_capacity(lens.len());
        let mut start = 0usize;
        for len in lens {
            let end = start
                .checked_add(len)
                .filter(|&e| e <= pool.len())
                .ok_or_else(|| bad_blk("template extent out of range"))?;
            let ops = pool
                .get(start..end)
                .ok_or_else(|| bad_blk("template extent"))?;
            let start32 = u32::try_from(start).map_err(|_| bad_blk("op pool too large"))?;
            templates.push(analyze(start32, ops));
            start = end;
        }
        if start != pool.len() {
            return Err(bad_blk("templates do not tile the op pool"));
        }
        let mut counted = 0u64;
        for &id in &seq {
            let tmpl = templates
                .get(id as usize)
                .ok_or_else(|| bad_blk("instance id out of range"))?;
            counted += u64::from(tmpl.len);
        }
        if counted != total_ops {
            return Err(bad_blk("instance ops disagree with op total"));
        }
        Ok(BlockTrace {
            pool,
            templates,
            seq,
            total_ops,
            stats,
        })
    }
}

impl fmt::Display for BlockTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops in {} blocks ({} templates, {} pooled ops, reuse {:.1}x)",
            self.total_ops,
            self.seq.len(),
            self.templates.len(),
            self.pool.len(),
            self.reuse_factor()
        )
    }
}

/// Whether the timing core's batched issue loop can execute `kind`:
/// everything except control flow, which both ends the block and arms
/// the fetch-redirect state that hands the *next* group its target.
/// Memory ops keep their port/MSHR/store-queue checks and FPU ops
/// their issue-queue admission check inside the loop, so neither needs
/// to break a run.
fn batchable(kind: OpKind) -> bool {
    !kind.is_control_flow()
}

/// Whether a write by `kind` forwards slower than the one-cycle ALU
/// bypass: loads deliver at cache latency, multiplies and divides at
/// the HI/LO unit latency. Readers of such a value inside the same run
/// must keep their dynamic source check ([`BlockTemplate::need_src`]).
fn slow_writer(kind: OpKind) -> bool {
    matches!(kind, OpKind::Load { .. } | OpKind::IntMul | OpKind::IntDiv)
}

/// Static dual-issue admissibility of adjacent ops `a`, `b` — exactly
/// the data-independent prefix of the core's dual-issue rules. A set
/// bit means "the dynamic checks decide"; a clear bit means the pair
/// can never issue together.
fn static_pair_ok(a: &TraceOp, b: &TraceOp) -> bool {
    // Fetch-pair alignment: both halves of one aligned doubleword.
    if !a.pc.is_multiple_of(8) || b.pc != a.pc.wrapping_add(4) {
        return false;
    }
    // One data-cache port.
    if a.kind.is_memory() && b.kind.is_memory() {
        return false;
    }
    // Intra-pair RAW dependence.
    if let Some(d) = a.dst {
        if b.sources().any(|s| s == d) {
            return false;
        }
    }
    // An FP compare's condition code is not forwardable to a branch in
    // the same group.
    if matches!(a.kind, OpKind::FpCmp)
        && matches!(b.kind, OpKind::Branch { .. })
        && b.src1 == Some(ArchReg::FpCond)
    {
        return false;
    }
    true
}

/// Folds `op`'s integer-scoreboard writes into a bitmask, mirroring
/// the timing core's `execute`: ALU ops, nops, loads and jumps write
/// their (integer) destination; multiplies and divides write HI/LO
/// regardless of `dst`. FP destinations live in the decoupled FPU and
/// never appear on the integer scoreboard.
fn write_mask(op: &TraceOp) -> u64 {
    match op.kind {
        OpKind::IntAlu | OpKind::Nop | OpKind::Load { .. } | OpKind::Jump { .. } => match op.dst {
            Some(ArchReg::Int(n)) if u32::from(n) < HILO_BIT => 1u64 << n,
            Some(ArchReg::HiLo) => 1u64 << HILO_BIT,
            _ => 0,
        },
        OpKind::IntMul | OpKind::IntDiv => 1u64 << HILO_BIT,
        _ => 0,
    }
}

fn latency_of(kind: OpKind) -> LatencyClass {
    if kind.is_memory() {
        LatencyClass::Memory
    } else if kind.is_fpu() {
        LatencyClass::Fpu
    } else if matches!(kind, OpKind::IntMul | OpKind::IntDiv) {
        LatencyClass::MulDiv
    } else if kind.is_control_flow() {
        LatencyClass::Control
    } else {
        LatencyClass::Alu
    }
}

/// Pre-resolves a block's footprint from its decoded ops.
fn analyze(start: u32, ops: &[TraceOp]) -> BlockTemplate {
    let mut tmpl = BlockTemplate {
        start,
        len: ops.len() as u16,
        pair_ok: 0,
        reads_hilo: 0,
        need_src: 0,
        writes: 0,
        live_in: 0,
        runs: Vec::new(),
        plan_mask: 0,
        plans: Vec::new(),
        batch_mask: 0,
        demand: ClassDemand::default(),
        latency: LatencyClass::Alu,
    };
    let mut written = 0u64;
    let mut run: Option<BlockRun> = None;
    let mut run_written = 0u64;
    // Registers whose most recent in-run writer is slow (load result or
    // mul/div into HI/LO): readers keep their dynamic source check.
    let mut run_slow = 0u64;
    for (j, op) in ops.iter().enumerate() {
        let bit = 1u64 << (j as u32 & 63);
        if let Some(next) = ops.get(j + 1) {
            if static_pair_ok(op, next) {
                tmpl.pair_ok |= bit;
            }
        }
        for src in op.sources() {
            match src {
                ArchReg::Int(n) if u32::from(n) < HILO_BIT && written & (1u64 << n) == 0 => {
                    tmpl.live_in |= 1u64 << n;
                }
                ArchReg::HiLo => {
                    tmpl.reads_hilo |= bit;
                    if written & (1u64 << HILO_BIT) == 0 {
                        tmpl.live_in |= 1u64 << HILO_BIT;
                    }
                }
                _ => {}
            }
        }
        if op.kind.is_memory() {
            tmpl.demand.mem_ops += 1;
        } else if op.kind.is_fpu() {
            tmpl.demand.fp_ops += 1;
        } else if op.kind.is_control_flow() {
            tmpl.demand.ctl_ops += 1;
        } else {
            tmpl.demand.int_ops += 1;
        }
        tmpl.latency = tmpl.latency.max(latency_of(op.kind));

        if batchable(op.kind) {
            tmpl.batch_mask |= bit;
            let r = run.get_or_insert_with(|| {
                run_written = 0;
                run_slow = 0;
                BlockRun {
                    start: j as u16,
                    end: j as u16,
                    live_in: 0,
                    reads_fpcond: false,
                }
            });
            r.end = (j + 1) as u16;
            for src in op.sources() {
                let src_bit = match src {
                    ArchReg::Int(n) if u32::from(n) < HILO_BIT => 1u64 << n,
                    ArchReg::HiLo => 1u64 << HILO_BIT,
                    ArchReg::FpCond => {
                        // The FP condition code lives in the decoupled
                        // FPU; its readiness is always re-queried
                        // dynamically, wherever the producing compare
                        // sits.
                        r.reads_fpcond = true;
                        tmpl.need_src |= bit;
                        continue;
                    }
                    _ => continue,
                };
                if run_written & src_bit == 0 {
                    // Live-in value: produced before the run (or before
                    // the block), so its readiness is unknowable
                    // statically — keep the dynamic check.
                    r.live_in |= src_bit;
                    tmpl.need_src |= bit;
                } else if run_slow & src_bit != 0 {
                    tmpl.need_src |= bit;
                }
            }
            let w = write_mask(op);
            run_written |= w;
            if slow_writer(op.kind) {
                run_slow |= w;
            } else {
                run_slow &= !w;
            }
        } else if let Some(r) = run.take() {
            tmpl.runs.push(r);
        }
        written |= write_mask(op);
        tmpl.writes |= write_mask(op);
    }
    if let Some(r) = run.take() {
        tmpl.runs.push(r);
    }
    compile_plans(&mut tmpl, ops);
    tmpl
}

/// Whether `kind` is eligible for a pre-compiled schedule: ops whose
/// issue constraints are either covered by the plan preconditions
/// (sources, ROB space, MSHR/port availability, fetch residency) or
/// provably non-binding once they hold. FPU ops are excluded — their
/// issue-queue admission depends on decoupled FPU state that evolves
/// with every dispatch — as are FP loads/stores (load/store-queue
/// admission) and control flow (not batchable at all).
fn plannable(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::IntAlu
            | OpKind::Nop
            | OpKind::IntMul
            | OpKind::IntDiv
            | OpKind::Load { .. }
            | OpKind::Store { .. }
    )
}

/// Compiles a [`SegPlan`] for every maximal plannable stretch of
/// `ops`, at the two entry points replay reaches in practice: the
/// stretch head, and head+1 (entered when the head is consumed as the
/// dual partner of the preceding group). Requires `pair_ok` and
/// `need_src` to be final.
fn compile_plans(tmpl: &mut BlockTemplate, ops: &[TraceOp]) {
    let mut s = 0usize;
    while s < ops.len() {
        if !plannable(ops[s].kind) {
            s += 1;
            continue;
        }
        let mut e = s + 1;
        while ops.get(e).is_some_and(|op| plannable(op.kind)) {
            e += 1;
        }
        for entry in [s, s + 1] {
            if let Some(plan) = compile_plan(tmpl, ops, entry, e) {
                tmpl.plan_mask |= 1u64 << (entry as u32 & 63);
                tmpl.plans.push(plan);
            }
        }
        s = e;
    }
}

/// Simulates the batched issue loop over `ops[entry..end)` under the
/// no-stall assumption — every group resolves at the fetch lower
/// bound, one cycle apart — and folds the walk into a [`SegPlan`].
/// Returns `None` when the stretch is too short to pay for itself.
fn compile_plan(
    tmpl: &BlockTemplate,
    ops: &[TraceOp],
    entry: usize,
    end: usize,
) -> Option<SegPlan> {
    if entry >= end {
        return None;
    }
    // Cheap pre-pass: the walk below can never consume past the first
    // flagged reader of an in-stretch slow result, so locate that cut
    // op-wise before paying for the full walk. In real code most
    // stretches cut within a couple of ops (load results are consumed
    // almost immediately), and with loads plannable nearly every op
    // starts or sits in a stretch — without this check the lowering
    // pass walks (and allocates for) every doomed stretch twice.
    let mut cut = end;
    {
        let mut slow = 0u64;
        for (k, op) in ops.iter().enumerate().take(end).skip(entry) {
            let reads_slow = tmpl.need_src >> (k as u32 & 63) & 1 == 1
                && op.sources().any(|src| {
                    let bit = match src {
                        ArchReg::Int(n) if u32::from(n) < HILO_BIT => 1u64 << n,
                        ArchReg::HiLo => 1u64 << HILO_BIT,
                        _ => return false,
                    };
                    slow & bit != 0
                });
            if reads_slow {
                cut = k;
                break;
            }
            let w = write_mask(op);
            if slow_writer(op.kind) {
                slow |= w;
            } else {
                slow &= !w;
            }
        }
        if cut - entry < MIN_PLAN_OPS {
            return None;
        }
    }
    let mut j = entry;
    let mut groups = 0u8;
    let mut duals = 0u8;
    let mut mem_ops = 0u8;
    let mut dynamic_ops = 0u8;
    let mut dual_mask = 0u64;
    let mut probe_mask = 0u64;
    let mut src_mask = 0u64;
    let mut reads_fpcond = false;
    let mut probe_pcs = Vec::new();
    let mut prev_pair = ops[entry].pc >> 3;
    let mut final_pair = prev_pair;
    let mut write_group = [0u8; HILO_BIT as usize + 1];
    let mut written = 0u64;
    // Registers whose latest in-stretch writer delivers at a dynamic
    // or multi-cycle latency (load result, mul/div into HI/LO). A
    // flagged reader of one would issue at a time the lowering cannot
    // know, so the plan ends before its group.
    let mut slow_written = 0u64;
    let mut rob_groups = Vec::new();
    // A group whose partner would lie beyond the stretch is left to
    // the dynamic loop: it may still dual-issue with whatever follows.
    'walk: while j + 1 < end {
        // With sources ready, ROB space and an MSHR per memory op
        // guaranteed, the partner's dynamic checks all pass: dual
        // issue is decided by the static rules alone.
        let dual = tmpl.pair_ok >> (j as u32 & 63) & 1 == 1;
        let width = 1 + usize::from(dual);
        // Flagged readers of in-stretch slow results end the plan
        // *before* this group (scan first, commit after).
        for (k, op) in ops.iter().enumerate().take(j + width).skip(j) {
            let reads_slow = tmpl.need_src >> (k as u32 & 63) & 1 == 1
                && op.sources().any(|src| {
                    let bit = match src {
                        ArchReg::Int(n) if u32::from(n) < HILO_BIT => 1u64 << n,
                        ArchReg::HiLo => 1u64 << HILO_BIT,
                        _ => return false,
                    };
                    slow_written & bit != 0
                });
            if reads_slow {
                break 'walk;
            }
        }
        let a = &ops[j];
        let pair = a.pc >> 3;
        if pair != prev_pair {
            probe_pcs.push(a.pc);
            probe_mask |= 1u64 << (groups as u32 & 63);
            prev_pair = pair;
        }
        final_pair = pair;
        for (k, op) in ops.iter().enumerate().take(j + width).skip(j) {
            if tmpl.need_src >> (k as u32 & 63) & 1 == 1 {
                for src in op.sources() {
                    match src {
                        ArchReg::Int(n) if u32::from(n) < HILO_BIT => src_mask |= 1u64 << n,
                        ArchReg::HiLo => src_mask |= 1u64 << HILO_BIT,
                        ArchReg::FpCond => reads_fpcond = true,
                        _ => {}
                    }
                }
            }
            mem_ops += u8::from(op.kind.is_memory());
            dynamic_ops += u8::from(!matches!(op.kind, OpKind::IntAlu | OpKind::Nop));
            let mut w = write_mask(op);
            written |= w;
            if slow_writer(op.kind) {
                slow_written |= w;
            } else {
                slow_written &= !w;
            }
            while w != 0 {
                // trailing_zeros of a non-zero mask is < 33, in bounds
                // for the 33-slot table by construction of write_mask
                write_group[w.trailing_zeros() as usize] = groups;
                w &= w - 1;
            }
            rob_groups.push(groups);
        }
        if dual {
            dual_mask |= 1u64 << (groups as u32 & 63);
            duals += 1;
        }
        groups += 1;
        j += width;
    }
    let consumed = j - entry;
    if consumed < MIN_PLAN_OPS {
        return None;
    }
    let mut writes = Vec::new();
    let mut hilo_write = None;
    if dynamic_ops == 0 {
        let mut m = written;
        while m != 0 {
            let r = m.trailing_zeros();
            m &= m - 1;
            let g = write_group[r as usize];
            if r == HILO_BIT {
                hilo_write = Some(g);
            } else {
                writes.push((r as u8, g));
            }
        }
    } else {
        // The group walk reads effects off the ops themselves; the
        // pre-summed summaries only serve the bulk apply.
        rob_groups.clear();
    }
    Some(SegPlan {
        entry: entry as u8,
        consumed: consumed as u8,
        groups,
        duals,
        mem_ops,
        dynamic_ops,
        dual_mask,
        probe_mask,
        src_mask,
        reads_fpcond,
        probe_pcs,
        final_pair,
        writes,
        hilo_write,
        rob_groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemWidth;

    fn alu(pc: u32, dst: u8, src: u8) -> TraceOp {
        TraceOp {
            pc,
            kind: OpKind::IntAlu,
            dst: Some(ArchReg::Int(dst)),
            src1: Some(ArchReg::Int(src)),
            src2: None,
        }
    }

    fn branch(pc: u32, taken: bool) -> TraceOp {
        TraceOp::bare(pc, OpKind::Branch { taken, target: 0 })
    }

    #[test]
    fn segments_at_control_flow_and_dedups() {
        let body = [alu(0, 1, 2), alu(4, 3, 1), branch(8, true)];
        let ops: Vec<TraceOp> = body
            .iter()
            .chain(body.iter())
            .chain(body.iter())
            .copied()
            .collect();
        let b = BlockTrace::lower_ops(ops.iter().copied());
        assert_eq!(b.templates().len(), 1);
        assert_eq!(b.instances(), &[0, 0, 0]);
        assert_eq!(b.len(), 9);
        assert_eq!(b.static_ops(), 3);
        assert!((b.reuse_factor() - 3.0).abs() < 1e-9);
        let replayed: Vec<TraceOp> = b.iter().collect();
        assert_eq!(replayed, ops);
    }

    #[test]
    fn long_straight_line_splits_at_cap() {
        let ops: Vec<TraceOp> = (0..150u32).map(|i| alu(4 * i, 1, 2)).collect();
        let b = BlockTrace::lower_ops(ops.iter().copied());
        assert_eq!(b.instances().len(), 3); // 64 + 64 + 22
        assert!(b.templates().iter().all(|t| t.len() <= MAX_BLOCK_OPS));
        let replayed: Vec<TraceOp> = b.iter().collect();
        assert_eq!(replayed, ops);
    }

    #[test]
    fn trailing_partial_block_is_kept() {
        let ops = [alu(0, 1, 2), branch(4, false), alu(8, 3, 4), alu(12, 5, 3)];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        assert_eq!(b.instances().len(), 2);
        assert_eq!(b.len(), 4);
        let replayed: Vec<TraceOp> = b.iter().collect();
        assert_eq!(replayed, ops.to_vec());
    }

    #[test]
    fn footprint_live_in_and_writes() {
        // r3 = f(r1); r4 = f(r3): live-in {r1}, writes {r3, r4}.
        let ops = [alu(0, 3, 1), alu(4, 4, 3)];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        let t = &b.templates()[0];
        assert_eq!(t.live_in, 1 << 1);
        assert_eq!(t.writes, (1 << 3) | (1 << 4));
        assert_eq!(t.runs.len(), 1);
        let r = &t.runs[0];
        assert_eq!((r.start, r.end), (0, 2));
        assert_eq!(r.live_in, 1 << 1);
        assert_eq!(t.latency_class(), LatencyClass::Alu);
    }

    #[test]
    fn muldiv_writes_hilo_not_dst() {
        let mul = TraceOp {
            pc: 0,
            kind: OpKind::IntMul,
            dst: Some(ArchReg::Int(9)), // ignored by the timing core
            src1: Some(ArchReg::Int(1)),
            src2: Some(ArchReg::Int(2)),
        };
        let mflo = TraceOp {
            pc: 4,
            kind: OpKind::IntAlu,
            dst: Some(ArchReg::Int(5)),
            src1: Some(ArchReg::HiLo),
            src2: None,
        };
        let b = BlockTrace::lower_ops([mul, mflo]);
        let t = &b.templates()[0];
        assert_eq!(t.writes, (1 << HILO_BIT) | (1 << 5));
        assert_eq!(t.live_in, (1 << 1) | (1 << 2));
        assert_eq!(t.reads_hilo, 0b10);
        // The multiply reads live-in r1/r2 and the mflo reads HI/LO
        // behind the slow multiply: both keep dynamic source checks.
        assert_eq!(t.need_src, 0b11);
        // HiLo written by op 0 before op 1 reads it: not live-in.
        assert_eq!(t.runs[0].live_in & (1 << HILO_BIT), 0);
        assert_eq!(t.latency_class(), LatencyClass::MulDiv);
    }

    #[test]
    fn loads_stay_in_runs_with_consumers_flagged() {
        let load = TraceOp {
            pc: 8,
            kind: OpKind::Load {
                ea: 0x100,
                width: MemWidth::Word,
            },
            dst: Some(ArchReg::Int(7)),
            src1: Some(ArchReg::Int(1)),
            src2: None,
        };
        let ops = [alu(0, 1, 2), alu(4, 2, 1), load, alu(12, 3, 7)];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        let t = &b.templates()[0];
        // Memory ops are batchable: one run covers the whole block.
        assert_eq!(t.runs.len(), 1);
        assert_eq!((t.runs[0].start, t.runs[0].end), (0, 4));
        // Live-in is just r2 (r1 and r7 are produced inside the run).
        assert_eq!(t.runs[0].live_in, 1 << 2);
        // The live-in reader (op 0) and the load consumer (op 3) keep
        // dynamic source checks; ops 1 and 2 read only the one-cycle
        // ALU forward from op 0 and need none.
        assert_eq!(t.need_src, (1 << 0) | (1 << 3));
        assert_eq!(t.latency_class(), LatencyClass::Memory);
        assert_eq!(t.demand.mem_ops, 1);
        assert_eq!(t.demand.int_ops, 3);
    }

    #[test]
    fn runs_break_at_control_ops_only() {
        let fp = TraceOp::bare(8, OpKind::FpAdd);
        let ops = [
            alu(0, 1, 2),
            alu(4, 2, 1),
            fp,
            alu(12, 3, 4),
            branch(16, false),
        ];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        let t = &b.templates()[0];
        // FPU arithmetic stays in the run (its issue-queue admission is
        // a dynamic per-group check); only the branch breaks it.
        assert_eq!(t.runs.len(), 1);
        assert_eq!((t.runs[0].start, t.runs[0].end), (0, 4));
        assert_eq!(t.batch_mask, 0b1111);
        // Ops 0 and 3 read live-in values (r2, r4); op 1 reads only
        // op 0's ALU forward; the bare FpAdd has no scoreboard sources.
        assert_eq!(t.need_src, (1 << 0) | (1 << 3));
    }

    #[test]
    fn alu_overwrite_clears_slow_producer() {
        let load = TraceOp {
            pc: 0,
            kind: OpKind::Load {
                ea: 0x40,
                width: MemWidth::Word,
            },
            dst: Some(ArchReg::Int(5)),
            src1: Some(ArchReg::Int(29)),
            src2: None,
        };
        // r5 <- load; r5 <- alu; alu reads r5: the ALU rewrite of r5
        // restores the fast forward, so the final reader needs no
        // check. Ops 0 and 1 read live-in values (r29, r1).
        let ops = [load, alu(4, 5, 1), alu(8, 6, 5)];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        let t = &b.templates()[0];
        assert_eq!(t.runs.len(), 1);
        assert_eq!(t.need_src, 0b011);
    }

    #[test]
    fn pure_alu_stretch_compiles_bulk_plans_at_both_entries() {
        // Six independent ALU ops: plannable stretch [0, 6), entered at
        // 0 (stretch head) or 1 (head consumed as a dual partner).
        let ops: Vec<TraceOp> = (0..6u32).map(|k| alu(k * 4, 10 + k as u8, 1)).collect();
        let b = BlockTrace::lower_ops(ops);
        let t = &b.templates()[0];
        assert_eq!(t.plan_mask, 0b11);
        assert_eq!(t.plans.len(), 2);
        for (rank, entry) in [(0usize, 0u8), (1, 1)] {
            let p = &t.plans[rank];
            assert_eq!(p.entry, entry);
            assert!(usize::from(p.consumed) >= MIN_PLAN_OPS);
            assert!(usize::from(p.entry) + usize::from(p.consumed) <= 6);
            // Pure ALU: the bulk-apply form with pre-summed effects.
            assert_eq!(p.dynamic_ops, 0);
            assert_eq!(p.mem_ops, 0);
            assert_eq!(p.hilo_write, None);
            assert_eq!(p.rob_groups.len(), usize::from(p.consumed));
            // Every op writes a distinct register read by nothing
            // later: each surviving write is the op's own.
            assert_eq!(p.writes.len(), usize::from(p.consumed));
        }
    }

    #[test]
    fn plan_ends_before_in_stretch_load_consumer() {
        let load = TraceOp {
            pc: 0,
            kind: OpKind::Load {
                ea: 0x80,
                width: MemWidth::Word,
            },
            dst: Some(ArchReg::Int(7)),
            src1: Some(ArchReg::Int(1)),
            src2: None,
        };
        // load r7; three fillers; then a consumer of r7. The consumer's
        // issue time depends on the dynamic hit/miss latency, so the
        // plan must stop before its group.
        let ops = [
            load,
            alu(4, 10, 1),
            alu(8, 11, 1),
            alu(12, 12, 1),
            alu(16, 13, 7),
        ];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        let t = &b.templates()[0];
        // Entry 1 would cover only ops 1..4 (three ops): below the
        // minimum, so only the head plan is stored.
        assert_eq!(t.plan_mask, 0b1);
        let p = &t.plans[0];
        assert_eq!(p.entry, 0);
        assert_eq!(usize::from(p.consumed), 4);
        assert_eq!(p.mem_ops, 1);
        assert_eq!(p.dynamic_ops, 1);
        // Walk-mode plans read effects off the ops; no bulk summaries.
        assert!(p.writes.is_empty());
        assert!(p.rob_groups.is_empty());
    }

    #[test]
    fn short_stretches_compile_no_plans() {
        let ops = [alu(0, 1, 2), alu(4, 3, 1), alu(8, 4, 1), branch(12, true)];
        let b = BlockTrace::lower_ops(ops.iter().copied());
        let t = &b.templates()[0];
        assert_eq!(t.plan_mask, 0);
        assert!(t.plans.is_empty());
    }

    #[test]
    fn static_pairing_rules() {
        // Aligned, independent: pairable.
        assert!(static_pair_ok(&alu(0, 1, 2), &alu(4, 3, 4)));
        // Misaligned first op.
        assert!(!static_pair_ok(&alu(4, 1, 2), &alu(8, 3, 4)));
        // Non-adjacent pcs.
        assert!(!static_pair_ok(&alu(0, 1, 2), &alu(12, 3, 4)));
        // Intra-pair RAW dependence.
        assert!(!static_pair_ok(&alu(0, 3, 1), &alu(4, 4, 3)));
        // FP compare feeding a branch on FpCond.
        let cmp = TraceOp::bare(0, OpKind::FpCmp);
        let br = TraceOp {
            pc: 4,
            kind: OpKind::Branch {
                taken: true,
                target: 0,
            },
            dst: None,
            src1: Some(ArchReg::FpCond),
            src2: None,
        };
        assert!(!static_pair_ok(&cmp, &br));
        // Two memory ops.
        let ld = TraceOp::bare(
            0,
            OpKind::Load {
                ea: 0,
                width: MemWidth::Word,
            },
        );
        let st = TraceOp::bare(
            4,
            OpKind::Store {
                ea: 8,
                width: MemWidth::Word,
            },
        );
        assert!(!static_pair_ok(&ld, &st));
    }

    #[test]
    fn empty_trace_lowers_to_nothing() {
        let b = BlockTrace::lower_ops(std::iter::empty());
        assert!(b.is_empty());
        assert_eq!(b.templates().len(), 0);
        assert_eq!(b.instances().len(), 0);
        assert_eq!(b.iter().count(), 0);
        assert_eq!(b.reuse_factor(), 0.0);
    }

    /// A trace exercising every serialisation-relevant feature: loops
    /// (deduplicated templates), loads, stores, mul/div, FP ops,
    /// branches and a trailing partial block.
    fn codec_ops() -> Vec<TraceOp> {
        let load = TraceOp {
            pc: 8,
            kind: OpKind::Load {
                ea: 0x2000,
                width: MemWidth::Word,
            },
            dst: Some(ArchReg::Int(7)),
            src1: Some(ArchReg::Int(29)),
            src2: None,
        };
        let body = [
            alu(0, 1, 2),
            alu(4, 2, 1),
            load,
            TraceOp::bare(12, OpKind::IntMul),
            TraceOp::bare(16, OpKind::FpAdd),
            branch(20, true),
        ];
        body.iter()
            .cycle()
            .take(body.len() * 3)
            .copied()
            .chain([alu(24, 3, 7), alu(28, 4, 3)])
            .collect()
    }

    #[test]
    fn codec_round_trip_reproduces_fresh_lowering() {
        let b = BlockTrace::lower_ops(codec_ops());
        let mut buf = Vec::new();
        b.write_to(&mut buf).unwrap();
        let back = BlockTrace::read_from(&buf[..]).unwrap();
        // Full structural equality: pool, templates (including the
        // re-derived runs, masks and plans), sequence and stats.
        assert_eq!(back, b);
        let replayed: Vec<TraceOp> = back.iter().collect();
        assert_eq!(replayed, codec_ops());
    }

    #[test]
    fn codec_round_trips_empty_lowering() {
        let b = BlockTrace::default();
        let mut buf = Vec::new();
        b.write_to(&mut buf).unwrap();
        assert_eq!(BlockTrace::read_from(&buf[..]).unwrap(), b);
    }

    #[test]
    fn codec_validates_header_and_sections() {
        let b = BlockTrace::lower_ops(codec_ops());
        let mut buf = Vec::new();
        b.write_to(&mut buf).unwrap();

        assert!(BlockTrace::read_from(&b"NOTABLOCKTRACE.."[..]).is_err());

        let mut bad_version = buf.clone();
        bad_version[8] = 99;
        assert!(BlockTrace::read_from(&bad_version[..]).is_err());

        // Truncations anywhere must error, never panic.
        for cut in [4usize, 20, 110, buf.len() - 1] {
            assert!(BlockTrace::read_from(&buf[..cut]).is_err());
        }

        // First instance id (after magic+version+total+stats, the
        // template-count word and one length per template, and the
        // sequence count) pointed at a nonexistent template.
        let seq_start = 8 + 4 + 8 + 8 * TRACE_STAT_WORDS + 4 + 4 * b.templates().len() + 4;
        let mut bad_id = buf.clone();
        bad_id[seq_start..seq_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(BlockTrace::read_from(&bad_id[..]).is_err());

        // Oversized template length.
        let tmpl_start = 8 + 4 + 8 + 8 * TRACE_STAT_WORDS + 4;
        let mut bad_len = buf;
        bad_len[tmpl_start..tmpl_start + 4]
            .copy_from_slice(&(MAX_BLOCK_OPS as u32 + 1).to_le_bytes());
        assert!(BlockTrace::read_from(&bad_len[..]).is_err());
    }

    #[test]
    fn lower_matches_packed_trace() {
        let ops = [
            alu(0, 1, 2),
            branch(4, true),
            alu(8, 2, 1),
            branch(12, false),
        ];
        let packed: PackedTrace = ops.iter().copied().collect();
        let b = BlockTrace::lower(&packed);
        assert_eq!(b.len(), packed.len() as u64);
        assert_eq!(b.stats(), packed.stats());
        let replayed: Vec<TraceOp> = b.iter().collect();
        let direct: Vec<TraceOp> = packed.iter().collect();
        assert_eq!(replayed, direct);
    }
}
