//! Versioned binary checkpoint codec for full-machine snapshots.
//!
//! The sampling/fast-forward work needs to freeze a running simulation —
//! caches, MSHRs, stream buffers, BIU (including its latency RNG), FPU
//! queues, ROB, scoreboard and clock — and later resume it bit-identically.
//! This module provides the serialization substrate: a [`Snapshot`] trait
//! implemented by every stateful unit, plus a [`SnapshotWriter`] /
//! [`SnapshotReader`] pair speaking a little-endian binary format in the
//! same style as the `trace_io` trace codec (magic, explicit version,
//! hard errors on any structural mismatch).
//!
//! Layout: an 12-byte header (`b"AURACKPT"` + format version), then a
//! sequence of unit sections. Each section opens with a 4-byte ASCII tag
//! so a reader that has drifted out of sync fails loudly at the next
//! section boundary instead of silently misinterpreting payload bytes.
//! Fixed-width integers are little-endian; collection lengths are `u64`.
//!
//! Checkpoints are *configuration-relative*: a snapshot records dynamic
//! state only (tags, queue contents, clocks, counters), never geometry or
//! capacities. Restoring into a machine built from a different
//! [`MachineConfig`](../aurora_core/struct.MachineConfig.html) is detected
//! by the per-unit capacity guards and reported as
//! [`SnapshotError::Corrupt`].

use std::fmt;
use std::io;

/// Version stamp of the checkpoint container format. Bump on any change
/// to the section layout or per-unit encodings.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"AURACKPT";

/// Decode-side failure: structural corruption, truncation, or a
/// checkpoint/machine mismatch. Copyable and allocation-free so the
/// restore path stays cheap and lint-clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `AURACKPT` magic.
    BadMagic,
    /// The container version is not [`CHECKPOINT_FORMAT_VERSION`].
    Version {
        /// Version stamp found in the header.
        found: u32,
    },
    /// The buffer ended before the value being decoded.
    Truncated,
    /// A section opened with an unexpected tag — reader and writer have
    /// disagreed about the unit sequence.
    Section {
        /// Tag the caller expected next.
        expected: [u8; 4],
        /// Tag actually present in the buffer.
        found: [u8; 4],
    },
    /// A decoded value is impossible for the machine being restored into
    /// (capacity mismatch, out-of-range discriminant, non-boolean byte).
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an Aurora checkpoint (bad magic)"),
            SnapshotError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (expected {CHECKPOINT_FORMAT_VERSION})"
            ),
            SnapshotError::Truncated => write!(f, "checkpoint truncated"),
            SnapshotError::Section { expected, found } => write!(
                f,
                "checkpoint section mismatch: expected {:?}, found {:?}",
                core::str::from_utf8(expected).unwrap_or("????"),
                core::str::from_utf8(found).unwrap_or("????"),
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for io::Error {
    fn from(e: SnapshotError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A unit that can serialize its dynamic state into a checkpoint and
/// later restore it in place.
///
/// `restore` mutates an already-constructed unit (built from the same
/// machine configuration that produced the snapshot) rather than
/// constructing one, so capacities and geometry act as cross-checks and
/// the restore path performs no structural allocation beyond refilling
/// steady-state buffers.
pub trait Snapshot {
    /// Appends this unit's state to the checkpoint.
    fn save(&self, w: &mut SnapshotWriter);
    /// Overwrites this unit's state from the checkpoint cursor.
    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;
}

/// Append-only encoder for the checkpoint byte stream.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a checkpoint: writes the magic and format version.
    pub fn new() -> SnapshotWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&CHECKPOINT_FORMAT_VERSION.to_le_bytes());
        SnapshotWriter { buf }
    }

    /// Opens a unit section with a 4-byte ASCII tag.
    #[inline]
    pub fn section(&mut self, tag: [u8; 4]) {
        self.buf.extend_from_slice(&tag);
    }

    /// Appends a raw byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length as a `u64`.
    #[inline]
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as a single `0`/`1` byte.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an optional `u64` as a presence byte plus payload.
    #[inline]
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends raw bytes verbatim (for pre-packed records).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finishes the checkpoint and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> SnapshotWriter {
        SnapshotWriter::new()
    }
}

/// Cursor over an encoded checkpoint. Construction validates the header;
/// every accessor fails with [`SnapshotError`] rather than panicking, so
/// arbitrary bytes can be fed in safely.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the magic and version, leaving the cursor at the first
    /// section.
    pub fn new(buf: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let mut r = SnapshotReader { buf, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(SnapshotError::Version { found: version });
        }
        Ok(r)
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Consumes a section header, verifying the tag matches.
    pub fn section(&mut self, expected: [u8; 4]) -> Result<(), SnapshotError> {
        let found: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        if found != expected {
            return Err(SnapshotError::Section { expected, found });
        }
        Ok(())
    }

    /// Reads a raw byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(SnapshotError::Truncated)
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a collection length, bounds-checked against `max` so a
    /// corrupt length cannot trigger a huge allocation.
    #[inline]
    pub fn len(&mut self, max: usize) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| SnapshotError::Corrupt("length overflow"))?;
        if v > max {
            return Err(SnapshotError::Corrupt("length exceeds unit capacity"));
        }
        Ok(v)
    }

    /// Reads a boolean; any byte other than `0`/`1` is corruption.
    #[inline]
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("non-boolean byte")),
        }
    }

    /// Reads an optional `u64` written by [`SnapshotWriter::put_opt_u64`].
    #[inline]
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads exactly `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Asserts the checkpoint has been fully consumed — trailing garbage
    /// means the reader and writer disagree about the state layout.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Corrupt("trailing bytes after final section"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_values_round_trip() {
        let mut w = SnapshotWriter::new();
        w.section(*b"TEST");
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_len(3);
        w.put_bool(true);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(42));
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.section(*b"TEST").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.len(8).unwrap(), 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = SnapshotWriter::new().finish();
        bytes[0] ^= 0xFF;
        assert_eq!(
            SnapshotReader::new(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = SnapshotWriter::new().finish();
        bytes[8] = 0xFE;
        assert!(matches!(
            SnapshotReader::new(&bytes).unwrap_err(),
            SnapshotError::Version { .. }
        ));
    }

    #[test]
    fn truncation_detected_mid_value() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes[..bytes.len() - 1]).unwrap();
        assert_eq!(r.u64().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn section_tag_mismatch_detected() {
        let mut w = SnapshotWriter::new();
        w.section(*b"AAAA");
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(
            r.section(*b"BBBB").unwrap_err(),
            SnapshotError::Section { .. }
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapshotWriter::new();
        w.put_u8(0);
        let bytes = w.finish();
        let r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(r.finish().unwrap_err(), SnapshotError::Corrupt(_)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut w = SnapshotWriter::new();
        w.put_len(1_000_000);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(r.len(64).unwrap_err(), SnapshotError::Corrupt(_)));
    }

    #[test]
    fn corrupt_bool_rejected() {
        let mut w = SnapshotWriter::new();
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(r.bool().unwrap_err(), SnapshotError::Corrupt(_)));
    }
}
