//! Programmatic program construction with label back-patching.
//!
//! The workload crate mostly writes kernels as assembly text, but
//! data-driven code generation (e.g. unrolled loops whose shape depends on
//! a parameter) is easier with a builder.

use std::collections::BTreeMap;

use crate::instr::Instruction;
use crate::opcode::Opcode;
use crate::program::{Program, Segment, DATA_BASE, TEXT_BASE};
use crate::reg::Reg;

/// A forward-referenceable code label created by
/// [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incrementally builds a [`Program`] from [`Instruction`]s and raw data.
///
/// ```
/// use aurora_isa::{Emulator, Instruction, Opcode, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.new_label();
/// b.push(Instruction::alu_i(Opcode::Addiu, Reg::T0, Reg::ZERO, 5));
/// b.bind(loop_top);
/// b.push(Instruction::alu_i(Opcode::Addiu, Reg::T0, Reg::T0, -1));
/// b.branch(Opcode::Bne, Reg::T0, Reg::ZERO, loop_top);
/// b.push(Instruction::nop()); // delay slot
/// b.push(Instruction::system(Opcode::Break));
/// let program = b.build();
///
/// let mut emu = Emulator::new(&program);
/// emu.run(1_000).unwrap();
/// assert_eq!(emu.reg(Reg::T0), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Instruction>,
    data: Vec<u8>,
    labels: Vec<Option<u32>>,
    branch_fixups: Vec<(usize, Label)>,
    jump_fixups: Vec<(usize, Label)>,
    symbols: BTreeMap<String, u32>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current code position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let addr = TEXT_BASE + 4 * self.instructions.len() as u32;
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(addr);
    }

    /// The address of the next instruction to be pushed.
    pub fn here(&self) -> u32 {
        TEXT_BASE + 4 * self.instructions.len() as u32
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instruction) -> &mut ProgramBuilder {
        self.instructions.push(instr);
        self
    }

    /// Appends a compare branch to `label` (offset patched at build time).
    pub fn branch(&mut self, op: Opcode, rs: Reg, rt: Reg, label: Label) -> &mut ProgramBuilder {
        self.branch_fixups.push((self.instructions.len(), label));
        self.instructions
            .push(Instruction::branch_cmp(op, rs, rt, 0));
        self
    }

    /// Appends a compare-with-zero branch to `label`.
    pub fn branch_z(&mut self, op: Opcode, rs: Reg, label: Label) -> &mut ProgramBuilder {
        self.branch_fixups.push((self.instructions.len(), label));
        self.instructions.push(Instruction::branch_z(op, rs, 0));
        self
    }

    /// Appends an absolute jump to `label`.
    pub fn jump(&mut self, op: Opcode, label: Label) -> &mut ProgramBuilder {
        self.jump_fixups.push((self.instructions.len(), label));
        self.instructions.push(Instruction::jump(op, 0));
        self
    }

    /// Appends `li rt, value` (one or two instructions).
    pub fn load_imm(&mut self, rt: Reg, value: i32) -> &mut ProgramBuilder {
        if (-32768..=32767).contains(&value) {
            self.push(Instruction::alu_i(
                Opcode::Addiu,
                rt,
                Reg::ZERO,
                value as i16,
            ));
        } else {
            self.push(Instruction::lui(rt, (value >> 16) as i16));
            if value as u32 & 0xFFFF != 0 {
                self.push(Instruction::alu_i(Opcode::Ori, rt, rt, value as u16 as i16));
            }
        }
        self
    }

    /// Appends the two-instruction address materialisation `la rt, <data>`
    /// for a data offset previously returned by [`ProgramBuilder::data`].
    pub fn load_data_addr(&mut self, rt: Reg, data_addr: u32) -> &mut ProgramBuilder {
        self.push(Instruction::lui(Reg::AT, (data_addr >> 16) as i16));
        self.push(Instruction::alu_i(
            Opcode::Ori,
            rt,
            Reg::AT,
            data_addr as u16 as i16,
        ))
    }

    /// Appends raw bytes to the data segment, returning their address.
    pub fn data(&mut self, bytes: &[u8]) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends 32-bit words to the data segment, returning their address.
    pub fn data_words(&mut self, words: &[u32]) -> u32 {
        self.align(4);
        let addr = DATA_BASE + self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends doubles to the data segment, returning their address.
    pub fn data_doubles(&mut self, values: &[f64]) -> u32 {
        self.align(8);
        let addr = DATA_BASE + self.data.len() as u32;
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        addr
    }

    /// Reserves `n` zeroed bytes in the data segment, returning the address.
    pub fn data_space(&mut self, n: usize) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Pads the data segment to `align` bytes (power of two).
    pub fn align(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Records `name` as a symbol for the current code position.
    pub fn name_here(&mut self, name: &str) {
        self.symbols.insert(name.to_owned(), self.here());
    }

    /// Finalises the program, patching all label references.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound, or if a branch
    /// offset does not fit in 16 bits.
    pub fn build(mut self) -> Program {
        for (idx, label) in &self.branch_fixups {
            let target = self.labels[label.0].expect("branch to unbound label");
            let at = TEXT_BASE + 4 * *idx as u32;
            let delta = (target as i64 - (at as i64 + 4)) / 4;
            assert!(
                (-32768..=32767).contains(&delta),
                "branch offset {delta} out of range"
            );
            self.instructions[*idx].imm = delta as i16;
        }
        for (idx, label) in &self.jump_fixups {
            let target = self.labels[label.0].expect("jump to unbound label");
            self.instructions[*idx].target = target >> 2;
        }
        Program::new(
            TEXT_BASE,
            self.instructions,
            Segment {
                base: DATA_BASE,
                bytes: self.data,
            },
            TEXT_BASE,
            self.symbols,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::Emulator;

    #[test]
    fn builds_a_working_loop() {
        let mut b = ProgramBuilder::new();
        let arr = b.data_words(&[1, 2, 3, 4, 5]);
        let top = b.new_label();
        b.load_data_addr(Reg::S0, arr);
        b.load_imm(Reg::S1, 5);
        b.load_imm(Reg::T1, 0);
        b.bind(top);
        b.push(Instruction::mem(Opcode::Lw, Reg::T0, Reg::S0, 0));
        b.push(Instruction::alu_r(Opcode::Addu, Reg::T1, Reg::T1, Reg::T0));
        b.push(Instruction::alu_i(Opcode::Addiu, Reg::S0, Reg::S0, 4));
        b.push(Instruction::alu_i(Opcode::Addiu, Reg::S1, Reg::S1, -1));
        b.branch(Opcode::Bne, Reg::S1, Reg::ZERO, top);
        b.push(Instruction::nop());
        b.push(Instruction::system(Opcode::Break));
        let p = b.build();

        let mut emu = Emulator::new(&p);
        emu.run(1_000).unwrap();
        assert_eq!(emu.reg(Reg::T1), 15);
    }

    #[test]
    fn forward_jumps_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.load_imm(Reg::T0, 1);
        b.jump(Opcode::J, end);
        b.push(Instruction::nop());
        b.load_imm(Reg::T0, 2); // skipped
        b.bind(end);
        b.push(Instruction::system(Opcode::Break));
        let p = b.build();
        let mut emu = Emulator::new(&p);
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::T0), 1);
    }

    #[test]
    fn data_helpers_align() {
        let mut b = ProgramBuilder::new();
        let a = b.data(&[1]);
        let w = b.data_words(&[7]);
        let d = b.data_doubles(&[1.5]);
        assert_eq!(w % 4, 0);
        assert_eq!(d % 8, 0);
        assert!(w > a && d > w);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.branch(Opcode::Beq, Reg::ZERO, Reg::ZERO, l);
        b.push(Instruction::nop());
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }
}
