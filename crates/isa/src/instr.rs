//! The [`Instruction`] type and its standard MIPS binary encoding.

use std::fmt;

use crate::opcode::{Opcode, OpcodeClass};
use crate::reg::{FReg, Reg};

const FMT_S: u32 = 0x10;
const FMT_D: u32 = 0x11;
const FMT_W: u32 = 0x14;

/// A single decoded instruction: an [`Opcode`] plus its operand fields.
///
/// This is a passive compound value in the C spirit, so the fields are
/// public; only the fields relevant to [`Opcode::class`] are meaningful and
/// the rest are left at their defaults. Use the class-specific constructors
/// ([`Instruction::alu_r`], [`Instruction::mem`], …) to build well-formed
/// values, and [`Instruction::encode`]/[`Instruction::decode`] to convert
/// to and from the 32-bit MIPS machine word.
///
/// ```
/// use aurora_isa::{Instruction, Opcode, Reg};
///
/// let add = Instruction::alu_r(Opcode::Addu, Reg::T0, Reg::T1, Reg::T2);
/// let word = add.encode();
/// assert_eq!(Instruction::decode(word).unwrap(), add);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub op: Opcode,
    /// Integer destination register (R-type).
    pub rd: Reg,
    /// First integer source register.
    pub rs: Reg,
    /// Second integer source / I-type destination register.
    pub rt: Reg,
    /// FP destination register.
    pub fd: FReg,
    /// First FP source register.
    pub fs: FReg,
    /// Second FP source register.
    pub ft: FReg,
    /// Shift amount for immediate shifts.
    pub shamt: u8,
    /// Sign-extended 16-bit immediate (ALU immediate, load/store offset,
    /// branch word offset relative to the delay slot).
    pub imm: i16,
    /// 26-bit jump target, in words.
    pub target: u32,
}

impl Default for Instruction {
    fn default() -> Self {
        Instruction {
            op: Opcode::Nop,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            fd: FReg::new(0).unwrap(),
            fs: FReg::new(0).unwrap(),
            ft: FReg::new(0).unwrap(),
            shamt: 0,
            imm: 0,
            target: 0,
        }
    }
}

impl Instruction {
    /// A `nop`.
    pub fn nop() -> Instruction {
        Instruction::default()
    }

    /// Three-register ALU instruction, e.g. `addu $rd, $rs, $rt`.
    pub fn alu_r(op: Opcode, rd: Reg, rs: Reg, rt: Reg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::AluR);
        Instruction {
            op,
            rd,
            rs,
            rt,
            ..Default::default()
        }
    }

    /// Immediate shift, e.g. `sll $rd, $rt, shamt`.
    pub fn shift(op: Opcode, rd: Reg, rt: Reg, shamt: u8) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::Shift);
        debug_assert!(shamt < 32);
        Instruction {
            op,
            rd,
            rt,
            shamt,
            ..Default::default()
        }
    }

    /// Variable shift, e.g. `sllv $rd, $rt, $rs`.
    pub fn shift_v(op: Opcode, rd: Reg, rt: Reg, rs: Reg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::ShiftV);
        Instruction {
            op,
            rd,
            rt,
            rs,
            ..Default::default()
        }
    }

    /// HI/LO multiply or divide, e.g. `mult $rs, $rt`.
    pub fn mul_div(op: Opcode, rs: Reg, rt: Reg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::MulDiv);
        Instruction {
            op,
            rs,
            rt,
            ..Default::default()
        }
    }

    /// Move from HI/LO (`mfhi $rd`) or to HI/LO (`mthi $rs`).
    pub fn hi_lo(op: Opcode, r: Reg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::HiLo);
        match op {
            Opcode::Mfhi | Opcode::Mflo => Instruction {
                op,
                rd: r,
                ..Default::default()
            },
            _ => Instruction {
                op,
                rs: r,
                ..Default::default()
            },
        }
    }

    /// Immediate ALU instruction, e.g. `addiu $rt, $rs, imm`.
    pub fn alu_i(op: Opcode, rt: Reg, rs: Reg, imm: i16) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::AluI);
        Instruction {
            op,
            rt,
            rs,
            imm,
            ..Default::default()
        }
    }

    /// `lui $rt, imm`.
    pub fn lui(rt: Reg, imm: i16) -> Instruction {
        Instruction {
            op: Opcode::Lui,
            rt,
            imm,
            ..Default::default()
        }
    }

    /// Integer load or store, e.g. `lw $rt, imm($rs)`.
    pub fn mem(op: Opcode, rt: Reg, base: Reg, imm: i16) -> Instruction {
        debug_assert!(matches!(op.class(), OpcodeClass::Load | OpcodeClass::Store));
        Instruction {
            op,
            rt,
            rs: base,
            imm,
            ..Default::default()
        }
    }

    /// FP load or store, e.g. `lwc1 $ft, imm($rs)`.
    pub fn fp_mem(op: Opcode, ft: FReg, base: Reg, imm: i16) -> Instruction {
        debug_assert!(matches!(
            op.class(),
            OpcodeClass::FpLoad | OpcodeClass::FpStore
        ));
        Instruction {
            op,
            ft,
            rs: base,
            imm,
            ..Default::default()
        }
    }

    /// Absolute jump, e.g. `j target` (target in words).
    pub fn jump(op: Opcode, target: u32) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::Jump);
        debug_assert!(target < (1 << 26));
        Instruction {
            op,
            target,
            ..Default::default()
        }
    }

    /// Jump through register: `jr $rs` or `jalr $rd, $rs`.
    pub fn jump_reg(op: Opcode, rd: Reg, rs: Reg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::JumpReg);
        Instruction {
            op,
            rd,
            rs,
            ..Default::default()
        }
    }

    /// Two-register branch, e.g. `beq $rs, $rt, offset` (offset in words
    /// relative to the delay slot).
    pub fn branch_cmp(op: Opcode, rs: Reg, rt: Reg, imm: i16) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::BranchCmp);
        Instruction {
            op,
            rs,
            rt,
            imm,
            ..Default::default()
        }
    }

    /// Compare-with-zero branch, e.g. `blez $rs, offset`.
    pub fn branch_z(op: Opcode, rs: Reg, imm: i16) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::BranchZ);
        Instruction {
            op,
            rs,
            imm,
            ..Default::default()
        }
    }

    /// FP condition branch, `bc1t offset` / `bc1f offset`.
    pub fn branch_fp(op: Opcode, imm: i16) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::BranchFp);
        Instruction {
            op,
            imm,
            ..Default::default()
        }
    }

    /// Three-register FP arithmetic, e.g. `add.d $fd, $fs, $ft`.
    ///
    /// `sqrt.s`/`sqrt.d` take a single source; pass it as `fs` and leave
    /// `ft` as `$f0`.
    pub fn fp_arith3(op: Opcode, fd: FReg, fs: FReg, ft: FReg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::FpArith3);
        Instruction {
            op,
            fd,
            fs,
            ft,
            ..Default::default()
        }
    }

    /// Two-register FP arithmetic or conversion, e.g. `cvt.d.w $fd, $fs`.
    pub fn fp_arith2(op: Opcode, fd: FReg, fs: FReg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::FpArith2);
        Instruction {
            op,
            fd,
            fs,
            ..Default::default()
        }
    }

    /// FP compare, e.g. `c.lt.d $fs, $ft`.
    pub fn fp_compare(op: Opcode, fs: FReg, ft: FReg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::FpCompare);
        Instruction {
            op,
            fs,
            ft,
            ..Default::default()
        }
    }

    /// `mfc1 $rt, $fs` / `mtc1 $rt, $fs`.
    pub fn fp_move(op: Opcode, rt: Reg, fs: FReg) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::FpMove);
        Instruction {
            op,
            rt,
            fs,
            ..Default::default()
        }
    }

    /// `syscall` or `break`.
    pub fn system(op: Opcode) -> Instruction {
        debug_assert_eq!(op.class(), OpcodeClass::System);
        Instruction {
            op,
            ..Default::default()
        }
    }

    /// Encodes this instruction into its 32-bit MIPS machine word.
    pub fn encode(&self) -> u32 {
        use Opcode::*;
        let rs = self.rs.number() as u32;
        let rt = self.rt.number() as u32;
        let rd = self.rd.number() as u32;
        let fs = self.fs.number() as u32;
        let ft = self.ft.number() as u32;
        let fd = self.fd.number() as u32;
        let sh = self.shamt as u32;
        let imm = self.imm as u16 as u32;

        let r_type = |funct: u32| (rs << 21) | (rt << 16) | (rd << 11) | (sh << 6) | funct;
        let i_type = |op: u32| (op << 26) | (rs << 21) | (rt << 16) | imm;
        let cop1 = |fmt: u32, funct: u32| {
            (0x11 << 26) | (fmt << 21) | (ft << 16) | (fs << 11) | (fd << 6) | funct
        };
        let cmp =
            |fmt: u32, funct: u32| (0x11 << 26) | (fmt << 21) | (ft << 16) | (fs << 11) | funct;

        match self.op {
            Add => r_type(0x20),
            Addu => r_type(0x21),
            Sub => r_type(0x22),
            Subu => r_type(0x23),
            And => r_type(0x24),
            Or => r_type(0x25),
            Xor => r_type(0x26),
            Nor => r_type(0x27),
            Slt => r_type(0x2A),
            Sltu => r_type(0x2B),
            Sll => r_type(0x00),
            Srl => r_type(0x02),
            Sra => r_type(0x03),
            Sllv => r_type(0x04),
            Srlv => r_type(0x06),
            Srav => r_type(0x07),
            Jr => r_type(0x08),
            Jalr => r_type(0x09),
            Syscall => r_type(0x0C),
            Break => r_type(0x0D),
            Mfhi => r_type(0x10),
            Mthi => r_type(0x11),
            Mflo => r_type(0x12),
            Mtlo => r_type(0x13),
            Mult => r_type(0x18),
            Multu => r_type(0x19),
            Div => r_type(0x1A),
            Divu => r_type(0x1B),
            Nop => 0,
            Bltz => (1 << 26) | (rs << 21) | imm,
            Bgez => (1 << 26) | (rs << 21) | (1 << 16) | imm,
            J => (2 << 26) | self.target,
            Jal => (3 << 26) | self.target,
            Beq => i_type(4),
            Bne => i_type(5),
            Blez => i_type(6),
            Bgtz => i_type(7),
            Addi => i_type(8),
            Addiu => i_type(9),
            Slti => i_type(0xA),
            Sltiu => i_type(0xB),
            Andi => i_type(0xC),
            Ori => i_type(0xD),
            Xori => i_type(0xE),
            Lui => i_type(0xF),
            Lb => i_type(0x20),
            Lh => i_type(0x21),
            Lw => i_type(0x23),
            Lbu => i_type(0x24),
            Lhu => i_type(0x25),
            Sb => i_type(0x28),
            Sh => i_type(0x29),
            Sw => i_type(0x2B),
            Lwc1 => (0x31 << 26) | (rs << 21) | (ft << 16) | imm,
            Ldc1 => (0x35 << 26) | (rs << 21) | (ft << 16) | imm,
            Swc1 => (0x39 << 26) | (rs << 21) | (ft << 16) | imm,
            Sdc1 => (0x3D << 26) | (rs << 21) | (ft << 16) | imm,
            Mfc1 => (0x11 << 26) | (rt << 16) | (fs << 11),
            Mtc1 => (0x11 << 26) | (4 << 21) | (rt << 16) | (fs << 11),
            Bc1f => (0x11 << 26) | (8 << 21) | imm,
            Bc1t => (0x11 << 26) | (8 << 21) | (1 << 16) | imm,
            AddS => cop1(FMT_S, 0x00),
            SubS => cop1(FMT_S, 0x01),
            MulS => cop1(FMT_S, 0x02),
            DivS => cop1(FMT_S, 0x03),
            SqrtS => cop1(FMT_S, 0x04),
            AbsS => cop1(FMT_S, 0x05),
            MovS => cop1(FMT_S, 0x06),
            NegS => cop1(FMT_S, 0x07),
            AddD => cop1(FMT_D, 0x00),
            SubD => cop1(FMT_D, 0x01),
            MulD => cop1(FMT_D, 0x02),
            DivD => cop1(FMT_D, 0x03),
            SqrtD => cop1(FMT_D, 0x04),
            AbsD => cop1(FMT_D, 0x05),
            MovD => cop1(FMT_D, 0x06),
            NegD => cop1(FMT_D, 0x07),
            CvtSD => cop1(FMT_D, 0x20),
            CvtSW => cop1(FMT_W, 0x20),
            CvtDS => cop1(FMT_S, 0x21),
            CvtDW => cop1(FMT_W, 0x21),
            CvtWS => cop1(FMT_S, 0x24),
            CvtWD => cop1(FMT_D, 0x24),
            CEqS => cmp(FMT_S, 0x32),
            CLtS => cmp(FMT_S, 0x3C),
            CLeS => cmp(FMT_S, 0x3E),
            CEqD => cmp(FMT_D, 0x32),
            CLtD => cmp(FMT_D, 0x3C),
            CLeD => cmp(FMT_D, 0x3E),
        }
    }

    /// Decodes a 32-bit MIPS machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the word does not correspond to any
    /// instruction in the supported subset. The all-zero word decodes to
    /// [`Opcode::Nop`].
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        use Opcode::*;
        if word == 0 {
            return Ok(Instruction::nop());
        }
        let op = word >> 26;
        let rs = Reg::new(((word >> 21) & 31) as u8).unwrap();
        let rt = Reg::new(((word >> 16) & 31) as u8).unwrap();
        let rd = Reg::new(((word >> 11) & 31) as u8).unwrap();
        let shamt = ((word >> 6) & 31) as u8;
        let funct = word & 0x3F;
        let imm = (word & 0xFFFF) as u16 as i16;
        let err = || DecodeError { word };

        let instr = match op {
            0 => {
                let opc = match funct {
                    0x20 => Add,
                    0x21 => Addu,
                    0x22 => Sub,
                    0x23 => Subu,
                    0x24 => And,
                    0x25 => Or,
                    0x26 => Xor,
                    0x27 => Nor,
                    0x2A => Slt,
                    0x2B => Sltu,
                    0x00 => Sll,
                    0x02 => Srl,
                    0x03 => Sra,
                    0x04 => Sllv,
                    0x06 => Srlv,
                    0x07 => Srav,
                    0x08 => Jr,
                    0x09 => Jalr,
                    0x0C => Syscall,
                    0x0D => Break,
                    0x10 => Mfhi,
                    0x11 => Mthi,
                    0x12 => Mflo,
                    0x13 => Mtlo,
                    0x18 => Mult,
                    0x19 => Multu,
                    0x1A => Div,
                    0x1B => Divu,
                    _ => return Err(err()),
                };
                Instruction {
                    op: opc,
                    rd,
                    rs,
                    rt,
                    shamt,
                    ..Default::default()
                }
            }
            1 => match rt.number() {
                0 => Instruction::branch_z(Bltz, rs, imm),
                1 => Instruction::branch_z(Bgez, rs, imm),
                _ => return Err(err()),
            },
            2 => Instruction::jump(J, word & 0x03FF_FFFF),
            3 => Instruction::jump(Jal, word & 0x03FF_FFFF),
            4 => Instruction::branch_cmp(Beq, rs, rt, imm),
            5 => Instruction::branch_cmp(Bne, rs, rt, imm),
            6 => Instruction::branch_z(Blez, rs, imm),
            7 => Instruction::branch_z(Bgtz, rs, imm),
            8..=0xE => {
                let opc = match op {
                    8 => Addi,
                    9 => Addiu,
                    0xA => Slti,
                    0xB => Sltiu,
                    0xC => Andi,
                    0xD => Ori,
                    _ => Xori,
                };
                Instruction::alu_i(opc, rt, rs, imm)
            }
            0xF => Instruction::lui(rt, imm),
            0x20 => Instruction::mem(Lb, rt, rs, imm),
            0x21 => Instruction::mem(Lh, rt, rs, imm),
            0x23 => Instruction::mem(Lw, rt, rs, imm),
            0x24 => Instruction::mem(Lbu, rt, rs, imm),
            0x25 => Instruction::mem(Lhu, rt, rs, imm),
            0x28 => Instruction::mem(Sb, rt, rs, imm),
            0x29 => Instruction::mem(Sh, rt, rs, imm),
            0x2B => Instruction::mem(Sw, rt, rs, imm),
            0x31 => Instruction::fp_mem(Lwc1, ft_of(word), rs, imm),
            0x35 => Instruction::fp_mem(Ldc1, ft_of(word), rs, imm),
            0x39 => Instruction::fp_mem(Swc1, ft_of(word), rs, imm),
            0x3D => Instruction::fp_mem(Sdc1, ft_of(word), rs, imm),
            0x11 => decode_cop1(word).ok_or_else(err)?,
            _ => return Err(err()),
        };
        Ok(instr)
    }
}

fn ft_of(word: u32) -> FReg {
    FReg::new(((word >> 16) & 31) as u8).unwrap()
}

fn decode_cop1(word: u32) -> Option<Instruction> {
    use Opcode::*;
    let fmt = (word >> 21) & 31;
    let rt = Reg::new(((word >> 16) & 31) as u8).unwrap();
    let ft = FReg::new(((word >> 16) & 31) as u8).unwrap();
    let fs = FReg::new(((word >> 11) & 31) as u8).unwrap();
    let fd = FReg::new(((word >> 6) & 31) as u8).unwrap();
    let funct = word & 0x3F;
    let imm = (word & 0xFFFF) as u16 as i16;

    match fmt {
        0 => Some(Instruction::fp_move(Mfc1, rt, fs)),
        4 => Some(Instruction::fp_move(Mtc1, rt, fs)),
        8 => match (word >> 16) & 31 {
            0 => Some(Instruction::branch_fp(Bc1f, imm)),
            1 => Some(Instruction::branch_fp(Bc1t, imm)),
            _ => None,
        },
        FMT_S | FMT_D | FMT_W => {
            let opc = match (funct, fmt) {
                (0x00, FMT_S) => AddS,
                (0x00, FMT_D) => AddD,
                (0x01, FMT_S) => SubS,
                (0x01, FMT_D) => SubD,
                (0x02, FMT_S) => MulS,
                (0x02, FMT_D) => MulD,
                (0x03, FMT_S) => DivS,
                (0x03, FMT_D) => DivD,
                (0x04, FMT_S) => SqrtS,
                (0x04, FMT_D) => SqrtD,
                (0x05, FMT_S) => AbsS,
                (0x05, FMT_D) => AbsD,
                (0x06, FMT_S) => MovS,
                (0x06, FMT_D) => MovD,
                (0x07, FMT_S) => NegS,
                (0x07, FMT_D) => NegD,
                (0x20, FMT_D) => CvtSD,
                (0x20, FMT_W) => CvtSW,
                (0x21, FMT_S) => CvtDS,
                (0x21, FMT_W) => CvtDW,
                (0x24, FMT_S) => CvtWS,
                (0x24, FMT_D) => CvtWD,
                (0x32, FMT_S) => CEqS,
                (0x3C, FMT_S) => CLtS,
                (0x3E, FMT_S) => CLeS,
                (0x32, FMT_D) => CEqD,
                (0x3C, FMT_D) => CLtD,
                (0x3E, FMT_D) => CLeD,
                _ => return None,
            };
            let instr = match opc.class() {
                OpcodeClass::FpArith3 => Instruction::fp_arith3(opc, fd, fs, ft),
                OpcodeClass::FpArith2 => Instruction::fp_arith2(opc, fd, fs),
                OpcodeClass::FpCompare => Instruction::fp_compare(opc, fs, ft),
                _ => unreachable!(),
            };
            Some(instr)
        }
        _ => None,
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use OpcodeClass::*;
        let m = self.op.mnemonic();
        match self.op.class() {
            AluR => write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.rt),
            Shift => write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.shamt),
            ShiftV => write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.rs),
            MulDiv => write!(f, "{m} {}, {}", self.rs, self.rt),
            HiLo => match self.op {
                Opcode::Mfhi | Opcode::Mflo => write!(f, "{m} {}", self.rd),
                _ => write!(f, "{m} {}", self.rs),
            },
            AluI => write!(f, "{m} {}, {}, {}", self.rt, self.rs, self.imm),
            Lui => write!(f, "{m} {}, {}", self.rt, self.imm),
            Load | Store => write!(f, "{m} {}, {}({})", self.rt, self.imm, self.rs),
            FpLoad | FpStore => write!(f, "{m} {}, {}({})", self.ft, self.imm, self.rs),
            Jump => write!(f, "{m} {:#x}", self.target << 2),
            JumpReg => match self.op {
                Opcode::Jr => write!(f, "{m} {}", self.rs),
                _ => write!(f, "{m} {}, {}", self.rd, self.rs),
            },
            BranchCmp => write!(f, "{m} {}, {}, {}", self.rs, self.rt, self.imm),
            BranchZ => write!(f, "{m} {}, {}", self.rs, self.imm),
            BranchFp => write!(f, "{m} {}", self.imm),
            FpArith3 => write!(f, "{m} {}, {}, {}", self.fd, self.fs, self.ft),
            FpArith2 => write!(f, "{m} {}, {}", self.fd, self.fs),
            FpCompare => write!(f, "{m} {}, {}", self.fs, self.ft),
            FpMove => write!(f, "{m} {}, {}", self.rt, self.fs),
            System => f.write_str(m),
        }
    }
}

/// Error returned by [`Instruction::decode`] for unrecognised machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode machine word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(op: Opcode) -> Instruction {
        use OpcodeClass::*;
        let r1 = Reg::T0;
        let r2 = Reg::S1;
        let r3 = Reg::A2;
        let f2 = FReg::new(2).unwrap();
        let f4 = FReg::new(4).unwrap();
        let f6 = FReg::new(6).unwrap();
        match op.class() {
            AluR => Instruction::alu_r(op, r1, r2, r3),
            Shift => Instruction::shift(op, r1, r2, 7),
            ShiftV => Instruction::shift_v(op, r1, r2, r3),
            MulDiv => Instruction::mul_div(op, r1, r2),
            HiLo => Instruction::hi_lo(op, r1),
            AluI => Instruction::alu_i(op, r1, r2, -42),
            OpcodeClass::Lui => Instruction::lui(r1, 0x1234),
            Load | Store => Instruction::mem(op, r1, r2, -8),
            FpLoad | FpStore => Instruction::fp_mem(op, f4, r2, 16),
            Jump => Instruction::jump(op, 0x00AB_CDEF),
            JumpReg => Instruction::jump_reg(op, r1, r2),
            BranchCmp => Instruction::branch_cmp(op, r1, r2, -3),
            BranchZ => Instruction::branch_z(op, r1, 5),
            BranchFp => Instruction::branch_fp(op, 9),
            FpArith3 => Instruction::fp_arith3(op, f2, f4, f6),
            FpArith2 => Instruction::fp_arith2(op, f2, f4),
            FpCompare => Instruction::fp_compare(op, f2, f4),
            FpMove => Instruction::fp_move(op, r1, f4),
            System => Instruction::system(op),
        }
    }

    #[test]
    fn encode_decode_round_trips_every_opcode() {
        for &op in Opcode::all() {
            let instr = sample(op);
            let word = instr.encode();
            let back = Instruction::decode(word).unwrap_or_else(|e| panic!("decode {op:?}: {e}"));
            assert_eq!(back, instr, "round trip for {op:?} (word {word:#010x})");
        }
    }

    #[test]
    fn zero_word_is_nop() {
        assert_eq!(Instruction::decode(0).unwrap().op, Opcode::Nop);
        assert_eq!(Instruction::nop().encode(), 0);
    }

    #[test]
    fn known_encodings() {
        // addu $t0, $t1, $t2 == 0x012a4021
        let i = Instruction::alu_r(Opcode::Addu, Reg::T0, Reg::T1, Reg::T2);
        assert_eq!(i.encode(), 0x012A_4021);
        // lw $t0, 4($sp) == 0x8fa80004
        let i = Instruction::mem(Opcode::Lw, Reg::T0, Reg::SP, 4);
        assert_eq!(i.encode(), 0x8FA8_0004);
        // beq $t0, $zero, +1 == 0x11000001
        let i = Instruction::branch_cmp(Opcode::Beq, Reg::T0, Reg::ZERO, 1);
        assert_eq!(i.encode(), 0x1100_0001);
        // add.d $f2, $f4, $f6 == cop1, fmt=D(0x11)
        let i = Instruction::fp_arith3(
            Opcode::AddD,
            FReg::new(2).unwrap(),
            FReg::new(4).unwrap(),
            FReg::new(6).unwrap(),
        );
        assert_eq!(i.encode(), 0x4626_2080 | (2 << 6));
    }

    #[test]
    fn bad_words_error() {
        // opcode 0x3F is unused.
        assert!(Instruction::decode(0xFC00_0000).is_err());
        // SPECIAL with unused funct 0x3F.
        assert!(Instruction::decode(0x0000_003F).is_err());
        let e = Instruction::decode(0xFC00_0000).unwrap_err();
        assert!(e.to_string().contains("0xfc000000"));
    }

    #[test]
    fn display_formats() {
        let i = Instruction::mem(Opcode::Lw, Reg::T0, Reg::SP, 4);
        assert_eq!(i.to_string(), "lw $t0, 4($sp)");
        let i = Instruction::alu_r(Opcode::Addu, Reg::T0, Reg::T1, Reg::T2);
        assert_eq!(i.to_string(), "addu $t0, $t1, $t2");
    }
}
