//! Functional emulator with MIPS branch-delay-slot semantics.

use std::collections::HashMap;
use std::fmt;

use crate::instr::Instruction;
use crate::opcode::Opcode;
use crate::program::{Program, STACK_TOP};
use crate::reg::{FReg, Reg};
use crate::trace::{ArchReg, MemWidth, OpKind, TraceOp};

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse paged byte-addressable memory.
#[derive(Debug, Default, Clone)]
struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    fn read(&self, addr: u32, buf: &mut [u8]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + buf.len() <= PAGE_SIZE {
            // Common case: the access sits inside one page — a single
            // page lookup instead of one per byte.
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr.wrapping_add(i as u32);
            *b = match self.pages.get(&(a >> PAGE_BITS)) {
                Some(p) => p[(a as usize) & (PAGE_SIZE - 1)],
                None => 0,
            };
        }
    }

    fn write(&mut self, addr: u32, bytes: &[u8]) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + bytes.len() <= PAGE_SIZE {
            self.page_mut(addr)[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr.wrapping_add(i as u32);
            self.page_mut(a)[(a as usize) & (PAGE_SIZE - 1)] = b;
        }
    }

    fn read_u32(&self, addr: u32) -> u32 {
        let mut b = [0; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    fn write_u32(&mut self, addr: u32, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }
}

/// Why [`Emulator::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `break` or `syscall`.
    Halted,
    /// The instruction budget was exhausted first.
    LimitReached,
}

/// Runtime error raised by the emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the text segment.
    BadPc {
        /// The offending program counter.
        pc: u32,
    },
    /// A load or store address was not aligned to the access width.
    Unaligned {
        /// The instruction's address.
        pc: u32,
        /// The misaligned effective address.
        ea: u32,
        /// The required alignment in bytes.
        width: u32,
    },
    /// A control-flow instruction sat in a branch delay slot, which MIPS
    /// prohibits (§2.4 of the paper discusses why).
    BranchInDelaySlot {
        /// Address of the offending delay-slot instruction.
        pc: u32,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadPc { pc } => write!(f, "program counter {pc:#010x} outside text"),
            EmuError::Unaligned { pc, ea, width } => {
                write!(
                    f,
                    "unaligned {width}-byte access to {ea:#010x} at pc {pc:#010x}"
                )
            }
            EmuError::BranchInDelaySlot { pc } => {
                write!(f, "control-flow instruction in delay slot at {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Functional executor for an assembled [`Program`].
///
/// Implements MIPS-I semantics including the architectural branch delay
/// slot: the instruction after a taken branch or jump always executes
/// before control transfers. Loads have no architectural delay slot (the
/// Aurora III interlocks in hardware via its scoreboard).
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    /// Per-static-instruction [`TraceOp`] skeletons, indexed like the text
    /// segment. Everything but the effective address, branch outcome and
    /// dynamic jump target is a pure function of the instruction word, so
    /// it is derived once here instead of on every retirement.
    templates: Vec<TraceOp>,
    regs: [u32; 32],
    fregs: [u32; 32],
    hi: u32,
    lo: u32,
    fp_cond: bool,
    pc: u32,
    next_pc: u32,
    mem: Memory,
    halted: bool,
    in_delay_slot: bool,
    retired: u64,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator with the program's data segment loaded and the
    /// stack pointer initialised.
    pub fn new(program: &'p Program) -> Emulator<'p> {
        let mut mem = Memory::default();
        mem.write(program.data().base, &program.data().bytes);
        let mut regs = [0; 32];
        regs[Reg::SP.number() as usize] = STACK_TOP;
        regs[Reg::GP.number() as usize] = program.data().base;
        let base = program.text_base();
        let templates = program
            .instructions()
            .iter()
            .enumerate()
            .map(|(i, ins)| make_trace_op(base + 4 * i as u32, ins))
            .collect();
        Emulator {
            program,
            templates,
            regs,
            fregs: [0; 32],
            hi: 0,
            lo: 0,
            fp_cond: false,
            pc: program.entry(),
            next_pc: program.entry().wrapping_add(4),
            mem,
            halted: false,
            in_delay_slot: false,
            retired: 0,
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the program has executed `break`/`syscall`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.number() as usize]
    }

    /// Writes an integer register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.number() as usize] = v;
        }
    }

    /// Reads a single-precision FP register as raw bits.
    pub fn freg(&self, r: FReg) -> u32 {
        self.fregs[r.number() as usize]
    }

    /// Reads the double-precision value in the even/odd pair at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is odd-numbered.
    pub fn freg_double(&self, r: FReg) -> f64 {
        let lo = self.fregs[r.number() as usize] as u64;
        let hi = self.fregs[r.pair().number() as usize] as u64;
        f64::from_bits((hi << 32) | lo)
    }

    /// Writes the double-precision pair at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is odd-numbered.
    pub fn set_freg_double(&mut self, r: FReg, v: f64) {
        let bits = v.to_bits();
        self.fregs[r.number() as usize] = bits as u32;
        self.fregs[r.pair().number() as usize] = (bits >> 32) as u32;
    }

    /// Reads a 32-bit word from memory (for test assertions).
    pub fn load_word(&self, addr: u32) -> u32 {
        self.mem.read_u32(addr)
    }

    /// Writes a 32-bit word to memory (for test setup).
    pub fn store_word(&mut self, addr: u32, v: u32) {
        self.mem.write_u32(addr, v);
    }

    /// Runs until halt or until `limit` instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] raised by [`Emulator::step`].
    pub fn run(&mut self, limit: u64) -> Result<RunOutcome, EmuError> {
        self.run_traced(limit, |_| {})
    }

    /// Runs like [`Emulator::run`], invoking `sink` with a [`TraceOp`] for
    /// every retired instruction.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] raised by [`Emulator::step`].
    pub fn run_traced(
        &mut self,
        limit: u64,
        mut sink: impl FnMut(TraceOp),
    ) -> Result<RunOutcome, EmuError> {
        for _ in 0..limit {
            if self.halted {
                return Ok(RunOutcome::Halted);
            }
            let op = self.step()?;
            sink(op);
        }
        Ok(if self.halted {
            RunOutcome::Halted
        } else {
            RunOutcome::LimitReached
        })
    }

    /// Collects the whole trace into a vector (convenience for tests and
    /// small kernels; prefer [`Emulator::run_traced`] for long runs).
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] raised by [`Emulator::step`].
    pub fn collect_trace(&mut self, limit: u64) -> Result<Vec<TraceOp>, EmuError> {
        let mut v = Vec::new();
        self.run_traced(limit, |op| v.push(op))?;
        Ok(v)
    }

    /// Executes one instruction and returns its trace record.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] for PCs outside the text segment, unaligned
    /// memory accesses, or a control-flow instruction in a delay slot.
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self) -> Result<TraceOp, EmuError> {
        let pc = self.pc;
        let instr = *self
            .program
            .instruction_at(pc)
            .ok_or(EmuError::BadPc { pc })?;
        // instruction_at validated the address, so the template index is
        // in range. The template's kind mirrors the opcode class, so the
        // control-flow test reads it instead of re-deriving the class.
        let mut op = self.templates[((pc - self.program.text_base()) / 4) as usize];
        let is_ctl = op.kind.is_control_flow();
        if self.in_delay_slot && is_ctl {
            return Err(EmuError::BranchInDelaySlot { pc });
        }
        self.in_delay_slot = is_ctl;

        let mut target_after_delay: Option<u32> = None;
        let r = |e: &Emulator<'_>, reg: Reg| e.regs[reg.number() as usize];

        use Opcode::*;
        match instr.op {
            Add | Addu => {
                let v = r(self, instr.rs).wrapping_add(r(self, instr.rt));
                self.set_reg(instr.rd, v);
            }
            Sub | Subu => {
                let v = r(self, instr.rs).wrapping_sub(r(self, instr.rt));
                self.set_reg(instr.rd, v);
            }
            And => self.set_reg(instr.rd, r(self, instr.rs) & r(self, instr.rt)),
            Or => self.set_reg(instr.rd, r(self, instr.rs) | r(self, instr.rt)),
            Xor => self.set_reg(instr.rd, r(self, instr.rs) ^ r(self, instr.rt)),
            Nor => self.set_reg(instr.rd, !(r(self, instr.rs) | r(self, instr.rt))),
            Slt => {
                let v = ((r(self, instr.rs) as i32) < (r(self, instr.rt) as i32)) as u32;
                self.set_reg(instr.rd, v);
            }
            Sltu => {
                let v = (r(self, instr.rs) < r(self, instr.rt)) as u32;
                self.set_reg(instr.rd, v);
            }
            Sll => self.set_reg(instr.rd, r(self, instr.rt) << instr.shamt),
            Srl => self.set_reg(instr.rd, r(self, instr.rt) >> instr.shamt),
            Sra => self.set_reg(instr.rd, ((r(self, instr.rt) as i32) >> instr.shamt) as u32),
            Sllv => self.set_reg(instr.rd, r(self, instr.rt) << (r(self, instr.rs) & 31)),
            Srlv => self.set_reg(instr.rd, r(self, instr.rt) >> (r(self, instr.rs) & 31)),
            Srav => {
                let v = (r(self, instr.rt) as i32) >> (r(self, instr.rs) & 31);
                self.set_reg(instr.rd, v as u32);
            }
            Mult => {
                let p = (r(self, instr.rs) as i32 as i64) * (r(self, instr.rt) as i32 as i64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Multu => {
                let p = (r(self, instr.rs) as u64) * (r(self, instr.rt) as u64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Div => {
                let (n, d) = (r(self, instr.rs) as i32, r(self, instr.rt) as i32);
                if d != 0 {
                    self.lo = n.wrapping_div(d) as u32;
                    self.hi = n.wrapping_rem(d) as u32;
                }
            }
            Divu => {
                let (n, d) = (r(self, instr.rs), r(self, instr.rt));
                if let (Some(q), Some(rem)) = (n.checked_div(d), n.checked_rem(d)) {
                    self.lo = q;
                    self.hi = rem;
                }
            }
            Mfhi => self.set_reg(instr.rd, self.hi),
            Mflo => self.set_reg(instr.rd, self.lo),
            Mthi => self.hi = r(self, instr.rs),
            Mtlo => self.lo = r(self, instr.rs),
            Addi | Addiu => {
                let v = r(self, instr.rs).wrapping_add(instr.imm as i32 as u32);
                self.set_reg(instr.rt, v);
            }
            Slti => {
                let v = ((r(self, instr.rs) as i32) < instr.imm as i32) as u32;
                self.set_reg(instr.rt, v);
            }
            Sltiu => {
                let v = (r(self, instr.rs) < instr.imm as i32 as u32) as u32;
                self.set_reg(instr.rt, v);
            }
            Andi => self.set_reg(instr.rt, r(self, instr.rs) & instr.imm as u16 as u32),
            Ori => self.set_reg(instr.rt, r(self, instr.rs) | instr.imm as u16 as u32),
            Xori => self.set_reg(instr.rt, r(self, instr.rs) ^ instr.imm as u16 as u32),
            Lui => self.set_reg(instr.rt, (instr.imm as u16 as u32) << 16),
            Lb | Lbu | Lh | Lhu | Lw => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                let v = match instr.op {
                    Lb => {
                        let mut b = [0];
                        self.mem.read(ea, &mut b);
                        b[0] as i8 as i32 as u32
                    }
                    Lbu => {
                        let mut b = [0];
                        self.mem.read(ea, &mut b);
                        b[0] as u32
                    }
                    Lh => {
                        let mut b = [0; 2];
                        self.mem.read(ea, &mut b);
                        i16::from_le_bytes(b) as i32 as u32
                    }
                    Lhu => {
                        let mut b = [0; 2];
                        self.mem.read(ea, &mut b);
                        u16::from_le_bytes(b) as u32
                    }
                    _ => self.mem.read_u32(ea),
                };
                self.set_reg(instr.rt, v);
            }
            Sb => {
                let ea = self.effective_address(&instr);
                self.mem.write(ea, &[r(self, instr.rt) as u8]);
            }
            Sh => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                self.mem
                    .write(ea, &(r(self, instr.rt) as u16).to_le_bytes());
            }
            Sw => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                self.mem.write_u32(ea, r(self, instr.rt));
            }
            Lwc1 => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                self.fregs[instr.ft.number() as usize] = self.mem.read_u32(ea);
            }
            Swc1 => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                self.mem
                    .write_u32(ea, self.fregs[instr.ft.number() as usize]);
            }
            Ldc1 => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                let even = instr.ft.number() & !1;
                self.fregs[even as usize] = self.mem.read_u32(ea);
                self.fregs[even as usize + 1] = self.mem.read_u32(ea + 4);
            }
            Sdc1 => {
                let ea = self.effective_address(&instr);
                self.check_aligned(pc, ea, &instr)?;
                let even = instr.ft.number() & !1;
                self.mem.write_u32(ea, self.fregs[even as usize]);
                self.mem.write_u32(ea + 4, self.fregs[even as usize + 1]);
            }
            J => target_after_delay = Some(instr.target << 2),
            Jal => {
                self.set_reg(Reg::RA, pc.wrapping_add(8));
                target_after_delay = Some(instr.target << 2);
            }
            Jr => {
                let t = r(self, instr.rs);
                op.kind = OpKind::Jump {
                    target: t,
                    register: true,
                };
                target_after_delay = Some(t);
            }
            Jalr => {
                let t = r(self, instr.rs);
                self.set_reg(instr.rd, pc.wrapping_add(8));
                op.kind = OpKind::Jump {
                    target: t,
                    register: true,
                };
                target_after_delay = Some(t);
            }
            Beq | Bne | Blez | Bgtz | Bltz | Bgez | Bc1t | Bc1f => {
                let taken = match instr.op {
                    Beq => r(self, instr.rs) == r(self, instr.rt),
                    Bne => r(self, instr.rs) != r(self, instr.rt),
                    Blez => (r(self, instr.rs) as i32) <= 0,
                    Bgtz => (r(self, instr.rs) as i32) > 0,
                    Bltz => (r(self, instr.rs) as i32) < 0,
                    Bgez => (r(self, instr.rs) as i32) >= 0,
                    Bc1t => self.fp_cond,
                    _ => !self.fp_cond,
                };
                let target = pc
                    .wrapping_add(4)
                    .wrapping_add((instr.imm as i32 as u32) << 2);
                if taken {
                    target_after_delay = Some(target);
                }
                op.kind = OpKind::Branch { taken, target };
            }
            AddS | SubS | MulS | DivS | SqrtS | AbsS | NegS | MovS => self.fp_single(&instr),
            AddD | SubD | MulD | DivD | SqrtD | AbsD | NegD | MovD => self.fp_double(&instr),
            CvtSD => {
                let v = self.freg_double(even(instr.fs)) as f32;
                self.fregs[instr.fd.number() as usize] = v.to_bits();
            }
            CvtSW => {
                let v = self.fregs[instr.fs.number() as usize] as i32 as f32;
                self.fregs[instr.fd.number() as usize] = v.to_bits();
            }
            CvtDS => {
                let v = f32::from_bits(self.fregs[instr.fs.number() as usize]) as f64;
                self.set_freg_double(even(instr.fd), v);
            }
            CvtDW => {
                let v = self.fregs[instr.fs.number() as usize] as i32 as f64;
                self.set_freg_double(even(instr.fd), v);
            }
            CvtWS => {
                let v = f32::from_bits(self.fregs[instr.fs.number() as usize]) as i32;
                self.fregs[instr.fd.number() as usize] = v as u32;
            }
            CvtWD => {
                let v = self.freg_double(even(instr.fs)) as i32;
                self.fregs[instr.fd.number() as usize] = v as u32;
            }
            CEqS | CLtS | CLeS => {
                let a = f32::from_bits(self.fregs[instr.fs.number() as usize]);
                let b = f32::from_bits(self.fregs[instr.ft.number() as usize]);
                self.fp_cond = match instr.op {
                    CEqS => a == b,
                    CLtS => a < b,
                    _ => a <= b,
                };
            }
            CEqD | CLtD | CLeD => {
                let a = self.freg_double(even(instr.fs));
                let b = self.freg_double(even(instr.ft));
                self.fp_cond = match instr.op {
                    CEqD => a == b,
                    CLtD => a < b,
                    _ => a <= b,
                };
            }
            Mfc1 => self.set_reg(instr.rt, self.fregs[instr.fs.number() as usize]),
            Mtc1 => self.fregs[instr.fs.number() as usize] = r(self, instr.rt),
            Syscall | Break => self.halted = true,
            Nop => {}
        }

        // Fill in the actual effective address for memory ops.
        match &mut op.kind {
            OpKind::Load { ea, .. }
            | OpKind::Store { ea, .. }
            | OpKind::FpLoad { ea, .. }
            | OpKind::FpStore { ea, .. } => *ea = self.effective_address(&instr),
            _ => {}
        }

        self.pc = self.next_pc;
        self.next_pc = target_after_delay.unwrap_or_else(|| self.next_pc.wrapping_add(4));
        self.retired += 1;
        Ok(op)
    }

    fn effective_address(&self, instr: &Instruction) -> u32 {
        self.regs[instr.rs.number() as usize].wrapping_add(instr.imm as i32 as u32)
    }

    fn check_aligned(&self, pc: u32, ea: u32, instr: &Instruction) -> Result<(), EmuError> {
        let width = mem_width(instr.op).bytes();
        if !ea.is_multiple_of(width) {
            return Err(EmuError::Unaligned { pc, ea, width });
        }
        Ok(())
    }

    fn fp_single(&mut self, instr: &Instruction) {
        use Opcode::*;
        let a = f32::from_bits(self.fregs[instr.fs.number() as usize]);
        let b = f32::from_bits(self.fregs[instr.ft.number() as usize]);
        let v = match instr.op {
            AddS => a + b,
            SubS => a - b,
            MulS => a * b,
            DivS => a / b,
            SqrtS => a.sqrt(),
            AbsS => a.abs(),
            NegS => -a,
            MovS => a,
            _ => unreachable!(),
        };
        self.fregs[instr.fd.number() as usize] = v.to_bits();
    }

    fn fp_double(&mut self, instr: &Instruction) {
        use Opcode::*;
        let a = self.freg_double(even(instr.fs));
        let b = self.freg_double(even(instr.ft));
        let v = match instr.op {
            AddD => a + b,
            SubD => a - b,
            MulD => a * b,
            DivD => a / b,
            SqrtD => a.sqrt(),
            AbsD => a.abs(),
            NegD => -a,
            MovD => a,
            _ => unreachable!(),
        };
        self.set_freg_double(even(instr.fd), v);
    }
}

fn even(r: FReg) -> FReg {
    FReg::new(r.number() & !1).unwrap()
}

fn mem_width(op: Opcode) -> MemWidth {
    use Opcode::*;
    match op {
        Lb | Lbu | Sb => MemWidth::Byte,
        Lh | Lhu | Sh => MemWidth::Half,
        Lw | Sw | Lwc1 | Swc1 => MemWidth::Word,
        Ldc1 | Sdc1 => MemWidth::Double,
        _ => unreachable!("{op} is not a memory op"),
    }
}

/// Builds the dependence-carrying trace record for an instruction.
///
/// FP registers are normalised to the even member of their pair (see
/// [`ArchReg`]); writes to `$zero` yield no destination.
fn make_trace_op(pc: u32, instr: &Instruction) -> TraceOp {
    use crate::opcode::OpcodeClass::*;
    let int = |r: Reg| (r != Reg::ZERO).then(|| ArchReg::Int(r.number()));
    let fp = |r: FReg| Some(ArchReg::Fp(r.number() & !1));
    let w = || mem_width(instr.op);

    let (kind, dst, src1, src2) = match instr.op.class() {
        AluR => (OpKind::IntAlu, int(instr.rd), int(instr.rs), int(instr.rt)),
        Shift => (OpKind::IntAlu, int(instr.rd), int(instr.rt), None),
        ShiftV => (OpKind::IntAlu, int(instr.rd), int(instr.rt), int(instr.rs)),
        MulDiv => {
            let kind = match instr.op {
                Opcode::Div | Opcode::Divu => OpKind::IntDiv,
                _ => OpKind::IntMul,
            };
            (kind, Some(ArchReg::HiLo), int(instr.rs), int(instr.rt))
        }
        HiLo => match instr.op {
            Opcode::Mfhi | Opcode::Mflo => {
                (OpKind::IntAlu, int(instr.rd), Some(ArchReg::HiLo), None)
            }
            _ => (OpKind::IntAlu, Some(ArchReg::HiLo), int(instr.rs), None),
        },
        AluI => (OpKind::IntAlu, int(instr.rt), int(instr.rs), None),
        Lui => (OpKind::IntAlu, int(instr.rt), None, None),
        Load => (
            OpKind::Load { ea: 0, width: w() },
            int(instr.rt),
            int(instr.rs),
            None,
        ),
        Store => (
            OpKind::Store { ea: 0, width: w() },
            None,
            int(instr.rs),
            int(instr.rt),
        ),
        FpLoad => (
            OpKind::FpLoad { ea: 0, width: w() },
            fp(instr.ft),
            int(instr.rs),
            None,
        ),
        FpStore => (
            OpKind::FpStore { ea: 0, width: w() },
            None,
            int(instr.rs),
            fp(instr.ft),
        ),
        Jump => {
            let dst = (instr.op == Opcode::Jal).then_some(ArchReg::Int(Reg::RA.number()));
            (
                OpKind::Jump {
                    target: instr.target << 2,
                    register: false,
                },
                dst,
                None,
                None,
            )
        }
        JumpReg => {
            // The dynamic target is patched by the emulator only for the
            // next-PC computation; the trace target is filled by `step`
            // indirectly via Branch/Jump kinds. For jr/jalr the register
            // value *is* the target, which the timing model treats as an
            // unpredictable jump; record target 0 here (folding still
            // applies once the pair is cached).
            let dst = (instr.op == Opcode::Jalr).then(|| ArchReg::Int(instr.rd.number()));
            (
                OpKind::Jump {
                    target: 0,
                    register: true,
                },
                dst,
                int(instr.rs),
                None,
            )
        }
        BranchCmp => (
            OpKind::Branch {
                taken: false,
                target: 0,
            },
            None,
            int(instr.rs),
            int(instr.rt),
        ),
        BranchZ => (
            OpKind::Branch {
                taken: false,
                target: 0,
            },
            None,
            int(instr.rs),
            None,
        ),
        BranchFp => (
            OpKind::Branch {
                taken: false,
                target: 0,
            },
            None,
            Some(ArchReg::FpCond),
            None,
        ),
        FpArith3 => {
            let kind = match instr.op {
                Opcode::AddS | Opcode::AddD | Opcode::SubS | Opcode::SubD => OpKind::FpAdd,
                Opcode::MulS | Opcode::MulD => OpKind::FpMul,
                Opcode::DivS | Opcode::DivD => OpKind::FpDiv,
                _ => OpKind::FpSqrt,
            };
            let src2 = match kind {
                OpKind::FpSqrt => None,
                _ => fp(instr.ft),
            };
            (kind, fp(instr.fd), fp(instr.fs), src2)
        }
        FpArith2 => {
            let kind = match instr.op {
                Opcode::AbsS
                | Opcode::AbsD
                | Opcode::NegS
                | Opcode::NegD
                | Opcode::MovS
                | Opcode::MovD => OpKind::FpMove,
                _ => OpKind::FpCvt,
            };
            (kind, fp(instr.fd), fp(instr.fs), None)
        }
        FpCompare => (
            OpKind::FpCmp,
            Some(ArchReg::FpCond),
            fp(instr.fs),
            fp(instr.ft),
        ),
        FpMove => match instr.op {
            Opcode::Mfc1 => (OpKind::FpMove, int(instr.rt), fp(instr.fs), None),
            _ => (OpKind::FpMove, fp(instr.fs), int(instr.rt), None),
        },
        System => (OpKind::Nop, None, None, None),
    };
    TraceOp {
        pc,
        kind,
        dst,
        src1,
        src2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn run_program(src: &str) -> (Emulator<'_>, Vec<TraceOp>) {
        // Leak the program so the emulator can borrow it in a return value;
        // fine for tests.
        let program = Box::leak(Box::new(Assembler::new().assemble(src).unwrap()));
        let mut emu = Emulator::new(program);
        let trace = emu.collect_trace(1_000_000).unwrap();
        assert!(emu.is_halted(), "program did not halt");
        (emu, trace)
    }

    #[test]
    fn arithmetic_loop_sums() {
        let (emu, trace) = run_program(
            r#"
            .text
                li  $t0, 10
                li  $t1, 0
            loop:
                addu $t1, $t1, $t0
                addiu $t0, $t0, -1
                bne $t0, $zero, loop
                nop
                break
            "#,
        );
        assert_eq!(emu.reg(Reg::T1), 55);
        // 2 setup + 10 * 4 loop + 1 break
        assert_eq!(trace.len(), 2 + 40 + 1);
    }

    #[test]
    fn delay_slot_executes_on_taken_branch() {
        let (emu, _) = run_program(
            r#"
            .text
                li  $t0, 1
                beq $zero, $zero, skip
                addiu $t0, $t0, 10   # delay slot: always runs
                addiu $t0, $t0, 100  # skipped
            skip:
                break
            "#,
        );
        assert_eq!(emu.reg(Reg::T0), 11);
    }

    #[test]
    fn delay_slot_executes_on_jump_and_link() {
        let (emu, _) = run_program(
            r#"
            .text
                jal func
                addiu $a0, $zero, 5   # delay slot
                break
            func:
                addu $v0, $a0, $a0
                jr $ra
                nop
            "#,
        );
        assert_eq!(emu.reg(Reg::V0), 10);
    }

    #[test]
    fn memory_and_data_segment() {
        let (emu, trace) = run_program(
            r#"
            .data
            arr: .word 3, 4, 5
            .text
                la $t0, arr
                lw $t1, 0($t0)
                lw $t2, 4($t0)
                addu $t3, $t1, $t2
                sw $t3, 8($t0)
                lb $t4, 0($t0)
                break
            "#,
        );
        assert_eq!(emu.reg(Reg::T3), 7);
        assert_eq!(emu.reg(Reg::T4), 3);
        let loads: Vec<_> = trace
            .iter()
            .filter_map(|t| match t.kind {
                OpKind::Load { ea, .. } => Some(ea),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[1], loads[0] + 4);
    }

    #[test]
    fn mult_div_hi_lo() {
        let (emu, _) = run_program(
            r#"
            .text
                li $t0, -6
                li $t1, 7
                mult $t0, $t1
                mflo $t2
                li $t3, 43
                li $t4, 5
                div $t3, $t4
                mflo $t5
                mfhi $t6
                break
            "#,
        );
        assert_eq!(emu.reg(Reg::T2) as i32, -42);
        assert_eq!(emu.reg(Reg::T5), 8);
        assert_eq!(emu.reg(Reg::T6), 3);
    }

    #[test]
    fn fp_double_pipeline() {
        let (emu, trace) = run_program(
            r#"
            .data
            a: .double 2.0
            b: .double 8.0
            .text
                la   $t0, a
                ldc1 $f2, 0($t0)
                ldc1 $f4, 8($t0)
                add.d $f6, $f2, $f4    # 10.0
                mul.d $f8, $f6, $f2    # 20.0
                div.d $f10, $f8, $f4   # 2.5
                sqrt.d $f12, $f4       # ~2.828
                cvt.w.d $f14, $f8      # 20
                mfc1  $t1, $f14
                c.lt.d $f2, $f4
                bc1t  yes
                nop
                li $t2, 999
            yes:
                break
            "#,
        );
        assert_eq!(emu.freg_double(FReg::new(6).unwrap()), 10.0);
        assert_eq!(emu.freg_double(FReg::new(8).unwrap()), 20.0);
        assert_eq!(emu.freg_double(FReg::new(10).unwrap()), 2.5);
        assert_eq!(emu.reg(Reg::T1), 20);
        assert_eq!(emu.reg(Reg::T2), 0, "bc1t should have skipped the li");
        let fp_ops = trace.iter().filter(|t| t.kind.is_fpu()).count();
        assert_eq!(fp_ops, 7); // add, mul, div, sqrt, cvt, cmp, mfc1
        let fp_loads = trace
            .iter()
            .filter(|t| matches!(t.kind, OpKind::FpLoad { .. }))
            .count();
        assert_eq!(fp_loads, 2);
    }

    #[test]
    fn trace_dependencies_are_recorded() {
        let (_, trace) = run_program(
            r#"
            .text
                li   $t0, 1
                addu $t1, $t0, $t0
                break
            "#,
        );
        let add = trace[1];
        assert_eq!(add.dst, Some(ArchReg::Int(9)));
        assert_eq!(add.src1, Some(ArchReg::Int(8)));
        assert_eq!(add.src2, Some(ArchReg::Int(8)));
    }

    #[test]
    fn unaligned_access_errors() {
        let program = Assembler::new()
            .assemble(".text\n li $t0, 0x1001\n lw $t1, 0($t0)\n break\n")
            .unwrap();
        let mut emu = Emulator::new(&program);
        let err = emu.run(10).unwrap_err();
        assert!(matches!(err, EmuError::Unaligned { width: 4, .. }));
        assert!(err.to_string().contains("unaligned"));
    }

    #[test]
    fn runaway_pc_errors() {
        let program = Assembler::new()
            .assemble(".text\n jr $t0\n nop\n break\n")
            .unwrap();
        let mut emu = Emulator::new(&program);
        emu.set_reg(Reg::T0, 0xDEAD_0000);
        assert!(matches!(emu.run(10), Err(EmuError::BadPc { .. })));
    }

    #[test]
    fn limit_reached_reports() {
        let program = Assembler::new()
            .assemble(".text\nx: b x\n nop\n break\n")
            .unwrap();
        let mut emu = Emulator::new(&program);
        assert_eq!(emu.run(100).unwrap(), RunOutcome::LimitReached);
        assert_eq!(emu.retired(), 100);
    }

    #[test]
    fn branch_in_delay_slot_rejected() {
        let program = Assembler::new()
            .assemble(".text\n beq $zero, $zero, t\n beq $zero, $zero, t\nt: break\n")
            .unwrap();
        let mut emu = Emulator::new(&program);
        assert!(matches!(
            emu.run(10),
            Err(EmuError::BranchInDelaySlot { .. })
        ));
    }

    #[test]
    fn zero_register_stays_zero() {
        let (emu, _) = run_program(".text\n li $t0, 5\n addu $zero, $t0, $t0\n break\n");
        assert_eq!(emu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn branch_trace_records_taken_and_target() {
        let (_, trace) = run_program(
            r#"
            .text
                li $t0, 2
            loop:
                addiu $t0, $t0, -1
                bne $t0, $zero, loop
                nop
                break
            "#,
        );
        let branches: Vec<_> = trace
            .iter()
            .filter_map(|t| match t.kind {
                OpKind::Branch { taken, target } => Some((taken, target)),
                _ => None,
            })
            .collect();
        assert_eq!(branches.len(), 2);
        assert!(branches[0].0);
        assert!(!branches[1].0);
        assert_eq!(branches[0].1, branches[1].1);
    }
}
