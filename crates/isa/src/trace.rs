//! The dynamic trace format that drives the cycle-level simulator.
//!
//! The paper's evaluation is *trace-driven* (§4.1): the functional
//! [`Emulator`](crate::Emulator) executes a workload and emits one
//! [`TraceOp`] per retired instruction; the `aurora-core` pipeline model
//! then replays the trace against a machine configuration.

use std::fmt;

/// An architectural register name as seen by the dependence tracker.
///
/// Floating-point registers are normalised to the even register of their
/// pair, so double-precision producers and single-precision consumers of
/// either half always collide in the scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchReg {
    /// Integer register `$0`–`$31` (never `$zero`; writes to it are dropped).
    Int(u8),
    /// Floating-point register pair, identified by its even member.
    Fp(u8),
    /// The HI/LO multiply-divide register pair, treated as one resource.
    HiLo,
    /// The floating-point condition code set by `c.cond.fmt`.
    FpCond,
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchReg::Int(n) => write!(f, "r{n}"),
            ArchReg::Fp(n) => write!(f, "f{n}"),
            ArchReg::HiLo => f.write_str("hilo"),
            ArchReg::FpCond => f.write_str("fcc"),
        }
    }
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// One byte.
    Byte,
    /// Two bytes.
    Half,
    /// Four bytes.
    Word,
    /// Eight bytes (`ldc1`/`sdc1`).
    Double,
}

impl MemWidth {
    /// The access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// What a dynamic instruction did, with the operands the timing model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Single-cycle integer ALU operation (including `lui` and moves).
    IntAlu,
    /// Integer multiply feeding HI/LO.
    IntMul,
    /// Integer divide feeding HI/LO.
    IntDiv,
    /// Integer load from `ea`.
    Load {
        /// Effective byte address.
        ea: u32,
        /// Access width.
        width: MemWidth,
    },
    /// Integer store to `ea`.
    Store {
        /// Effective byte address.
        ea: u32,
        /// Access width.
        width: MemWidth,
    },
    /// Floating-point load (data flows to the FPU load queue).
    FpLoad {
        /// Effective byte address.
        ea: u32,
        /// Access width.
        width: MemWidth,
    },
    /// Floating-point store (data comes from the FPU store queue).
    FpStore {
        /// Effective byte address.
        ea: u32,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch.
    Branch {
        /// Whether the branch was taken in this execution.
        taken: bool,
        /// Target instruction address (meaningful when taken).
        target: u32,
    },
    /// Unconditional jump (`j`, `jal`, `jr`, `jalr`).
    Jump {
        /// Target instruction address.
        target: u32,
        /// Whether the target came from a register (`jr`/`jalr`); such
        /// jumps cannot be branch-folded, since the pre-decoded NEXT field
        /// only holds static targets.
        register: bool,
    },
    /// FPU add/subtract (add unit).
    FpAdd,
    /// FPU multiply (multiply unit).
    FpMul,
    /// FPU divide (divide unit).
    FpDiv,
    /// FPU square root (maps onto the divide hardware, §5.10).
    FpSqrt,
    /// Format conversion (conversion unit).
    FpCvt,
    /// Register move touching the FPU (`mfc1`/`mtc1`/`mov.fmt`/`abs`/`neg`).
    FpMove,
    /// FP compare setting the condition code (add unit).
    FpCmp,
    /// No-operation.
    Nop,
}

impl OpKind {
    /// Whether this op accesses data memory.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            OpKind::Load { .. }
                | OpKind::Store { .. }
                | OpKind::FpLoad { .. }
                | OpKind::FpStore { .. }
        )
    }

    /// Whether this op executes in the decoupled FPU.
    #[inline]
    pub fn is_fpu(self) -> bool {
        matches!(
            self,
            OpKind::FpAdd
                | OpKind::FpMul
                | OpKind::FpDiv
                | OpKind::FpSqrt
                | OpKind::FpCvt
                | OpKind::FpMove
                | OpKind::FpCmp
        )
    }

    /// Whether this op is control flow (sets the CONT pre-decode bit).
    pub fn is_control_flow(self) -> bool {
        matches!(self, OpKind::Branch { .. } | OpKind::Jump { .. })
    }

    /// The effective address for memory ops.
    pub fn effective_address(self) -> Option<u32> {
        match self {
            OpKind::Load { ea, .. }
            | OpKind::Store { ea, .. }
            | OpKind::FpLoad { ea, .. }
            | OpKind::FpStore { ea, .. } => Some(ea),
            _ => None,
        }
    }
}

/// One retired instruction in a dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceOp {
    /// The instruction's address.
    pub pc: u32,
    /// What the instruction did.
    pub kind: OpKind,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// First source register, if any.
    pub src1: Option<ArchReg>,
    /// Second source register, if any.
    pub src2: Option<ArchReg>,
}

impl TraceOp {
    /// A trace op with no register operands.
    pub fn bare(pc: u32, kind: OpKind) -> TraceOp {
        TraceOp {
            pc,
            kind,
            dst: None,
            src1: None,
            src2: None,
        }
    }

    /// Iterates over the (up to two) source registers.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }
}

/// Aggregate statistics over a trace, used to characterise workloads and in
/// tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Integer ALU ops (including nops).
    pub int_alu: u64,
    /// Integer multiplies and divides.
    pub int_muldiv: u64,
    /// Integer loads.
    pub loads: u64,
    /// Integer stores.
    pub stores: u64,
    /// FP loads.
    pub fp_loads: u64,
    /// FP stores.
    pub fp_stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Unconditional jumps.
    pub jumps: u64,
    /// FPU arithmetic ops (add/mul/div/sqrt/cvt/cmp/move).
    pub fp_ops: u64,
}

impl TraceStats {
    /// Folds one op into the statistics.
    pub fn record(&mut self, op: &TraceOp) {
        self.total += 1;
        match op.kind {
            OpKind::IntAlu | OpKind::Nop => self.int_alu += 1,
            OpKind::IntMul | OpKind::IntDiv => self.int_muldiv += 1,
            OpKind::Load { .. } => self.loads += 1,
            OpKind::Store { .. } => self.stores += 1,
            OpKind::FpLoad { .. } => self.fp_loads += 1,
            OpKind::FpStore { .. } => self.fp_stores += 1,
            OpKind::Branch { taken, .. } => {
                self.branches += 1;
                if taken {
                    self.taken_branches += 1;
                }
            }
            OpKind::Jump { .. } => self.jumps += 1,
            _ => self.fp_ops += 1,
        }
    }

    /// Fraction of instructions that access data memory.
    pub fn memory_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.loads + self.stores + self.fp_loads + self.fp_stores) as f64 / self.total as f64
    }

    /// Fraction of instructions that are FPU operations.
    pub fn fp_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.fp_ops as f64 / self.total as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs: {} alu, {} mul/div, {}+{} loads, {}+{} stores, {} branches ({} taken), {} jumps, {} fp",
            self.total,
            self.int_alu,
            self.int_muldiv,
            self.loads,
            self.fp_loads,
            self.stores,
            self.fp_stores,
            self.branches,
            self.taken_branches,
            self.jumps,
            self.fp_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_predicates() {
        let ld = OpKind::Load {
            ea: 0x100,
            width: MemWidth::Word,
        };
        assert!(ld.is_memory());
        assert!(!ld.is_fpu());
        assert_eq!(ld.effective_address(), Some(0x100));
        assert!(OpKind::FpDiv.is_fpu());
        assert!(OpKind::Branch {
            taken: true,
            target: 0
        }
        .is_control_flow());
        assert_eq!(OpKind::IntAlu.effective_address(), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = TraceStats::default();
        s.record(&TraceOp::bare(0, OpKind::IntAlu));
        s.record(&TraceOp::bare(
            4,
            OpKind::Load {
                ea: 0,
                width: MemWidth::Word,
            },
        ));
        s.record(&TraceOp::bare(
            8,
            OpKind::Branch {
                taken: true,
                target: 0,
            },
        ));
        s.record(&TraceOp::bare(12, OpKind::FpMul));
        assert_eq!(s.total, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.fp_ops, 1);
        assert!((s.memory_fraction() - 0.25).abs() < 1e-9);
        assert!((s.fp_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Double.bytes(), 8);
    }
}
