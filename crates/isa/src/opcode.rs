//! Opcode definitions and classification for the MIPS-I subset.

use std::fmt;
use std::str::FromStr;

/// Every operation the Aurora III substrate understands.
///
/// This covers the MIPS-I integer set, the COP1 single/double arithmetic
/// used by the SPEC92 floating-point suite, and the double-word FP
/// loads/stores (`LDC1`/`SDC1`) that §5.9 of the paper notes the
/// implemented FPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are standard MIPS mnemonics
pub enum Opcode {
    // R-type integer ALU
    Add,
    Addu,
    Sub,
    Subu,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
    Sll,
    Srl,
    Sra,
    Sllv,
    Srlv,
    Srav,
    // HI/LO multiply-divide
    Mult,
    Multu,
    Div,
    Divu,
    Mfhi,
    Mflo,
    Mthi,
    Mtlo,
    // I-type ALU
    Addi,
    Addiu,
    Slti,
    Sltiu,
    Andi,
    Ori,
    Xori,
    Lui,
    // Loads and stores
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Sb,
    Sh,
    Sw,
    Lwc1,
    Swc1,
    Ldc1,
    Sdc1,
    // Control flow
    J,
    Jal,
    Jr,
    Jalr,
    Beq,
    Bne,
    Blez,
    Bgtz,
    Bltz,
    Bgez,
    // FP arithmetic, single precision
    AddS,
    SubS,
    MulS,
    DivS,
    AbsS,
    NegS,
    MovS,
    SqrtS,
    // FP arithmetic, double precision
    AddD,
    SubD,
    MulD,
    DivD,
    AbsD,
    NegD,
    MovD,
    SqrtD,
    // Conversions
    CvtSD,
    CvtSW,
    CvtDS,
    CvtDW,
    CvtWS,
    CvtWD,
    // FP compares (set the FP condition code)
    CEqS,
    CLtS,
    CLeS,
    CEqD,
    CLtD,
    CLeD,
    // FP condition branches
    Bc1t,
    Bc1f,
    // Register-file moves between IPU and FPU
    Mfc1,
    Mtc1,
    // System
    Syscall,
    Break,
    Nop,
}

/// Broad structural classification used by the encoder, assembler and the
/// cycle simulator's dispatch logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeClass {
    /// Three-register integer ALU (`add $rd, $rs, $rt`).
    AluR,
    /// Shift by immediate amount (`sll $rd, $rt, sh`).
    Shift,
    /// Shift by register amount (`sllv $rd, $rt, $rs`).
    ShiftV,
    /// Multiply/divide feeding HI/LO (`mult $rs, $rt`).
    MulDiv,
    /// Move from/to HI/LO (`mfhi $rd` / `mthi $rs`).
    HiLo,
    /// Two-register + immediate ALU (`addiu $rt, $rs, imm`).
    AluI,
    /// Load upper immediate (`lui $rt, imm`).
    Lui,
    /// Integer load (`lw $rt, off($rs)`).
    Load,
    /// Integer store (`sw $rt, off($rs)`).
    Store,
    /// FP load (`lwc1 $ft, off($rs)`).
    FpLoad,
    /// FP store (`swc1 $ft, off($rs)`).
    FpStore,
    /// Absolute jump (`j target`).
    Jump,
    /// Jump through register (`jr $rs` / `jalr $rd, $rs`).
    JumpReg,
    /// Two-register compare-and-branch (`beq $rs, $rt, label`).
    BranchCmp,
    /// One-register compare-with-zero branch (`blez $rs, label`).
    BranchZ,
    /// Branch on the FP condition code (`bc1t label`).
    BranchFp,
    /// Three-register FP arithmetic (`add.d $fd, $fs, $ft`).
    FpArith3,
    /// Two-register FP arithmetic (`neg.d $fd, $fs`, conversions).
    FpArith2,
    /// FP compare setting the condition code (`c.lt.d $fs, $ft`).
    FpCompare,
    /// Move between integer and FP register files (`mfc1 $rt, $fs`).
    FpMove,
    /// `syscall` / `break` / `nop`.
    System,
}

impl Opcode {
    /// The structural class of this opcode.
    pub fn class(self) -> OpcodeClass {
        use Opcode::*;
        use OpcodeClass::*;
        match self {
            Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt | Sltu => AluR,
            Sll | Srl | Sra => Shift,
            Sllv | Srlv | Srav => ShiftV,
            Mult | Multu | Div | Divu => MulDiv,
            Mfhi | Mflo | Mthi | Mtlo => HiLo,
            Addi | Addiu | Slti | Sltiu | Andi | Ori | Xori => AluI,
            Opcode::Lui => OpcodeClass::Lui,
            Lb | Lbu | Lh | Lhu | Lw => Load,
            Sb | Sh | Sw => Store,
            Lwc1 | Ldc1 => FpLoad,
            Swc1 | Sdc1 => FpStore,
            J | Jal => Jump,
            Jr | Jalr => JumpReg,
            Beq | Bne => BranchCmp,
            Blez | Bgtz | Bltz | Bgez => BranchZ,
            Bc1t | Bc1f => BranchFp,
            AddS | SubS | MulS | DivS | SqrtS | AddD | SubD | MulD | DivD | SqrtD => FpArith3,
            AbsS | NegS | MovS | AbsD | NegD | MovD | CvtSD | CvtSW | CvtDS | CvtDW | CvtWS
            | CvtWD => FpArith2,
            CEqS | CLtS | CLeS | CEqD | CLtD | CLeD => FpCompare,
            Mfc1 | Mtc1 => FpMove,
            Syscall | Break | Nop => System,
        }
    }

    /// Whether this is any control-flow instruction (branch or jump).
    ///
    /// Control-flow instructions set the CONT pre-decode bit in the
    /// Aurora III instruction cache (paper Figure 3) and are followed by an
    /// architectural delay slot.
    pub fn is_control_flow(self) -> bool {
        matches!(
            self.class(),
            OpcodeClass::Jump
                | OpcodeClass::JumpReg
                | OpcodeClass::BranchCmp
                | OpcodeClass::BranchZ
                | OpcodeClass::BranchFp
        )
    }

    /// Whether this instruction accesses data memory.
    ///
    /// At most one memory instruction can issue per cycle on the
    /// Aurora III (paper §2, *Instruction Fetch Unit*).
    pub fn is_memory(self) -> bool {
        matches!(
            self.class(),
            OpcodeClass::Load | OpcodeClass::Store | OpcodeClass::FpLoad | OpcodeClass::FpStore
        )
    }

    /// Whether this instruction executes in (or produces a value in) the FPU.
    pub fn is_fpu(self) -> bool {
        matches!(
            self.class(),
            OpcodeClass::FpArith3
                | OpcodeClass::FpArith2
                | OpcodeClass::FpCompare
                | OpcodeClass::FpMove
        )
    }

    /// Whether this FP opcode operates on double-precision (64-bit) values.
    pub fn is_double(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            AddD | SubD
                | MulD
                | DivD
                | AbsD
                | NegD
                | MovD
                | SqrtD
                | CvtDS
                | CvtDW
                | CvtSD
                | CvtWD
                | CEqD
                | CLtD
                | CLeD
                | Ldc1
                | Sdc1
        )
    }

    /// The assembler mnemonic, e.g. `"addiu"` or `"add.d"`.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Addu => "addu",
            Sub => "sub",
            Subu => "subu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Slt => "slt",
            Sltu => "sltu",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Sllv => "sllv",
            Srlv => "srlv",
            Srav => "srav",
            Mult => "mult",
            Multu => "multu",
            Div => "div",
            Divu => "divu",
            Mfhi => "mfhi",
            Mflo => "mflo",
            Mthi => "mthi",
            Mtlo => "mtlo",
            Addi => "addi",
            Addiu => "addiu",
            Slti => "slti",
            Sltiu => "sltiu",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Lui => "lui",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Lwc1 => "lwc1",
            Swc1 => "swc1",
            Ldc1 => "ldc1",
            Sdc1 => "sdc1",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Beq => "beq",
            Bne => "bne",
            Blez => "blez",
            Bgtz => "bgtz",
            Bltz => "bltz",
            Bgez => "bgez",
            AddS => "add.s",
            SubS => "sub.s",
            MulS => "mul.s",
            DivS => "div.s",
            AbsS => "abs.s",
            NegS => "neg.s",
            MovS => "mov.s",
            SqrtS => "sqrt.s",
            AddD => "add.d",
            SubD => "sub.d",
            MulD => "mul.d",
            DivD => "div.d",
            AbsD => "abs.d",
            NegD => "neg.d",
            MovD => "mov.d",
            SqrtD => "sqrt.d",
            CvtSD => "cvt.s.d",
            CvtSW => "cvt.s.w",
            CvtDS => "cvt.d.s",
            CvtDW => "cvt.d.w",
            CvtWS => "cvt.w.s",
            CvtWD => "cvt.w.d",
            CEqS => "c.eq.s",
            CLtS => "c.lt.s",
            CLeS => "c.le.s",
            CEqD => "c.eq.d",
            CLtD => "c.lt.d",
            CLeD => "c.le.d",
            Bc1t => "bc1t",
            Bc1f => "bc1f",
            Mfc1 => "mfc1",
            Mtc1 => "mtc1",
            Syscall => "syscall",
            Break => "break",
            Nop => "nop",
        }
    }

    /// All opcodes, for exhaustive tests.
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Add, Addu, Sub, Subu, And, Or, Xor, Nor, Slt, Sltu, Sll, Srl, Sra, Sllv, Srlv, Srav,
            Mult, Multu, Div, Divu, Mfhi, Mflo, Mthi, Mtlo, Addi, Addiu, Slti, Sltiu, Andi, Ori,
            Xori, Lui, Lb, Lbu, Lh, Lhu, Lw, Sb, Sh, Sw, Lwc1, Swc1, Ldc1, Sdc1, J, Jal, Jr, Jalr,
            Beq, Bne, Blez, Bgtz, Bltz, Bgez, AddS, SubS, MulS, DivS, AbsS, NegS, MovS, SqrtS,
            AddD, SubD, MulD, DivD, AbsD, NegD, MovD, SqrtD, CvtSD, CvtSW, CvtDS, CvtDW, CvtWS,
            CvtWD, CEqS, CLtS, CLeS, CEqD, CLtD, CLeD, Bc1t, Bc1f, Mfc1, Mtc1, Syscall, Break, Nop,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an opcode mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpcodeError(String);

impl fmt::Display for ParseOpcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown mnemonic `{}`", self.0)
    }
}

impl std::error::Error for ParseOpcodeError {}

impl FromStr for Opcode {
    type Err = ParseOpcodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::all()
            .iter()
            .copied()
            .find(|op| op.mnemonic() == s)
            .ok_or_else(|| ParseOpcodeError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_unique_and_parse() {
        let all = Opcode::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.mnemonic(), b.mnemonic(), "{a:?} vs {b:?}");
            }
            assert_eq!(a.mnemonic().parse::<Opcode>().unwrap(), *a);
        }
    }

    #[test]
    fn classification_sanity() {
        assert!(Opcode::Beq.is_control_flow());
        assert!(Opcode::Jr.is_control_flow());
        assert!(Opcode::Bc1t.is_control_flow());
        assert!(!Opcode::Addu.is_control_flow());
        assert!(Opcode::Lw.is_memory());
        assert!(Opcode::Sdc1.is_memory());
        assert!(!Opcode::Mult.is_memory());
        assert!(Opcode::MulD.is_fpu());
        assert!(Opcode::Mfc1.is_fpu());
        assert!(!Opcode::Lwc1.is_fpu()); // executes in the LSU
        assert!(Opcode::Ldc1.is_double());
        assert!(!Opcode::Lwc1.is_double());
    }

    #[test]
    fn every_opcode_has_a_class() {
        for op in Opcode::all() {
            // Must not panic; spot-check a few interesting ones.
            let _ = op.class();
        }
        assert_eq!(Opcode::Lui.class(), OpcodeClass::Lui);
        assert_eq!(Opcode::CvtDW.class(), OpcodeClass::FpArith2);
        assert_eq!(Opcode::SqrtD.class(), OpcodeClass::FpArith3);
    }
}
