//! Compact in-memory traces for capture-once / replay-many simulation.
//!
//! The trace-driven methodology of §4.1 separates *trace collection* from
//! *simulation*. A configuration sweep replays the same workload against
//! dozens of machine configurations, so re-emulating the kernel for every
//! cell of the sweep wastes almost all of its time producing bytes that
//! never change. [`PackedTrace`] stores each retired instruction as a
//! fixed 16-byte record (less than half the in-memory footprint of a
//! `Vec<TraceOp>`, which is 28 bytes plus padding per op) and decodes on
//! the fly during replay, so one captured trace can be shared — typically
//! behind an `Arc` — by every simulator thread in a sweep.
//!
//! The field encoding is the shared [`codec`](crate::codec), identical to
//! the on-disk format in `trace_io`; [`PackedTrace::write_to`]
//! and [`PackedTrace::read_from`] therefore interoperate byte-for-byte
//! with [`write_trace`](crate::write_trace) / [`read_trace`](crate::read_trace).
//!
//! ```
//! use aurora_isa::{OpKind, PackedTrace, TraceOp};
//!
//! let trace: PackedTrace = [
//!     TraceOp::bare(0x400000, OpKind::IntAlu),
//!     TraceOp::bare(0x400004, OpKind::Branch { taken: true, target: 0x400000 }),
//! ]
//! .into_iter()
//! .collect();
//! assert_eq!(trace.len(), 2);
//! let back: Vec<TraceOp> = trace.iter().collect();
//! assert_eq!(back[1].pc, 0x400004);
//! ```

use std::io::{self, Read, Write};

use crate::codec;
use crate::trace::{OpKind, TraceOp, TraceStats};
use crate::trace_io::{TraceReader, TraceWriter};

/// One trace record packed into 16 bytes.
///
/// Only ever constructed from a valid [`TraceOp`] (or from validated
/// deserialisation), so unpacking is infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct PackedOp {
    pc: u32,
    payload: u32,
    kind: u8,
    aux: u8,
    dst: u8,
    src1: u8,
    src2: u8,
    _pad: [u8; 3],
}

impl PackedOp {
    /// Packs a trace op into its fixed-width form.
    pub fn pack(op: &TraceOp) -> PackedOp {
        let (kind, aux, payload) = codec::pack_kind(op.kind);
        PackedOp {
            pc: op.pc,
            payload,
            kind,
            aux,
            dst: codec::encode_reg(op.dst),
            src1: codec::encode_reg(op.src1),
            src2: codec::encode_reg(op.src2),
            _pad: [0; 3],
        }
    }

    /// Expands back into the simulator's working representation.
    #[inline]
    pub fn unpack(&self) -> TraceOp {
        // Fields only enter a PackedOp through `pack` or validated I/O, so
        // decoding cannot fail. Debug builds assert that invariant; release
        // builds (panic=abort) decay an impossible byte to Nop/None rather
        // than turning a model bug into a lost sweep.
        let kind = codec::unpack_kind(self.kind, self.aux, self.payload);
        let dst = codec::decode_reg(self.dst);
        let src1 = codec::decode_reg(self.src1);
        let src2 = codec::decode_reg(self.src2);
        debug_assert!(kind.is_ok(), "PackedOp holds a validated kind");
        debug_assert!(dst.is_ok(), "PackedOp holds a validated dst");
        debug_assert!(src1.is_ok(), "PackedOp holds a validated src1");
        debug_assert!(src2.is_ok(), "PackedOp holds a validated src2");
        TraceOp {
            pc: self.pc,
            kind: kind.unwrap_or(OpKind::Nop),
            dst: dst.unwrap_or(None),
            src1: src1.unwrap_or(None),
            src2: src2.unwrap_or(None),
        }
    }

    /// The instruction address, without decoding the rest of the record.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Decodes only the [`OpKind`], skipping the three register fields.
    ///
    /// Functional warming retires millions of ops per second and never
    /// reads the register operands, so paying the register decode of
    /// [`unpack`](Self::unpack) there would be pure overhead.
    #[inline]
    pub fn kind_only(&self) -> OpKind {
        let kind = codec::unpack_kind(self.kind, self.aux, self.payload);
        debug_assert!(kind.is_ok(), "PackedOp holds a validated kind");
        kind.unwrap_or(OpKind::Nop)
    }

    pub(crate) fn fields(&self) -> (u32, u8, u8, u32, u8, u8, u8) {
        (
            self.pc,
            self.kind,
            self.aux,
            self.payload,
            self.dst,
            self.src1,
            self.src2,
        )
    }
}

/// A whole dynamic trace in packed form.
///
/// Built once per (workload, scale) — see `aurora-workloads`' trace store
/// — and replayed read-only by any number of simulator threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedTrace {
    ops: Vec<PackedOp>,
    stats: TraceStats,
}

impl PackedTrace {
    /// An empty trace.
    pub fn new() -> PackedTrace {
        PackedTrace::default()
    }

    /// An empty trace with room for `n` records.
    pub fn with_capacity(n: usize) -> PackedTrace {
        PackedTrace {
            ops: Vec::with_capacity(n),
            stats: TraceStats::default(),
        }
    }

    /// Packs an already-collected op sequence.
    pub fn from_ops(ops: impl IntoIterator<Item = TraceOp>) -> PackedTrace {
        ops.into_iter().collect()
    }

    /// Appends one record.
    pub fn push(&mut self, op: TraceOp) {
        self.stats.record(&op);
        self.ops.push(PackedOp::pack(&op));
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The record at `index`, decoded.
    pub fn get(&self, index: usize) -> Option<TraceOp> {
        self.ops.get(index).map(PackedOp::unpack)
    }

    /// Summary statistics, accumulated at build time (free to read).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Heap bytes held by the packed records.
    pub fn mem_bytes(&self) -> usize {
        self.ops.capacity() * std::mem::size_of::<PackedOp>()
    }

    /// Iterates the trace, decoding records on the fly.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = TraceOp> + '_ {
        self.ops.iter().map(PackedOp::unpack)
    }

    /// The raw packed records, for replay loops that want to control
    /// decoding (e.g. pairwise look-ahead without an intermediate queue).
    pub fn records(&self) -> &[PackedOp] {
        &self.ops
    }

    /// Serialises in the `trace_io` binary format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_to<W: Write>(&self, sink: W) -> io::Result<()> {
        let mut w = TraceWriter::new(sink)?;
        for op in &self.ops {
            w.write_packed(op)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Reads a trace written by [`PackedTrace::write_to`] (or
    /// [`write_trace`](crate::write_trace)), validating every record.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a malformed header or record, and
    /// propagates I/O errors.
    pub fn read_from<R: Read>(source: R) -> io::Result<PackedTrace> {
        let reader = TraceReader::new(source)?;
        let mut trace = match reader.len_hint() {
            // A hint too large for the platform falls back to growing lazily.
            Some(n) => PackedTrace::with_capacity(usize::try_from(n).unwrap_or(0)),
            None => PackedTrace::new(),
        };
        for op in reader {
            trace.push(op?);
        }
        Ok(trace)
    }
}

impl FromIterator<TraceOp> for PackedTrace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> PackedTrace {
        let iter = iter.into_iter();
        let mut trace = PackedTrace::with_capacity(iter.size_hint().0);
        trace.extend(iter);
        trace
    }
}

impl Extend<TraceOp> for PackedTrace {
    fn extend<I: IntoIterator<Item = TraceOp>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = TraceOp;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, PackedOp>, fn(&PackedOp) -> TraceOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter().map(PackedOp::unpack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArchReg, MemWidth, OpKind};
    use crate::trace_io::{read_trace, write_trace};

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp {
                pc: 0x0040_0000,
                kind: OpKind::Load {
                    ea: 0x1001_0040,
                    width: MemWidth::Word,
                },
                dst: Some(ArchReg::Int(8)),
                src1: Some(ArchReg::Int(29)),
                src2: None,
            },
            TraceOp::bare(0x0040_0004, OpKind::FpDiv),
            TraceOp {
                pc: 0x0040_0008,
                kind: OpKind::Branch {
                    taken: true,
                    target: 0x0040_0000,
                },
                dst: None,
                src1: Some(ArchReg::FpCond),
                src2: Some(ArchReg::HiLo),
            },
            TraceOp::bare(
                0x0040_0010,
                OpKind::Jump {
                    target: 0x0040_0100,
                    register: true,
                },
            ),
            TraceOp::bare(0x0040_0014, OpKind::Nop),
        ]
    }

    #[test]
    fn packed_op_is_16_bytes() {
        assert_eq!(std::mem::size_of::<PackedOp>(), 16);
    }

    #[test]
    fn pack_unpack_round_trips() {
        for op in sample_ops() {
            assert_eq!(PackedOp::pack(&op).unpack(), op);
        }
    }

    #[test]
    fn collect_and_iter_round_trip() {
        let ops = sample_ops();
        let trace: PackedTrace = ops.iter().copied().collect();
        assert_eq!(trace.len(), ops.len());
        assert!(!trace.is_empty());
        assert_eq!(trace.iter().collect::<Vec<_>>(), ops);
        assert_eq!((&trace).into_iter().collect::<Vec<_>>(), ops);
        assert_eq!(trace.get(1), Some(ops[1]));
        assert_eq!(trace.get(99), None);
    }

    #[test]
    fn stats_match_streamed_accumulation() {
        let ops = sample_ops();
        let mut want = TraceStats::default();
        for op in &ops {
            want.record(op);
        }
        let trace = PackedTrace::from_ops(ops);
        assert_eq!(*trace.stats(), want);
    }

    #[test]
    fn disk_format_interoperates_with_trace_io() {
        let ops = sample_ops();
        // packed writer -> streaming reader
        let trace = PackedTrace::from_ops(ops.clone());
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back: Vec<TraceOp> = read_trace(&buf[..])
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(back, ops);
        // streaming writer -> packed reader
        let mut buf2 = Vec::new();
        write_trace(&mut buf2, ops.iter().copied()).unwrap();
        let trace2 = PackedTrace::read_from(&buf2[..]).unwrap();
        assert_eq!(trace2, trace);
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let mut buf = Vec::new();
        PackedTrace::from_ops(sample_ops())
            .write_to(&mut buf)
            .unwrap();
        buf[16 + 4] = 200; // invalid kind tag in the first record
        assert!(PackedTrace::read_from(&buf[..]).is_err());
    }

    #[test]
    fn packed_is_smaller_than_trace_op() {
        assert!(std::mem::size_of::<PackedOp>() < std::mem::size_of::<TraceOp>());
        let trace = PackedTrace::from_ops(sample_ops());
        assert!(trace.mem_bytes() >= trace.len() * 16);
    }
}
