//! A two-pass text assembler for the mini-MIPS subset.
//!
//! Supported syntax:
//!
//! * comments from `#` to end of line,
//! * labels `name:`, optionally followed by an instruction on the same line,
//! * segment directives `.text` / `.data`,
//! * data directives `.word`, `.half`, `.byte`, `.float`, `.double`,
//!   `.space N`, `.align N` (power of two),
//! * every [`Opcode`](crate::Opcode) mnemonic with conventional operand
//!   order, plus the pseudo-instructions `li`, `la`, `move`, `b`, `blt`,
//!   `bgt`, `ble`, `bge`, `bnez`, `beqz`.
//!
//! Branch and jump targets are labels; load/store offsets are numeric.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::Instruction;
use crate::opcode::{Opcode, OpcodeClass};
use crate::program::{Program, Segment, DATA_BASE, TEXT_BASE};
use crate::reg::{FReg, Reg};

/// Error produced while assembling, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// The two-pass assembler.
///
/// See the module documentation for the accepted syntax and the
/// crate-level docs for a complete example.
#[derive(Debug, Clone)]
pub struct Assembler {
    text_base: u32,
    data_base: u32,
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler::new()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Text,
    Data,
}

/// A parsed source statement awaiting encoding.
#[derive(Debug, Clone)]
enum Stmt {
    Instr {
        line: usize,
        addr: u32,
        mnemonic: String,
        operands: Vec<String>,
    },
}

impl Assembler {
    /// Creates an assembler with the default segment bases.
    pub fn new() -> Assembler {
        Assembler {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
        }
    }

    /// Overrides the text segment base address (must be word-aligned).
    pub fn text_base(&mut self, base: u32) -> &mut Assembler {
        assert_eq!(base % 4, 0);
        self.text_base = base;
        self
    }

    /// Overrides the data segment base address (must be word-aligned).
    pub fn data_base(&mut self, base: u32) -> &mut Assembler {
        assert_eq!(base % 4, 0);
        self.data_base = base;
        self
    }

    /// Assembles `source` into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] naming the offending line for syntax errors,
    /// unknown mnemonics or registers, duplicate or undefined labels, and
    /// out-of-range immediates.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        // Pass 1: compute addresses, collect labels, lay out data.
        let mut seg = Seg::Text;
        let mut text_addr = self.text_base;
        let mut data = Vec::new();
        let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
        let mut stmts = Vec::new();

        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let mut rest = raw.split('#').next().unwrap_or("").trim();
            // Labels (possibly several) at the start of the line.
            while let Some(colon) = rest.find(':') {
                let (head, tail) = rest.split_at(colon);
                let label = head.trim();
                if label.is_empty() || !is_ident(label) {
                    break;
                }
                let addr = match seg {
                    Seg::Text => text_addr,
                    Seg::Data => self.data_base + data.len() as u32,
                };
                if symbols.insert(label.to_owned(), addr).is_some() {
                    return Err(err(line, format!("duplicate label `{label}`")));
                }
                rest = tail[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(directive) = rest.strip_prefix('.') {
                self.directive(line, directive, &mut seg, &mut data)?;
                continue;
            }
            if seg != Seg::Text {
                return Err(err(line, "instruction outside .text".into()));
            }
            let (mnemonic, ops) = split_instr(rest);
            let words = pseudo_len(&mnemonic, &ops);
            stmts.push(Stmt::Instr {
                line,
                addr: text_addr,
                mnemonic,
                operands: ops,
            });
            text_addr += 4 * words;
        }

        // Pass 2: encode.
        let mut instructions = Vec::new();
        for stmt in &stmts {
            let Stmt::Instr {
                line,
                addr,
                mnemonic,
                operands,
            } = stmt;
            self.encode(
                *line,
                *addr,
                mnemonic,
                operands,
                &symbols,
                &mut instructions,
            )?;
        }

        if instructions.is_empty() {
            return Err(err(0, "program has no instructions".into()));
        }
        Ok(Program::new(
            self.text_base,
            instructions,
            Segment {
                base: self.data_base,
                bytes: data,
            },
            self.text_base,
            symbols,
        ))
    }

    fn directive(
        &self,
        line: usize,
        directive: &str,
        seg: &mut Seg,
        data: &mut Vec<u8>,
    ) -> Result<(), AsmError> {
        let (name, args) = match directive.find(char::is_whitespace) {
            Some(i) => (&directive[..i], directive[i..].trim()),
            None => (directive, ""),
        };
        match name {
            "text" => *seg = Seg::Text,
            "data" => *seg = Seg::Data,
            "globl" | "global" | "ent" | "end" => {}
            "word" | "half" | "byte" | "float" | "double" | "space" | "align" => {
                if *seg != Seg::Data {
                    return Err(err(line, format!(".{name} outside .data")));
                }
                match name {
                    "word" => {
                        for v in csv(args) {
                            let v = parse_imm::<i64>(&v)
                                .ok_or_else(|| err(line, format!("bad word `{v}`")))?;
                            data.extend_from_slice(&(v as u32).to_le_bytes());
                        }
                    }
                    "half" => {
                        for v in csv(args) {
                            let v = parse_imm::<i64>(&v)
                                .ok_or_else(|| err(line, format!("bad half `{v}`")))?;
                            data.extend_from_slice(&(v as u16).to_le_bytes());
                        }
                    }
                    "byte" => {
                        for v in csv(args) {
                            let v = parse_imm::<i64>(&v)
                                .ok_or_else(|| err(line, format!("bad byte `{v}`")))?;
                            data.push(v as u8);
                        }
                    }
                    "float" => {
                        for v in csv(args) {
                            let v: f32 = v
                                .parse()
                                .map_err(|_| err(line, format!("bad float `{v}`")))?;
                            data.extend_from_slice(&v.to_bits().to_le_bytes());
                        }
                    }
                    "double" => {
                        for v in csv(args) {
                            let v: f64 = v
                                .parse()
                                .map_err(|_| err(line, format!("bad double `{v}`")))?;
                            data.extend_from_slice(&v.to_bits().to_le_bytes());
                        }
                    }
                    "space" => {
                        let n = parse_imm::<u32>(args)
                            .ok_or_else(|| err(line, format!("bad .space `{args}`")))?;
                        data.resize(data.len() + n as usize, 0);
                    }
                    "align" => {
                        let n = parse_imm::<u32>(args)
                            .ok_or_else(|| err(line, format!("bad .align `{args}`")))?;
                        let align = 1usize << n;
                        while !data.len().is_multiple_of(align) {
                            data.push(0);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(err(line, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn encode(
        &self,
        line: usize,
        addr: u32,
        mnemonic: &str,
        ops: &[String],
        symbols: &BTreeMap<String, u32>,
        out: &mut Vec<Instruction>,
    ) -> Result<(), AsmError> {
        let reg = |s: &str| s.parse::<Reg>().map_err(|e| err(line, e.to_string()));
        let freg = |s: &str| s.parse::<FReg>().map_err(|e| err(line, e.to_string()));
        let imm16 = |s: &str| {
            parse_imm::<i64>(s)
                .filter(|v| (-32768..=65535).contains(v))
                .map(|v| v as u16 as i16)
                .ok_or_else(|| err(line, format!("bad 16-bit immediate `{s}`")))
        };
        let need = |n: usize| {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };
        let label = |s: &str| {
            symbols
                .get(s)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{s}`")))
        };
        let branch_off = |target: u32, at: u32| -> Result<i16, AsmError> {
            let delta = (target as i64 - (at as i64 + 4)) / 4;
            if !(-32768..=32767).contains(&delta) {
                return Err(err(
                    line,
                    format!("branch target out of range ({delta} words)"),
                ));
            }
            Ok(delta as i16)
        };

        // Pseudo-instructions first.
        match mnemonic {
            "li" => {
                need(2)?;
                let rt = reg(&ops[0])?;
                let v = parse_imm::<i64>(&ops[1])
                    .ok_or_else(|| err(line, format!("bad immediate `{}`", ops[1])))?
                    as i32;
                emit_li(rt, v, out);
                return Ok(());
            }
            "la" => {
                need(2)?;
                let rt = reg(&ops[0])?;
                let a = label(&ops[1])?;
                out.push(Instruction::lui(Reg::AT, (a >> 16) as i16));
                out.push(Instruction::alu_i(
                    Opcode::Ori,
                    rt,
                    Reg::AT,
                    a as u16 as i16,
                ));
                return Ok(());
            }
            "move" => {
                need(2)?;
                out.push(Instruction::alu_r(
                    Opcode::Addu,
                    reg(&ops[0])?,
                    reg(&ops[1])?,
                    Reg::ZERO,
                ));
                return Ok(());
            }
            "b" => {
                need(1)?;
                let off = branch_off(label(&ops[0])?, addr)?;
                out.push(Instruction::branch_cmp(
                    Opcode::Beq,
                    Reg::ZERO,
                    Reg::ZERO,
                    off,
                ));
                return Ok(());
            }
            "beqz" | "bnez" => {
                need(2)?;
                let rs = reg(&ops[0])?;
                let off = branch_off(label(&ops[1])?, addr)?;
                let op = if mnemonic == "beqz" {
                    Opcode::Beq
                } else {
                    Opcode::Bne
                };
                out.push(Instruction::branch_cmp(op, rs, Reg::ZERO, off));
                return Ok(());
            }
            "blt" | "bgt" | "ble" | "bge" => {
                need(3)?;
                let rs = reg(&ops[0])?;
                let rt = reg(&ops[1])?;
                // slt $at, a, b  (for blt/bge) or slt $at, b, a (bgt/ble),
                // then branch on $at.
                let (a, b, branch_if_set) = match mnemonic {
                    "blt" => (rs, rt, true),
                    "bge" => (rs, rt, false),
                    "bgt" => (rt, rs, true),
                    _ => (rt, rs, false), // ble
                };
                out.push(Instruction::alu_r(Opcode::Slt, Reg::AT, a, b));
                let off = branch_off(label(&ops[2])?, addr + 4)?;
                let op = if branch_if_set {
                    Opcode::Bne
                } else {
                    Opcode::Beq
                };
                out.push(Instruction::branch_cmp(op, Reg::AT, Reg::ZERO, off));
                return Ok(());
            }
            _ => {}
        }

        let op: Opcode = mnemonic
            .parse()
            .map_err(|_| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
        use OpcodeClass::*;
        let instr = match op.class() {
            AluR => {
                need(3)?;
                Instruction::alu_r(op, reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?)
            }
            Shift => {
                need(3)?;
                let sh = parse_imm::<u32>(&ops[2])
                    .filter(|&v| v < 32)
                    .ok_or_else(|| err(line, format!("bad shift amount `{}`", ops[2])))?;
                Instruction::shift(op, reg(&ops[0])?, reg(&ops[1])?, sh as u8)
            }
            ShiftV => {
                need(3)?;
                Instruction::shift_v(op, reg(&ops[0])?, reg(&ops[1])?, reg(&ops[2])?)
            }
            MulDiv => {
                need(2)?;
                Instruction::mul_div(op, reg(&ops[0])?, reg(&ops[1])?)
            }
            HiLo => {
                need(1)?;
                Instruction::hi_lo(op, reg(&ops[0])?)
            }
            AluI => {
                need(3)?;
                Instruction::alu_i(op, reg(&ops[0])?, reg(&ops[1])?, imm16(&ops[2])?)
            }
            Lui => {
                need(2)?;
                Instruction::lui(reg(&ops[0])?, imm16(&ops[1])?)
            }
            Load | Store => {
                need(2)?;
                let (off, base) = parse_mem(&ops[1])
                    .ok_or_else(|| err(line, format!("bad memory operand `{}`", ops[1])))?;
                Instruction::mem(op, reg(&ops[0])?, reg(&base)?, off)
            }
            FpLoad | FpStore => {
                need(2)?;
                let (off, base) = parse_mem(&ops[1])
                    .ok_or_else(|| err(line, format!("bad memory operand `{}`", ops[1])))?;
                Instruction::fp_mem(op, freg(&ops[0])?, reg(&base)?, off)
            }
            Jump => {
                need(1)?;
                Instruction::jump(op, label(&ops[0])? >> 2)
            }
            JumpReg => match op {
                Opcode::Jr => {
                    need(1)?;
                    Instruction::jump_reg(op, Reg::ZERO, reg(&ops[0])?)
                }
                _ => {
                    need(2)?;
                    Instruction::jump_reg(op, reg(&ops[0])?, reg(&ops[1])?)
                }
            },
            BranchCmp => {
                need(3)?;
                let off = branch_off(label(&ops[2])?, addr)?;
                Instruction::branch_cmp(op, reg(&ops[0])?, reg(&ops[1])?, off)
            }
            BranchZ => {
                need(2)?;
                let off = branch_off(label(&ops[1])?, addr)?;
                Instruction::branch_z(op, reg(&ops[0])?, off)
            }
            BranchFp => {
                need(1)?;
                Instruction::branch_fp(op, branch_off(label(&ops[0])?, addr)?)
            }
            FpArith3 => match op {
                Opcode::SqrtS | Opcode::SqrtD => {
                    need(2)?;
                    Instruction::fp_arith3(
                        op,
                        freg(&ops[0])?,
                        freg(&ops[1])?,
                        FReg::new(0).unwrap(),
                    )
                }
                _ => {
                    need(3)?;
                    Instruction::fp_arith3(op, freg(&ops[0])?, freg(&ops[1])?, freg(&ops[2])?)
                }
            },
            FpArith2 => {
                need(2)?;
                Instruction::fp_arith2(op, freg(&ops[0])?, freg(&ops[1])?)
            }
            FpCompare => {
                need(2)?;
                Instruction::fp_compare(op, freg(&ops[0])?, freg(&ops[1])?)
            }
            FpMove => {
                need(2)?;
                Instruction::fp_move(op, reg(&ops[0])?, freg(&ops[1])?)
            }
            System => {
                need(0)?;
                Instruction::system(op)
            }
        };
        out.push(instr);
        Ok(())
    }
}

/// Emits the canonical `li` expansion (1 or 2 instructions).
fn emit_li(rt: Reg, v: i32, out: &mut Vec<Instruction>) {
    if (-32768..=32767).contains(&v) {
        out.push(Instruction::alu_i(Opcode::Addiu, rt, Reg::ZERO, v as i16));
    } else if v as u32 & 0xFFFF == 0 {
        out.push(Instruction::lui(rt, (v >> 16) as i16));
    } else {
        out.push(Instruction::lui(rt, (v >> 16) as i16));
        out.push(Instruction::alu_i(Opcode::Ori, rt, rt, v as u16 as i16));
    }
}

/// How many machine instructions a (possibly pseudo-) mnemonic occupies.
fn pseudo_len(mnemonic: &str, ops: &[String]) -> u32 {
    match mnemonic {
        "la" => 2,
        "blt" | "bgt" | "ble" | "bge" => 2,
        "li" => {
            let v = ops.get(1).and_then(|s| parse_imm::<i64>(s)).unwrap_or(0) as i32;
            let mut tmp = Vec::new();
            emit_li(Reg::AT, v, &mut tmp);
            tmp.len() as u32
        }
        _ => 1,
    }
}

fn err(line: usize, message: String) -> AsmError {
    AsmError { line, message }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn split_instr(s: &str) -> (String, Vec<String>) {
    match s.find(char::is_whitespace) {
        Some(i) => {
            let (m, rest) = s.split_at(i);
            (m.to_owned(), csv(rest))
        }
        None => (s.to_owned(), Vec::new()),
    }
}

fn csv(s: &str) -> Vec<String> {
    s.split(',')
        .map(|p| p.trim().to_owned())
        .filter(|p| !p.is_empty())
        .collect()
}

/// Parses `off(base)` or `(base)` into `(offset, base_register_name)`.
fn parse_mem(s: &str) -> Option<(i16, String)> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close != s.len() - 1 {
        return None;
    }
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm::<i64>(off_str).filter(|v| (-32768..=32767).contains(v))? as i16
    };
    Some((off, s[open + 1..close].trim().to_owned()))
}

/// Parses a decimal or `0x` hexadecimal integer with optional sign.
fn parse_imm<T>(s: &str) -> Option<T>
where
    T: TryFrom<i64>,
{
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    T::try_from(if neg { -v } else { v }).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).unwrap()
    }

    #[test]
    fn basic_loop_assembles() {
        let p = asm(r#"
        .text
        entry:
            addiu $t0, $zero, 4
        loop:
            addiu $t0, $t0, -1
            bne   $t0, $zero, loop
            nop
            break
        "#);
        assert_eq!(p.instructions().len(), 5);
        // bne offset: target loop is 2 instructions back from the delay slot.
        let bne = p.instructions()[2];
        assert_eq!(bne.op, Opcode::Bne);
        assert_eq!(bne.imm, -2);
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let p = asm(r#"
        .data
        tbl: .word 1, 2, 0x10
        b:   .byte 1, 2
             .align 2
        h:   .half 0x1234
             .space 4
        f:   .float 1.5
        d:   .double 2.0
        .text
            la $t0, tbl
            lw $t1, 0($t0)
            break
        "#);
        let d = p.data();
        assert_eq!(&d.bytes[..12], &[1, 0, 0, 0, 2, 0, 0, 0, 0x10, 0, 0, 0]);
        assert_eq!(p.symbol("b").unwrap(), d.base + 12);
        assert_eq!(p.symbol("h").unwrap(), d.base + 16);
        assert_eq!(p.symbol("f").unwrap(), d.base + 22);
        assert_eq!(p.symbol("d").unwrap(), d.base + 26);
        assert_eq!(d.bytes.len(), 34);
    }

    #[test]
    fn pseudo_li_sizes() {
        let p = asm(".text\n li $t0, 7\n li $t1, 0x10000\n li $t2, 0x12345678\n break\n");
        // 1 + 1 + 2 + 1 instructions
        assert_eq!(p.instructions().len(), 5);
        assert_eq!(p.instructions()[0].op, Opcode::Addiu);
        assert_eq!(p.instructions()[1].op, Opcode::Lui);
        assert_eq!(p.instructions()[2].op, Opcode::Lui);
        assert_eq!(p.instructions()[3].op, Opcode::Ori);
    }

    #[test]
    fn pseudo_branches_expand() {
        let p = asm(r#"
        .text
        top:
            blt $t0, $t1, top
            nop
            break
        "#);
        assert_eq!(p.instructions()[0].op, Opcode::Slt);
        assert_eq!(p.instructions()[1].op, Opcode::Bne);
        assert_eq!(p.instructions()[1].imm, -2);
    }

    #[test]
    fn fp_instructions() {
        let p = asm(r#"
        .data
        v: .double 3.25
        .text
            la    $t0, v
            ldc1  $f2, 0($t0)
            add.d $f4, $f2, $f2
            sqrt.d $f6, $f4
            c.lt.d $f2, $f4
            bc1t  done
            nop
        done:
            break
        "#);
        assert_eq!(p.instructions().len(), 9);
        assert_eq!(p.instructions()[2].op, Opcode::Ldc1);
        assert_eq!(p.instructions()[3].op, Opcode::AddD);
    }

    #[test]
    fn errors_name_the_line() {
        let e = Assembler::new()
            .assemble(".text\n bogus $t0\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = Assembler::new()
            .assemble(".text\n lw $t0, 4($nope)\n")
            .unwrap_err();
        assert!(e.message.contains("nope"));

        let e = Assembler::new()
            .assemble(".text\n j nowhere\n")
            .unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = Assembler::new()
            .assemble(".text\nx: nop\nx: nop\n")
            .unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = Assembler::new().assemble(".text\n .word 1\n").unwrap_err();
        assert!(e.message.contains("outside .data"));

        assert!(Assembler::new().assemble("").is_err());
    }

    #[test]
    fn hex_immediates_and_negative_offsets() {
        let p = asm(".data
buf: .space 64
.text
 la $s0, buf
 addiu $s0, $s0, 32
              lw $t0, -4($s0)
 ori $t1, $zero, 0xFF
 andi $t2, $t1, 0x0F
              sw $t0, -32($s0)
 break
");
        let lw = p.instructions()[3];
        assert_eq!(lw.op, Opcode::Lw);
        assert_eq!(lw.imm, -4);
        assert_eq!(p.instructions()[4].imm as u16, 0xFF);
    }

    #[test]
    fn multiple_labels_and_inline_statements() {
        let p = asm(".text
a: b: c: nop
d: break
");
        let base = p.symbol("a").unwrap();
        assert_eq!(p.symbol("b"), Some(base));
        assert_eq!(p.symbol("c"), Some(base));
        assert_eq!(p.symbol("d"), Some(base + 4));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = asm("# leading comment

.text
 nop # trailing
  # indented
 break
");
        assert_eq!(p.instructions().len(), 2);
    }

    #[test]
    fn branch_out_of_range_rejected() {
        // A forward branch beyond +-32767 words must error, not wrap.
        let mut src = String::from(
            ".text
 beq $zero, $zero, far
 nop
",
        );
        for _ in 0..40_000 {
            src.push_str(
                " nop
",
            );
        }
        src.push_str(
            "far: break
",
        );
        let err = Assembler::new().assemble(&src).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn zero_offset_memory_operand() {
        let p = asm(".text
 li $t0, 0x2000
 lw $t1, ($t0)
 break
");
        let lw = p
            .instructions()
            .iter()
            .find(|i| i.op == Opcode::Lw)
            .unwrap();
        assert_eq!(lw.imm, 0);
    }

    #[test]
    fn custom_bases_are_respected() {
        let p = Assembler::new()
            .text_base(0x0010_0000)
            .data_base(0x2000_0000)
            .assemble(
                ".data
x: .word 1
.text
 nop
 break
",
            )
            .unwrap();
        assert_eq!(p.text_base(), 0x0010_0000);
        assert_eq!(p.data().base, 0x2000_0000);
        assert_eq!(p.symbol("x"), Some(0x2000_0000));
    }

    #[test]
    fn jump_targets_resolve() {
        let p = asm(r#"
        .text
            j end
            nop
        end:
            break
        "#);
        assert_eq!(p.instructions()[0].target << 2, p.symbol("end").unwrap());
    }

    #[test]
    fn everything_round_trips_through_encode_decode() {
        let p = asm(r#"
        .data
        arr: .space 64
        .text
            la    $s0, arr
            li    $s1, 16
            move  $t3, $s1
        loop:
            lw    $t0, 0($s0)
            addu  $t1, $t1, $t0
            sw    $t1, 4($s0)
            addiu $s0, $s0, 4
            addiu $s1, $s1, -1
            bgtz  $s1, loop
            nop
            mult  $t1, $s1
            mflo  $t4
            srav  $t5, $t4, $t3
            jr    $ra
            nop
            break
        "#);
        for i in p.instructions() {
            assert_eq!(&Instruction::decode(i.encode()).unwrap(), i, "{i}");
        }
    }
}
