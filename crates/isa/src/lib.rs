//! Mini-MIPS instruction set substrate for the Aurora III study.
//!
//! The Aurora III processor described in *Resource Allocation in a High
//! Clock Rate Microprocessor* (ASPLOS 1994) implements the MIPS R3000 ISA.
//! This crate provides everything needed to produce the dynamic
//! instruction traces that drive the cycle-level simulator:
//!
//! * [`Reg`] / [`FReg`] — integer and floating-point architectural registers,
//! * [`Opcode`] / [`Instruction`] — a MIPS-I subset (plus the double-word
//!   FP loads/stores mentioned in §5.9 of the paper) with binary
//!   [`Instruction::encode`] / [`Instruction::decode`] using the standard
//!   MIPS field layout,
//! * [`Assembler`] — a two-pass text assembler with labels and data
//!   directives, and [`ProgramBuilder`] for programmatic code generation,
//! * [`Emulator`] — a functional emulator with MIPS branch-delay-slot
//!   semantics that executes a [`Program`] and emits [`TraceOp`] records,
//! * [`TraceOp`] / [`OpKind`] — the dynamic trace format consumed by the
//!   `aurora-core` cycle simulator,
//! * [`PackedTrace`] — a compact fixed-width trace for capture-once /
//!   replay-many configuration sweeps, byte-compatible with the binary
//!   [`write_trace`] / [`read_trace`] on-disk format,
//! * [`BlockTrace`] — the packed trace lowered to deduplicated
//!   basic-block superinstructions with pre-resolved footprints, the
//!   input of the block-granular replay fast path,
//! * [`Snapshot`] / [`SnapshotWriter`] / [`SnapshotReader`] — the
//!   versioned binary checkpoint codec units use to freeze dynamic state
//!   so a run can be saved, restored and resumed bit-identically,
//! * [`Fnv1a`] — the stable cross-process fingerprint hasher that keys
//!   every content-addressed cache in the workspace (trace store, config
//!   fingerprints, the `aurora-serve` result store).
//!
//! # Example
//!
//! ```
//! use aurora_isa::{Assembler, Emulator, RunOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new().assemble(
//!     r#"
//!     .text
//!         addiu  $t0, $zero, 10    # counter
//!         addu   $t1, $zero, $zero # sum
//!     loop:
//!         addu   $t1, $t1, $t0
//!         addiu  $t0, $t0, -1
//!         bne    $t0, $zero, loop
//!         nop                      # branch delay slot
//!         break
//!     "#,
//! )?;
//! let mut emu = Emulator::new(&program);
//! let outcome = emu.run(1_000)?;
//! assert_eq!(outcome, RunOutcome::Halted);
//! assert_eq!(emu.reg(aurora_isa::Reg::T1), 55);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod asm;
mod block;
mod builder;
mod codec;
mod emu;
mod fingerprint;
mod instr;
mod opcode;
mod packed;
mod program;
mod reg;
mod snapshot;
mod trace;
mod trace_io;

pub use asm::{AsmError, Assembler};
pub use block::{
    BlockRun, BlockTemplate, BlockTrace, ClassDemand, LatencyClass, SegPlan, BLOCK_FORMAT_VERSION,
    HILO_BIT, MAX_BLOCK_OPS, MIN_PLAN_OPS,
};
pub use builder::ProgramBuilder;
pub use codec::TRACE_FORMAT_VERSION;
pub use emu::{EmuError, Emulator, RunOutcome};
pub use fingerprint::{fnv1a, Fnv1a};
pub use instr::{DecodeError, Instruction};
pub use opcode::{Opcode, OpcodeClass};
pub use packed::{PackedOp, PackedTrace};
pub use program::{DelaySlotError, Program, Segment};
pub use reg::{FReg, Reg};
pub use snapshot::{
    Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, CHECKPOINT_FORMAT_VERSION,
};
pub use trace::{ArchReg, MemWidth, OpKind, TraceOp, TraceStats};
pub use trace_io::{read_trace, write_trace, TraceReader, TraceWriter};
