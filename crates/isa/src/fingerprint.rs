//! Stable 64-bit FNV-1a fingerprinting.
//!
//! Several layers of the workspace need a hash that is *stable across
//! processes, builds and platforms* — unlike `std::hash`, whose output
//! is explicitly unspecified and randomised per process:
//!
//! * [`Workload::content_hash`](../aurora_workloads/struct.Workload.html)
//!   keys on-disk trace caches by kernel content,
//! * `MachineConfig::fingerprint` (in `aurora-core`) keys memoised
//!   simulation results by configuration,
//! * the `aurora-serve` result store checksums its on-disk records.
//!
//! All of them write their fields through one [`Fnv1a`] so the byte
//! streams (and therefore the fingerprints) are reproducible anywhere.
//! FNV-1a is not cryptographic; it is used for cache keying and
//! corruption detection, never for security.
//!
//! ```
//! use aurora_isa::Fnv1a;
//!
//! let mut h = Fnv1a::new();
//! h.write_u32(17);
//! h.write(b"baseline");
//! let a = h.finish();
//!
//! let mut h2 = Fnv1a::new();
//! h2.write_u32(17);
//! h2.write(b"baseline");
//! // Same field sequence, same fingerprint — in any process, on any host.
//! assert_eq!(a, h2.finish());
//! ```

/// 64-bit FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental, allocation-free 64-bit FNV-1a hasher with a stable,
/// platform-independent output (multi-byte integers are folded in as
/// little-endian bytes).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a fingerprint at the standard FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(OFFSET)
    }

    /// Folds raw bytes into the fingerprint.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Folds a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u16` (little-endian).
    pub fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a boolean as one `0`/`1` byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Folds a string's UTF-8 bytes, length-prefixed so `("ab", "c")`
    /// and `("a", "bc")` fingerprint differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The fingerprint of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// One-shot convenience: the FNV-1a fingerprint of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_writers_are_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fnv1a::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn str_length_prefix_disambiguates_concatenation() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn usize_widens_to_u64() {
        let mut a = Fnv1a::new();
        a.write_usize(7);
        let mut b = Fnv1a::new();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
