//! The shared trace record codec.
//!
//! Both the on-disk format ([`trace_io`](crate::trace_io)) and the
//! in-memory packed format ([`packed`](crate::packed)) represent a
//! [`TraceOp`](crate::TraceOp) as the same fixed-width field tuple:
//!
//! * `pc` — the instruction address,
//! * `kind` — a one-byte tag for the [`OpKind`] variant,
//! * `aux` — the memory-access width for loads/stores, zero otherwise,
//! * `payload` — the effective address or control-flow target,
//! * `dst` / `src1` / `src2` — one-byte register codes.
//!
//! Keeping the enum↔field mapping in one place guarantees that a trace
//! serialised to disk and a trace packed in memory can never disagree
//! about what a byte means; the disk format is simply the packed record
//! plus a header and reserved padding.
//!
//! # Changing the format
//!
//! Captured traces outlive the code that wrote them, so the layout is
//! guarded by `aurora-lint`'s L005 rule: the `PackedOp` field list and
//! every numeric constant in this file are hashed into a structural
//! fingerprint recorded at `crates/isa/trace_format.fp`. Any change to
//! the record layout, the kind tags, or the register codes must
//!
//! 1. bump [`TRACE_FORMAT_VERSION`], and
//! 2. re-record the fingerprint:
//!    `cargo run -q -p aurora-lint -- --fingerprint > crates/isa/trace_format.fp`.
//!
//! A layout change without the version bump fails the build (see
//! `docs/LINTS.md`).

use crate::trace::{ArchReg, MemWidth, OpKind};

/// A malformed field byte, reported without allocating. Decoding runs in
/// the replay hot path (`PackedOp::unpack` is called once per op), so even
/// the error arm must stay allocation-free; the offending byte is carried
/// by value and only rendered if someone actually prints the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    KindTag(u8),
    RegisterCode(u8),
    WidthCode(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::KindTag(b) => write!(f, "kind tag {b}"),
            CodecError::RegisterCode(b) => write!(f, "register code {b}"),
            CodecError::WidthCode(b) => write!(f, "width code {b}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bumped whenever the record field encoding changes; embedded in the
/// file header and in on-disk cache names so stale artefacts are never
/// misread.
///
/// Paired with the structural fingerprint in `crates/isa/trace_format.fp`
/// (maintained by `aurora-lint -- --fingerprint`): bumping one without
/// the other is a build failure. See the module docs for the workflow.
pub const TRACE_FORMAT_VERSION: u32 = 1;

// Kind tags.
pub(crate) const K_INT_ALU: u8 = 0;
pub(crate) const K_INT_MUL: u8 = 1;
pub(crate) const K_INT_DIV: u8 = 2;
pub(crate) const K_LOAD: u8 = 3;
pub(crate) const K_STORE: u8 = 4;
pub(crate) const K_FP_LOAD: u8 = 5;
pub(crate) const K_FP_STORE: u8 = 6;
pub(crate) const K_BRANCH: u8 = 7;
pub(crate) const K_BRANCH_TAKEN: u8 = 8;
pub(crate) const K_JUMP: u8 = 9;
pub(crate) const K_JUMP_REG: u8 = 10;
pub(crate) const K_FP_ADD: u8 = 11;
pub(crate) const K_FP_MUL: u8 = 12;
pub(crate) const K_FP_DIV: u8 = 13;
pub(crate) const K_FP_SQRT: u8 = 14;
pub(crate) const K_FP_CVT: u8 = 15;
pub(crate) const K_FP_MOVE: u8 = 16;
pub(crate) const K_FP_CMP: u8 = 17;
pub(crate) const K_NOP: u8 = 18;

/// Splits an [`OpKind`] into its `(tag, aux, payload)` encoding.
pub(crate) fn pack_kind(kind: OpKind) -> (u8, u8, u32) {
    match kind {
        OpKind::IntAlu => (K_INT_ALU, 0, 0),
        OpKind::IntMul => (K_INT_MUL, 0, 0),
        OpKind::IntDiv => (K_INT_DIV, 0, 0),
        OpKind::Load { ea, width } => (K_LOAD, encode_width(width), ea),
        OpKind::Store { ea, width } => (K_STORE, encode_width(width), ea),
        OpKind::FpLoad { ea, width } => (K_FP_LOAD, encode_width(width), ea),
        OpKind::FpStore { ea, width } => (K_FP_STORE, encode_width(width), ea),
        OpKind::Branch { taken, target } => {
            (if taken { K_BRANCH_TAKEN } else { K_BRANCH }, 0, target)
        }
        OpKind::Jump { target, register } => {
            (if register { K_JUMP_REG } else { K_JUMP }, 0, target)
        }
        OpKind::FpAdd => (K_FP_ADD, 0, 0),
        OpKind::FpMul => (K_FP_MUL, 0, 0),
        OpKind::FpDiv => (K_FP_DIV, 0, 0),
        OpKind::FpSqrt => (K_FP_SQRT, 0, 0),
        OpKind::FpCvt => (K_FP_CVT, 0, 0),
        OpKind::FpMove => (K_FP_MOVE, 0, 0),
        OpKind::FpCmp => (K_FP_CMP, 0, 0),
        OpKind::Nop => (K_NOP, 0, 0),
    }
}

/// Rebuilds an [`OpKind`] from its `(tag, aux, payload)` encoding.
#[inline]
pub(crate) fn unpack_kind(tag: u8, aux: u8, payload: u32) -> Result<OpKind, CodecError> {
    Ok(match tag {
        K_INT_ALU => OpKind::IntAlu,
        K_INT_MUL => OpKind::IntMul,
        K_INT_DIV => OpKind::IntDiv,
        K_LOAD => OpKind::Load {
            ea: payload,
            width: decode_width(aux)?,
        },
        K_STORE => OpKind::Store {
            ea: payload,
            width: decode_width(aux)?,
        },
        K_FP_LOAD => OpKind::FpLoad {
            ea: payload,
            width: decode_width(aux)?,
        },
        K_FP_STORE => OpKind::FpStore {
            ea: payload,
            width: decode_width(aux)?,
        },
        K_BRANCH => OpKind::Branch {
            taken: false,
            target: payload,
        },
        K_BRANCH_TAKEN => OpKind::Branch {
            taken: true,
            target: payload,
        },
        K_JUMP => OpKind::Jump {
            target: payload,
            register: false,
        },
        K_JUMP_REG => OpKind::Jump {
            target: payload,
            register: true,
        },
        K_FP_ADD => OpKind::FpAdd,
        K_FP_MUL => OpKind::FpMul,
        K_FP_DIV => OpKind::FpDiv,
        K_FP_SQRT => OpKind::FpSqrt,
        K_FP_CVT => OpKind::FpCvt,
        K_FP_MOVE => OpKind::FpMove,
        K_FP_CMP => OpKind::FpCmp,
        K_NOP => OpKind::Nop,
        other => return Err(CodecError::KindTag(other)),
    })
}

// Register encoding: 0 = none; 1..=32 int r0..r31; 33..=64 fp; 65 hilo; 66 fcc.
pub(crate) fn encode_reg(r: Option<ArchReg>) -> u8 {
    match r {
        None => 0,
        Some(ArchReg::Int(n)) => 1 + n,
        Some(ArchReg::Fp(n)) => 33 + n,
        Some(ArchReg::HiLo) => 65,
        Some(ArchReg::FpCond) => 66,
    }
}

#[inline]
pub(crate) fn decode_reg(b: u8) -> Result<Option<ArchReg>, CodecError> {
    Ok(match b {
        0 => None,
        1..=32 => Some(ArchReg::Int(b - 1)),
        33..=64 => Some(ArchReg::Fp(b - 33)),
        65 => Some(ArchReg::HiLo),
        66 => Some(ArchReg::FpCond),
        other => return Err(CodecError::RegisterCode(other)),
    })
}

pub(crate) fn encode_width(w: MemWidth) -> u8 {
    match w {
        MemWidth::Byte => 1,
        MemWidth::Half => 2,
        MemWidth::Word => 4,
        MemWidth::Double => 8,
    }
}

#[inline]
pub(crate) fn decode_width(b: u8) -> Result<MemWidth, CodecError> {
    Ok(match b {
        1 => MemWidth::Byte,
        2 => MemWidth::Half,
        4 => MemWidth::Word,
        8 => MemWidth::Double,
        other => Err(CodecError::WidthCode(other))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_KINDS: &[OpKind] = &[
        OpKind::IntAlu,
        OpKind::IntMul,
        OpKind::IntDiv,
        OpKind::Load {
            ea: 0x1000,
            width: MemWidth::Word,
        },
        OpKind::Store {
            ea: 0x1004,
            width: MemWidth::Byte,
        },
        OpKind::FpLoad {
            ea: 0x1008,
            width: MemWidth::Double,
        },
        OpKind::FpStore {
            ea: 0x1010,
            width: MemWidth::Half,
        },
        OpKind::Branch {
            taken: false,
            target: 0x400,
        },
        OpKind::Branch {
            taken: true,
            target: 0x404,
        },
        OpKind::Jump {
            target: 0x408,
            register: false,
        },
        OpKind::Jump {
            target: 0x40c,
            register: true,
        },
        OpKind::FpAdd,
        OpKind::FpMul,
        OpKind::FpDiv,
        OpKind::FpSqrt,
        OpKind::FpCvt,
        OpKind::FpMove,
        OpKind::FpCmp,
        OpKind::Nop,
    ];

    #[test]
    fn every_kind_round_trips() {
        for &kind in ALL_KINDS {
            let (tag, aux, payload) = pack_kind(kind);
            assert_eq!(unpack_kind(tag, aux, payload).unwrap(), kind);
        }
    }

    #[test]
    fn every_register_round_trips() {
        let mut regs = vec![None, Some(ArchReg::HiLo), Some(ArchReg::FpCond)];
        for n in 0..32 {
            regs.push(Some(ArchReg::Int(n)));
            regs.push(Some(ArchReg::Fp(n)));
        }
        for r in regs {
            assert_eq!(decode_reg(encode_reg(r)).unwrap(), r);
        }
    }

    #[test]
    fn invalid_codes_are_rejected() {
        assert!(decode_reg(200).is_err());
        assert!(decode_width(3).is_err());
        assert!(unpack_kind(99, 0, 0).is_err());
        assert!(unpack_kind(K_LOAD, 5, 0).is_err());
    }
}
