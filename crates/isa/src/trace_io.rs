//! Binary serialisation of dynamic traces.
//!
//! Trace-driven methodology (§4.1) traditionally separates *trace
//! collection* from *simulation*: traces are captured once and replayed
//! against many configurations. This module provides a compact binary
//! format for that workflow:
//!
//! * a 16-byte header (`magic`, version, record count),
//! * fixed 20-byte little-endian records — simple, seekable and fast,
//! * streaming [`TraceWriter`] / [`TraceReader`] so multi-million-op
//!   traces never need to live in memory.
//!
//! ```
//! use aurora_isa::{read_trace, write_trace, OpKind, TraceOp};
//!
//! # fn main() -> std::io::Result<()> {
//! let trace = vec![
//!     TraceOp::bare(0x400000, OpKind::IntAlu),
//!     TraceOp::bare(0x400004, OpKind::Branch { taken: true, target: 0x400000 }),
//! ];
//! let mut buf = Vec::new();
//! write_trace(&mut buf, trace.iter().copied())?;
//! let back: Vec<TraceOp> = read_trace(&buf[..])?.collect::<Result<_, _>>()?;
//! assert_eq!(back, trace);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

use crate::codec;
use crate::packed::PackedOp;
use crate::trace::TraceOp;

const MAGIC: &[u8; 8] = b"AUR3TRC\0";
const VERSION: u32 = codec::TRACE_FORMAT_VERSION;
const RECORD_BYTES: usize = 20;

fn bad(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("trace file: {msg}"))
}

// A disk record is the packed field tuple (see `codec`) plus reserved
// padding: pc[0..4], kind[4], aux[5], payload[6..10], dst/src1/src2
// [10..13], reserved-zero [13..20].
fn packed_to_record(op: &PackedOp) -> [u8; RECORD_BYTES] {
    let (pc, kind, aux, payload, dst, src1, src2) = op.fields();
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..4].copy_from_slice(&pc.to_le_bytes());
    rec[4] = kind;
    rec[5] = aux;
    rec[6..10].copy_from_slice(&payload.to_le_bytes());
    rec[10] = dst;
    rec[11] = src1;
    rec[12] = src2;
    rec
}

fn decode_record(rec: &[u8; RECORD_BYTES]) -> io::Result<TraceOp> {
    let pc = u32::from_le_bytes(rec[0..4].try_into().unwrap());
    let payload = u32::from_le_bytes(rec[6..10].try_into().unwrap());
    let kind = codec::unpack_kind(rec[4], rec[5], payload).map_err(bad)?;
    Ok(TraceOp {
        pc,
        kind,
        dst: codec::decode_reg(rec[10]).map_err(bad)?,
        src1: codec::decode_reg(rec[11]).map_err(bad)?,
        src2: codec::decode_reg(rec[12]).map_err(bad)?,
    })
}

/// Streaming trace writer. Records are written incrementally; the record
/// count in the header is patched by [`TraceWriter::finish`] for seekable
/// sinks, or left as the streaming sentinel `u32::MAX` otherwise.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W) -> io::Result<TraceWriter<W>> {
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&u32::MAX.to_le_bytes())?; // streaming sentinel
        Ok(TraceWriter { sink, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write(&mut self, op: &TraceOp) -> io::Result<()> {
        self.write_packed(&PackedOp::pack(op))
    }

    /// Appends one already-packed record without decoding it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_packed(&mut self, op: &PackedOp) -> io::Result<()> {
        self.sink.write_all(&packed_to_record(op))?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming trace reader; an iterator of `io::Result<TraceOp>`.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    remaining: Option<u64>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for a bad magic number or unsupported
    /// version, and propagates I/O errors.
    pub fn new(mut source: R) -> io::Result<TraceReader<R>> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("bad magic"));
        }
        let mut word = [0u8; 4];
        source.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != VERSION {
            return Err(bad(format!("unsupported version {version}")));
        }
        source.read_exact(&mut word)?;
        let count = u32::from_le_bytes(word);
        let remaining = (count != u32::MAX).then_some(u64::from(count));
        Ok(TraceReader { source, remaining })
    }

    /// Declared record count, if the trace was written with one.
    pub fn len_hint(&self) -> Option<u64> {
        self.remaining
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<TraceOp>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == Some(0) {
            return None;
        }
        let mut rec = [0u8; RECORD_BYTES];
        // Streaming traces end at EOF.
        match self.source.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && self.remaining.is_none() => {
                return None;
            }
            Err(e) => return Some(Err(e)),
        }
        if let Some(r) = self.remaining.as_mut() {
            *r -= 1;
        }
        Some(decode_record(&rec))
    }
}

/// Writes a whole trace (streaming header variant).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_trace<W: Write>(sink: W, ops: impl IntoIterator<Item = TraceOp>) -> io::Result<u64> {
    let mut w = TraceWriter::new(sink)?;
    for op in ops {
        w.write(&op)?;
    }
    let n = w.written();
    w.finish()?;
    Ok(n)
}

/// Opens a trace for streaming reads.
///
/// # Errors
///
/// See [`TraceReader::new`].
pub fn read_trace<R: Read>(source: R) -> io::Result<TraceReader<R>> {
    TraceReader::new(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArchReg, MemWidth, OpKind};
    use proptest::prelude::*;

    fn sample_ops() -> Vec<TraceOp> {
        vec![
            TraceOp {
                pc: 0x0040_0000,
                kind: OpKind::Load {
                    ea: 0x1001_0040,
                    width: MemWidth::Word,
                },
                dst: Some(ArchReg::Int(8)),
                src1: Some(ArchReg::Int(29)),
                src2: None,
            },
            TraceOp::bare(0x0040_0004, OpKind::FpDiv),
            TraceOp {
                pc: 0x0040_0008,
                kind: OpKind::Branch {
                    taken: true,
                    target: 0x0040_0000,
                },
                dst: None,
                src1: Some(ArchReg::FpCond),
                src2: Some(ArchReg::HiLo),
            },
            TraceOp {
                pc: 0x0040_000c,
                kind: OpKind::FpStore {
                    ea: 0x1001_0048,
                    width: MemWidth::Double,
                },
                dst: None,
                src1: Some(ArchReg::Int(4)),
                src2: Some(ArchReg::Fp(12)),
            },
            TraceOp::bare(
                0x0040_0010,
                OpKind::Jump {
                    target: 0x0040_0100,
                    register: true,
                },
            ),
            TraceOp::bare(0x0040_0014, OpKind::Nop),
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        let ops = sample_ops();
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, ops.iter().copied()).unwrap();
        assert_eq!(n, ops.len() as u64);
        let back: Vec<TraceOp> = read_trace(&buf[..])
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn header_is_validated() {
        assert!(read_trace(&b"NOTATRACE....."[..]).is_err());
        let mut buf = Vec::new();
        write_trace(&mut buf, sample_ops()).unwrap();
        buf[9] = 99; // corrupt version
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn corrupt_record_reports() {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample_ops()).unwrap();
        buf[16 + 4] = 200; // invalid kind tag in the first record
        let items: Vec<io::Result<TraceOp>> = read_trace(&buf[..]).unwrap().collect();
        assert!(items[0].is_err());
    }

    #[test]
    fn empty_trace() {
        let mut buf = Vec::new();
        assert_eq!(write_trace(&mut buf, std::iter::empty()).unwrap(), 0);
        let items: Vec<_> = read_trace(&buf[..]).unwrap().collect();
        assert!(items.is_empty());
    }

    #[test]
    fn writer_counts() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for op in sample_ops() {
            w.write(&op).unwrap();
        }
        assert_eq!(w.written(), 6);
        w.finish().unwrap();
    }

    proptest! {
        /// Any trace op survives a serialisation round trip.
        #[test]
        fn arbitrary_ops_round_trip(
            pc in any::<u32>(),
            ea in any::<u32>(),
            dst in 0u8..32,
            src in 0u8..32,
            kind_sel in 0u8..10,
        ) {
            let kind = match kind_sel {
                0 => OpKind::IntAlu,
                1 => OpKind::Load { ea, width: MemWidth::Word },
                2 => OpKind::Store { ea, width: MemWidth::Byte },
                3 => OpKind::FpLoad { ea, width: MemWidth::Double },
                4 => OpKind::Branch { taken: ea.is_multiple_of(2), target: ea },
                5 => OpKind::Jump { target: ea, register: ea % 2 == 1 },
                6 => OpKind::FpMul,
                7 => OpKind::FpSqrt,
                8 => OpKind::IntDiv,
                _ => OpKind::FpCmp,
            };
            let op = TraceOp {
                pc,
                kind,
                dst: Some(ArchReg::Int(dst)),
                src1: Some(ArchReg::Fp(src & !1)),
                src2: None,
            };
            let mut buf = Vec::new();
            write_trace(&mut buf, [op]).unwrap();
            let back: Vec<TraceOp> =
                read_trace(&buf[..]).unwrap().collect::<io::Result<_>>().unwrap();
            prop_assert_eq!(back, vec![op]);
        }
    }
}
