# Structural fingerprint of the packed trace format.
# Re-record with `cargo run -p aurora-lint -- --fingerprint` whenever
# the PackedOp layout or codec constants change, and bump
# TRACE_FORMAT_VERSION alongside it. See docs/LINTS.md (L005).
version = 1
fingerprint = 0xd0c5ed85b8be2223
