//! Microbenchmarks of the memory-hierarchy substrates: the per-access
//! costs that bound overall simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aurora_core::ReorderBuffer;
use aurora_mem::{
    Biu, DirectMappedCache, Geometry, LatencyModel, LineAddr, MshrFile, StreamBuffers, StreamProbe,
    TransferKind, WriteCache,
};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.bench_function("probe_hit", |b| {
        let mut cache = DirectMappedCache::new(Geometry::new(32 * 1024, 32));
        cache.fill(0x1000);
        b.iter(|| black_box(cache.probe(black_box(0x1000))));
    });
    group.bench_function("probe_miss_fill", |b| {
        let mut cache = DirectMappedCache::new(Geometry::new(32 * 1024, 32));
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            if !cache.probe(addr) {
                cache.fill(addr);
            }
        });
    });
    group.finish();
}

fn bench_write_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_cache");
    group.bench_function("coalescing_store", |b| {
        let mut wc = WriteCache::new(4);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(wc.store(black_box(0x2000 + (t % 8) * 4), 4, t));
        });
    });
    group.bench_function("thrashing_store", |b| {
        let mut wc = WriteCache::new(4);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(wc.store(black_box((t % 64) * 0x1000), 4, t));
        });
    });
    group.finish();
}

fn bench_streams(c: &mut Criterion) {
    c.bench_function("stream_buffer_probe_allocate", |b| {
        let mut sb = StreamBuffers::new(4, 3);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            match sb.probe(LineAddr(line), line) {
                StreamProbe::Hit { .. } => sb.deepen(|_| line + 20),
                StreamProbe::Miss => sb.allocate(LineAddr(line), line, |_| line + 20),
            }
        });
    });
}

fn bench_mshr_rob_biu(c: &mut Criterion) {
    c.bench_function("mshr_cycle", |b| {
        let mut m = MshrFile::new(4);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            m.expire(t);
            if m.lookup(LineAddr(t % 8)).is_none() && m.has_free() {
                let _ = m.allocate(LineAddr(t % 8), t + 20);
            }
        });
    });
    c.bench_function("rob_push_drain", |b| {
        let mut rob = ReorderBuffer::new(6);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            rob.drain(t);
            let _ = rob.try_push(t + 3);
        });
    });
    c.bench_function("biu_request", |b| {
        let mut biu = Biu::new(LatencyModel::average_17(), 32, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 30;
            black_box(biu.request(t, TransferKind::DataFill));
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_write_cache, bench_streams, bench_mshr_rob_biu
);
criterion_main!(benches);
