//! End-to-end benchmark per paper experiment: each target runs the exact
//! workload/configuration pipeline behind one table or figure (at reduced
//! trace length) and reports simulation throughput. `cargo bench` green
//! here means every experiment's code path is exercised.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use aurora_core::{simulate, FpIssuePolicy, IssueWidth, MachineModel};
use aurora_isa::TraceOp;
use aurora_mem::LatencyModel;
use aurora_workloads::{FpBenchmark, IntBenchmark, Scale};

/// Pre-collected short traces so the benches measure the simulator, not
/// the emulator.
fn trace_of_int(b: IntBenchmark, cap: usize) -> Vec<TraceOp> {
    let mut ops = Vec::with_capacity(cap);
    let w = b.workload(Scale::Test);
    let _ = w.run_traced(|op| {
        if ops.len() < cap {
            ops.push(op);
        }
    });
    ops
}

fn trace_of_fp(b: FpBenchmark, cap: usize) -> Vec<TraceOp> {
    let mut ops = Vec::with_capacity(cap);
    let w = b.workload(Scale::Test);
    let _ = w.run_traced(|op| {
        if ops.len() < cap {
            ops.push(op);
        }
    });
    ops
}

fn fig4_issue_performance(c: &mut Criterion) {
    let trace = trace_of_int(IntBenchmark::Espresso, 50_000);
    let mut group = c.benchmark_group("fig4");
    for issue in [IssueWidth::Single, IssueWidth::Dual] {
        for latency in [17u32, 35] {
            let cfg = MachineModel::Baseline.config(issue, LatencyModel::Fixed(latency));
            group.bench_function(format!("baseline_{issue}_L{latency}"), |b| {
                b.iter_batched(
                    || trace.clone(),
                    |t| simulate(&cfg, t),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn fig5_fig7_memory_features(c: &mut Criterion) {
    let trace = trace_of_int(IntBenchmark::Sc, 50_000);
    let mut group = c.benchmark_group("fig5_fig7");
    let mut no_prefetch = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    no_prefetch.prefetch_enabled = false;
    group.bench_function("no_prefetch", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| simulate(&no_prefetch, t),
            BatchSize::LargeInput,
        )
    });
    let mut one_mshr = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    one_mshr.mshr_entries = 1;
    group.bench_function("one_mshr", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| simulate(&one_mshr, t),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn tab3_tab5_models(c: &mut Criterion) {
    let trace = trace_of_int(IntBenchmark::Compress, 50_000);
    let mut group = c.benchmark_group("tab3_tab5");
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        group.bench_function(format!("{model}"), |b| {
            b.iter_batched(
                || trace.clone(),
                |t| simulate(&cfg, t),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn tab6_fig9_fpu(c: &mut Criterion) {
    let trace = trace_of_fp(FpBenchmark::Su2cor, 50_000);
    let mut group = c.benchmark_group("tab6_fig9");
    for policy in [
        FpIssuePolicy::InOrderComplete,
        FpIssuePolicy::OutOfOrderSingle,
        FpIssuePolicy::OutOfOrderDual,
    ] {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.fpu.issue_policy = policy;
        group.bench_function(format!("{policy}"), |b| {
            b.iter_batched(
                || trace.clone(),
                |t| simulate(&cfg, t),
                BatchSize::LargeInput,
            )
        });
    }
    let mut deep = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    deep.fpu.div_latency = 30;
    group.bench_function("div30", |b| {
        b.iter_batched(
            || trace.clone(),
            |t| simulate(&deep, t),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn emulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulator");
    group.sample_size(10);
    for b in [IntBenchmark::Eqntott, IntBenchmark::Gcc] {
        let w = b.workload(Scale::Test);
        group.bench_function(format!("{b}"), |bch| {
            bch.iter(|| {
                let mut n = 0u64;
                w.run_traced(|_| n += 1).unwrap();
                n
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        fig4_issue_performance,
        fig5_fig7_memory_features,
        tab3_tab5_models,
        tab6_fig9_fpu,
        emulation_throughput
);
criterion_main!(benches);
