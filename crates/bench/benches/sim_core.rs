//! Core-simulator throughput microbench: times `replay()` per kernel so
//! hot-loop regressions are visible locally without the full
//! `perf_baseline` sweep.
//!
//! ```text
//! cargo bench --features criterion --bench sim_core
//! ```
//!
//! The `decode` group measures the packed-trace decode floor alone —
//! the difference between `decode` and `replay` is the cycle-level
//! model's own cost, which is what the event-horizon work targets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aurora_bench::harness::{fp_suite, integer_suite};
use aurora_core::{replay, IssueWidth, MachineModel};
use aurora_mem::LatencyModel;
use aurora_workloads::{Scale, TraceStore, Workload};

fn suite() -> Vec<Workload> {
    let mut s = integer_suite(Scale::Test);
    s.extend(fp_suite(Scale::Test));
    s
}

fn bench_decode(c: &mut Criterion) {
    let store = TraceStore::global();
    let mut group = c.benchmark_group("decode");
    group.sample_size(10);
    for w in suite() {
        let trace = store.get(&w).expect("capture");
        group.bench_function(w.name(), |b| {
            b.iter(|| {
                let mut pcs: u64 = 0;
                for op in trace.iter() {
                    pcs = pcs.wrapping_add(u64::from(op.pc));
                }
                black_box(pcs)
            })
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let store = TraceStore::global();
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    for w in suite() {
        let trace = store.get(&w).expect("capture");
        group.bench_function(w.name(), |b| b.iter(|| black_box(replay(&cfg, &trace))));
    }
    group.finish();
}

criterion_group!(benches, bench_decode, bench_replay);
criterion_main!(benches);
