//! Shared harness utilities for regenerating every table and figure of the
//! paper. The binaries under `src/bin/` each reproduce one experiment; see
//! `DESIGN.md` for the experiment index.

pub mod harness;
