//! Figure 7: the effect of the MSHR count (the degree of non-blocking in
//! the data cache) on each model, plus a full 1–4 sweep.

use aurora_bench::harness::{cpi, cpi_range, integer_suite, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);

    // The paper's two curves: the standard configurations, and the "mshr
    // variations" (small 1->2, baseline 2->4, large 4->2).
    println!("Figure 7: standard vs MSHR-variation configurations (scale {scale})");
    let mut t = TextTable::new([
        "config", "MSHRs", "cost RBE", "min CPI", "avg CPI", "max CPI",
    ]);
    for model in MachineModel::ALL {
        let standard = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let mut varied = standard.clone();
        varied.mshr_entries = match model {
            MachineModel::Small => 2,
            MachineModel::Baseline => 4,
            MachineModel::Large => 2,
        };
        for (tag, cfg) in [("standard", &standard), ("variation", &varied)] {
            let r = cpi_range(&run_suite(cfg, &suite));
            t.row([
                format!("{model}/{tag}"),
                cfg.mshr_entries.to_string(),
                ipu_cost(cfg).0.to_string(),
                cpi(r.min),
                cpi(r.avg),
                cpi(r.max),
            ]);
        }
    }
    println!("{}", t.render());

    // Full sweep: every model, 1..=4 MSHRs.
    println!("Full MSHR sweep (avg CPI):");
    let mut sweep = TextTable::new(["model", "1", "2", "3", "4"]);
    for model in MachineModel::ALL {
        let mut row = vec![model.to_string()];
        for mshrs in 1..=4usize {
            let mut cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
            cfg.mshr_entries = mshrs;
            let r = cpi_range(&run_suite(&cfg, &suite));
            row.push(cpi(r.avg));
        }
        sweep.row(row);
    }
    println!("{}", sweep.render());
    println!("paper: the small model gains dramatically from a second MSHR;");
    println!("the base model gains a little from more; every model is best at 4.");
}
