//! Figure 9: the FPU design-space sweeps — queue sizes (a–c) and
//! functional-unit latencies (d–g) — measured as average CPI over the FP
//! suite with the single-issue out-of-order policy, as in §5.9.
//!
//! `--ablation` additionally reruns the §5.10 pipelining study:
//! non-pipelined add/multiply units cost less than 5 % performance.

use aurora_bench::harness::{cpi, fp_suite, has_flag, run_matrix, scale_from_args, TextTable};
use aurora_core::{FpIssuePolicy, IssueWidth, MachineConfig, MachineModel, SimStats};
use aurora_mem::LatencyModel;
use aurora_workloads::Workload;

fn base_cfg() -> MachineConfig {
    let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    cfg.fpu.issue_policy = FpIssuePolicy::OutOfOrderSingle;
    cfg
}

fn row_avg_cpi(row: &[SimStats]) -> f64 {
    row.iter().map(SimStats::cpi).sum::<f64>() / row.len() as f64
}

/// Average suite CPI for each swept configuration, replayed in parallel
/// from one set of captured traces.
fn avg_cpis(configs: &[MachineConfig], suite: &[Workload]) -> Vec<f64> {
    run_matrix(configs, suite)
        .iter()
        .map(|row| row_avg_cpi(row))
        .collect()
}

fn sweep(title: &str, values: &[u32], suite: &[Workload], apply: impl Fn(&mut MachineConfig, u32)) {
    let configs: Vec<MachineConfig> = values
        .iter()
        .map(|&v| {
            let mut cfg = base_cfg();
            apply(&mut cfg, v);
            cfg
        })
        .collect();
    let cpis = avg_cpis(&configs, suite);
    let mut t = TextTable::new([title.to_string(), "avg CPI".to_string()]);
    for (&v, &c) in values.iter().zip(&cpis) {
        t.row([v.to_string(), cpi(c)]);
    }
    println!("{}", t.render());
    let (first, last) = (cpis[0], *cpis.last().unwrap());
    println!(
        "  swing across range: {:.1}%\n",
        100.0 * (first.max(last) - first.min(last)) / first.max(last)
    );
}

fn main() {
    let scale = scale_from_args();
    let suite = fp_suite(scale);

    println!("Figure 9a: instruction-queue size (scale {scale})");
    sweep("IQ entries", &[1, 2, 3, 4, 5], &suite, |cfg, v| {
        cfg.fpu.instr_queue = v as usize;
    });

    println!("Figure 9b: load-data-queue size");
    sweep("LDQ entries", &[1, 2, 3, 4, 5], &suite, |cfg, v| {
        cfg.fpu.load_queue = v as usize;
    });

    println!("Figure 9c: FPU reorder-buffer size");
    sweep("ROB entries", &[3, 5, 7, 9, 11], &suite, |cfg, v| {
        cfg.fpu.rob_entries = v as usize;
    });

    println!("Figure 9d: add-unit latency");
    sweep("add cycles", &[1, 2, 3, 4, 5], &suite, |cfg, v| {
        cfg.fpu.add_latency = v;
    });

    println!("Figure 9e: multiply-unit latency");
    sweep("mul cycles", &[1, 2, 3, 4, 5], &suite, |cfg, v| {
        cfg.fpu.mul_latency = v;
    });

    println!("Figure 9f: divide-unit latency");
    sweep("div cycles", &[10, 15, 19, 25, 30], &suite, |cfg, v| {
        cfg.fpu.div_latency = v;
    });

    println!("Figure 9g: convert-unit latency");
    sweep("cvt cycles", &[1, 2, 3, 4, 5], &suite, |cfg, v| {
        cfg.fpu.cvt_latency = v;
    });

    println!("paper: add/mul show ~17% CPI swing over 1-5 cycles, divide ~8%");
    println!("over 10-30; conversion latency hardly matters.");

    if has_flag("--ablation") {
        println!("\nSection 5.10 ablation: removing pipeline latches");
        let mut t = TextTable::new(["configuration", "avg CPI"]);
        let mut both = base_cfg();
        both.fpu.add_pipelined = false;
        both.fpu.mul_pipelined = false;
        let cpis = avg_cpis(&[base_cfg(), both], &suite);
        let (c0, c1) = (cpis[0], cpis[1]);
        t.row(["pipelined add + mul".to_string(), cpi(c0)]);
        t.row(["non-pipelined add + mul".to_string(), cpi(c1)]);
        println!("{}", t.render());
        println!(
            "  degradation: {:.1}% (paper: less than 5%)",
            100.0 * (c1 - c0) / c0
        );
    }
}
