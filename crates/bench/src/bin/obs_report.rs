//! Observability report: regenerates the Figure 6 stall breakdown *from
//! attribution events* rather than end-of-run counters, cross-checks the
//! two against each other per kernel, and summarises the event-derived
//! latency/occupancy histograms. Optionally dumps one kernel's event
//! ring as Chrome/Perfetto trace JSON.
//!
//! ```text
//! cargo run --release -p aurora-bench --bin obs_report -- \
//!     [--scale test|small|full] [--trace-out FILE.json] [--kernel NAME]
//! ```
//!
//! The counter-based breakdown (`fig6_stall_breakdown`) and the
//! event-based one are computed by independent code paths from the same
//! charge sites, so they must agree exactly; the report asserts the
//! per-category difference is within 1% for every kernel and prints the
//! worst observed deviation (expected: 0).

use aurora_bench::harness::{cpi, fp_suite, integer_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel, Observer, SimStats, Simulator, StallCause, StallKind};
use aurora_mem::LatencyModel;
use aurora_workloads::{TraceStore, Workload};

/// One simulated cell: counter stats plus the observer that watched it.
struct Cell {
    name: &'static str,
    stats: SimStats,
    obs: Observer,
}

fn observe(cfg: &aurora_core::MachineConfig, workload: &Workload) -> Cell {
    let trace = TraceStore::global()
        .get(workload)
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()));
    let mut sim = Simulator::new(cfg);
    sim.feed_packed(&trace);
    let (stats, obs) = sim.finish_observed();
    Cell {
        name: workload.name(),
        stats,
        obs: obs.expect("cfg.observe was set"),
    }
}

fn arg_value(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

fn main() {
    let scale = scale_from_args();
    let mut suite = integer_suite(scale);
    suite.extend(fp_suite(scale));
    let kinds = [
        StallKind::ICache,
        StallKind::Load,
        StallKind::RobFull,
        StallKind::LsuBusy,
    ];

    println!("Figure 6 from attribution events, dual issue @ L17 (scale {scale})");

    let mut worst: (f64, &str, StallKind) = (0.0, "-", StallKind::ICache);
    for model in MachineModel::ALL {
        let mut cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        // The knob under test: attach the cycle-event observer.
        cfg.observe = true;

        // One observed replay per kernel, in parallel (each needs its own
        // simulator + observer, so the counter-oriented run_matrix does
        // not apply here).
        let cfg_ref = &cfg;
        let cells: Vec<Cell> = std::thread::scope(|scope| {
            let handles: Vec<_> = suite
                .iter()
                .map(|w| scope.spawn(move || observe(cfg_ref, w)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("observe thread"))
                .collect()
        });

        // Per-kernel cross-check: the event-derived per-kind cycles must
        // match the counters within 1% (they are exactly equal by
        // construction; the tolerance is the acceptance bound).
        for cell in &cells {
            let from_events = cell.obs.stalls_by_kind();
            for kind in StallKind::ALL {
                let counter = cell.stats.stalls[kind];
                let events = from_events[kind];
                let rel = (events.abs_diff(counter)) as f64 / counter.max(1) as f64;
                if rel > worst.0 {
                    worst = (rel, cell.name, kind);
                }
                assert!(
                    rel <= 0.01,
                    "{}/{model}: {kind} differs by {:.2}% (events {events}, counters {counter})",
                    cell.name,
                    100.0 * rel
                );
            }
            assert_eq!(
                cell.obs.total_stall_cycles(),
                cell.stats.stalls.total(),
                "{}/{model}: attribution-sum invariant violated",
                cell.name
            );
        }

        // The fine-grained table: per-cause CPI, suite average.
        let n = cells.len() as f64;
        let mut header = vec!["cause".to_string()];
        header.push(format!("{model} CPI"));
        header.push("share".to_string());
        let mut t = TextTable::new(header);
        let total_stall: f64 = cells
            .iter()
            .map(|c| c.obs.total_stall_cycles() as f64 / c.stats.instructions.max(1) as f64)
            .sum::<f64>()
            / n;
        for cause in StallCause::ALL {
            let v: f64 = cells
                .iter()
                .map(|c| c.obs.stall_cycles(cause) as f64 / c.stats.instructions.max(1) as f64)
                .sum::<f64>()
                / n;
            if v > 0.0 {
                t.row(vec![
                    cause.label().to_string(),
                    cpi(v),
                    format!("{:.1}%", 100.0 * v / total_stall.max(1e-12)),
                ]);
            }
        }
        let total_cpi: f64 = cells.iter().map(|c| c.stats.cpi()).sum::<f64>() / n;
        t.row(vec![
            "(total stall)".to_string(),
            cpi(total_stall),
            format!("of {} CPI", cpi(total_cpi)),
        ]);
        println!("\n{model} model — event-attributed stall CPI (15-kernel average):");
        println!("{}", t.render());

        // Coarse-category view, directly comparable with the
        // counter-based fig6_stall_breakdown output.
        let mut header = vec!["source".to_string()];
        header.extend(kinds.iter().map(|k| k.label().to_string()));
        let mut t = TextTable::new(header);
        for (label, pick) in [
            (
                "events",
                Box::new(|c: &Cell, k: StallKind| c.obs.stalls_by_kind()[k])
                    as Box<dyn Fn(&Cell, StallKind) -> u64>,
            ),
            (
                "counters",
                Box::new(|c: &Cell, k: StallKind| c.stats.stalls[k]),
            ),
        ] {
            let mut row = vec![label.to_string()];
            for kind in kinds {
                let v: f64 = cells
                    .iter()
                    .map(|c| pick(c, kind) as f64 / c.stats.instructions.max(1) as f64)
                    .sum::<f64>()
                    / n;
                row.push(cpi(v));
            }
            t.row(row);
        }
        println!("{}", t.render());

        // Histogram summaries from representative kernels.
        if model == MachineModel::Baseline {
            for cell in &cells {
                let d = cell.obs.dmiss_latency();
                let m = cell.obs.mshr_residency();
                let f = cell.obs.fpq_depth();
                if cell.name == "espresso" {
                    println!(
                        "espresso/baseline D$ miss latency: {} misses, mean {:.1}, \
                         p95 {}, max {}",
                        d.count(),
                        d.mean(),
                        d.percentile(0.95),
                        d.max()
                    );
                    println!(
                        "espresso/baseline MSHR residency: mean {:.1}, p95 {}, max {}",
                        m.mean(),
                        m.percentile(0.95),
                        m.max()
                    );
                }
                if cell.name == "nasa7" && f.count() > 0 {
                    println!(
                        "nasa7/baseline FPU queue depth: mean {:.2}, p95 {}, max {}",
                        f.mean(),
                        f.percentile(0.95),
                        f.max()
                    );
                }
            }
        }

        // Optional Perfetto dump of one kernel on the baseline model.
        if model == MachineModel::Baseline {
            if let Some(path) = arg_value("--trace-out") {
                let kernel = arg_value("--kernel").unwrap_or_else(|| "espresso".to_string());
                let cell = cells
                    .iter()
                    .find(|c| c.name == kernel)
                    .unwrap_or_else(|| panic!("unknown kernel `{kernel}`"));
                std::fs::write(&path, cell.obs.chrome_trace_json()).expect("trace file writes");
                println!(
                    "Perfetto trace of {kernel}/baseline written to {path} \
                     ({} events, {} dropped)",
                    cell.obs.len(),
                    cell.obs.dropped()
                );
            }
        }
    }

    println!(
        "\ncross-check vs fig6_stall_breakdown counters: worst deviation \
         {:.4}% ({}, {})",
        100.0 * worst.0,
        worst.1,
        worst.2
    );
}
