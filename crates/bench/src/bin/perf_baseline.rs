//! Performance baseline for the capture-once / replay-many engine.
//!
//! Times the same (configurations × workloads) sweep two ways:
//!
//! 1. **streamed** — the pre-trace-engine path: every cell re-runs the
//!    functional emulator and streams ops straight into the simulator,
//! 2. **replay** — [`run_matrix_timed`]: one packed capture per workload
//!    via the process-wide [`TraceStore`], then parallel borrowed replays.
//!
//! Asserts that the store performed exactly one capture per workload and
//! writes the measurements as hand-rolled JSON (no serde dependency) to
//! `BENCH_replay.json` (override with `--out PATH`).
//!
//! A third, single-threaded section isolates raw simulator throughput:
//! the materialised traces are replayed once with event-horizon cycle
//! skipping and once in naive walk-every-cycle mode, the statistics are
//! asserted bit-identical, and the figures land in `BENCH_sim.json`
//! (override with `--sim-out PATH`). The same section then lowers the
//! traces into basic-block superinstructions and times
//! [`replay_blocks`] — with the fast path enabled and with the
//! `block_replay` knob off — asserting every mode bit-identical to the
//! per-op replay before recording `block_instr_per_sec` and
//! `block_speedup_vs_per_op`.
//!
//! A fourth section benchmarks **sampled** simulation
//! ([`run_sampled_digest`], docs/MODEL.md "Sampled simulation"): every
//! kernel × model cell is estimated from detailed windows over a
//! functional-warming fast-forward and validated against the
//! full-detail ground truth (itself asserted bit-identical to the
//! replay grid). Wall-clock for both modes is measured over interleaved
//! rounds with the median per-round speedup reported, and the per-cell
//! CPI errors, 95% confidence intervals and the suite-mean accuracy
//! gate land in `BENCH_sampled.json` (override with
//! `--sampled-out PATH`).
//!
//! ```text
//! cargo run --release -p aurora-bench --bin perf_baseline -- [--scale test] [--out FILE]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use aurora_bench::harness::{
    fp_suite, integer_suite, run, run_matrix_timed, scale_from_args, sweep_threads,
};
use aurora_core::{
    replay, replay_blocks, run_sampled_digest, IssueWidth, MachineConfig, MachineModel,
    SampledStats, SamplingConfig, SimStats, WarmDigest,
};
use aurora_isa::BlockTrace;
use aurora_mem::LatencyModel;
use aurora_workloads::{TraceStore, Workload};

/// A small but heterogeneous config sweep: every machine model at both
/// issue widths, as in the Figure 4 grid.
fn sweep_configs() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for issue in [IssueWidth::Single, IssueWidth::Dual] {
        for model in MachineModel::ALL {
            out.push(model.config(issue, LatencyModel::Fixed(17)));
        }
    }
    out
}

/// Baseline dual-issue config for the per-op replay modes, with the
/// observer and event-horizon knobs set per mode.
fn per_op_cfg(observe: bool, cycle_skip: bool) -> MachineConfig {
    let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    cfg.observe = observe;
    cfg.cycle_skip = cycle_skip;
    cfg
}

/// Baseline dual-issue config for the block engine, with the
/// superinstruction fast path toggled per mode.
fn block_cfg(block_replay: bool) -> MachineConfig {
    let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    cfg.block_replay = block_replay;
    cfg
}

fn join_counts(xs: &[usize]) -> String {
    let strs: Vec<String> = xs.iter().map(usize::to_string).collect();
    strs.join(", ")
}

fn join_rates(xs: &[f64]) -> String {
    let strs: Vec<String> = xs.iter().map(|x| format!("{x:.2}")).collect();
    strs.join(", ")
}

fn main() {
    let scale = scale_from_args();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--out")
            .map_or_else(|| "BENCH_replay.json".to_string(), |p| p[1].clone())
    };

    let mut suite: Vec<Workload> = integer_suite(scale);
    suite.extend(fp_suite(scale));
    let configs = sweep_configs();
    let cells = configs.len() * suite.len();
    println!(
        "perf_baseline: {} configs x {} workloads = {cells} cells at scale {scale}",
        configs.len(),
        suite.len()
    );

    // Streamed path: re-emulate the kernel for every cell.
    let t0 = Instant::now();
    let mut streamed_instructions: u64 = 0;
    for cfg in &configs {
        for w in &suite {
            streamed_instructions += run(cfg, w).instructions;
        }
    }
    let stream_s = t0.elapsed().as_secs_f64();

    // Warm the trace store so the timed region below measures replay
    // alone: capture-once/replay-many means the one capture per workload
    // amortises to zero across sweeps, so emulator time does not belong
    // in a replay-throughput figure. It is reported separately.
    let t_cap = Instant::now();
    for w in &suite {
        w.capture().expect("capture workload");
    }
    let capture_s = t_cap.elapsed().as_secs_f64();

    // Replay path: replay the grid from the materialised traces through
    // the real worker pool. Timer noise on this host is large relative
    // to the run (observed ~1.5x swings between identical binaries), so
    // report the minimum of five runs — the standard estimator for a
    // lower-bounded measurement — and keep that run's pool profile.
    let mut replay_s = f64::INFINITY;
    let (mut grid, mut metrics) = run_matrix_timed(&configs, &suite); // warm-up (untimed)
    for _ in 0..5 {
        let t1 = Instant::now();
        let (g, m) = run_matrix_timed(&configs, &suite);
        let elapsed = t1.elapsed().as_secs_f64();
        if elapsed < replay_s {
            replay_s = elapsed;
            grid = g;
            metrics = m;
        }
    }

    let store = TraceStore::global();
    // Each workload is materialised exactly once: a fresh capture, a
    // `.trc` disk hit, or a `.blk` disk hit (which skips the packed
    // trace entirely — `get_blocks` never touches `get` on that path).
    let materialised = store.captures() + store.disk_hits() + store.block_disk_hits();
    assert_eq!(
        materialised,
        suite.len() as u64,
        "expected exactly one capture (or disk hit) per workload, got {} for {}",
        materialised,
        suite.len()
    );

    let replayed_instructions: u64 = grid.iter().flatten().map(|s| s.instructions).sum();
    assert_eq!(
        replayed_instructions, streamed_instructions,
        "paths must simulate the same work"
    );

    // The pool size is what the sweep *asked for* (never more threads
    // than grid cells); `parallelism` is what the drain *achieved* —
    // summed per-thread busy time over wall time, measured by
    // run_matrix_timed on the best run.
    let threads = sweep_threads(cells);
    // A pool smaller than the machine silently halves the headline
    // speedup; on a multi-core host that is a sizing bug, not noise. A
    // 1-core host (minimal CI) cannot distinguish sizing from hardware,
    // so it only warns.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores > 1 {
        assert_eq!(
            threads,
            cores.min(cells),
            "pool_threads must match available cores (capped at grid cells): \
             pool {threads}, cores {cores}, cells {cells}"
        );
    } else {
        println!(
            "warning: 1-core host — cannot verify pool sizing against hardware \
             (pool of {threads})"
        );
    }
    let achieved = metrics.achieved_parallelism();
    let speedup = stream_s / replay_s;
    let stream_ips = streamed_instructions as f64 / stream_s;
    let replay_ips = replayed_instructions as f64 / replay_s;
    println!("streamed: {stream_s:.3} s  ({stream_ips:.0} instr/s)");
    println!("capture:  {capture_s:.3} s  (once per workload, amortised across sweeps)");
    println!("replay:   {replay_s:.3} s  ({replay_ips:.0} instr/s, best of 5)");
    println!(
        "speedup:  {speedup:.2}x — pool of {threads}, achieved parallelism {achieved:.2}  \
         (captures: {}, disk hits: {}, block disk hits: {})",
        store.captures(),
        store.disk_hits(),
        store.block_disk_hits()
    );
    if threads == 1 {
        // Streamed cost per cell is emulate+simulate; replay drops the
        // emulate term but the pool cannot overlap cells, so the
        // single-core ceiling is (emulate+simulate)/simulate.
        println!("note: single core — replay's thread pool cannot parallelise the grid");
    }

    // Sim-throughput section: single-threaded pure replay (the traces
    // are already materialised, so this isolates simulator speed from
    // capture and pool effects), once with event-horizon cycle skipping
    // and once in the naive walk-every-cycle reference mode. The two
    // must agree bit-for-bit on every kernel's statistics.
    let sim_out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--sim-out")
            .map_or_else(|| "BENCH_sim.json".to_string(), |p| p[1].clone())
    };
    let traces: Vec<_> = suite
        .iter()
        .map(|w| w.capture().expect("trace already materialised"))
        .collect();
    let mut sim_json = String::from("{\n");
    let _ = writeln!(sim_json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(sim_json, "  \"config\": \"baseline/dual-issue\",");

    // Lower each packed trace into basic-block superinstructions up
    // front (timed once — lowering is capture-side work, amortised
    // across every sweep that reuses the blocks).
    let t_lower = Instant::now();
    let blocks: Vec<BlockTrace> = traces.iter().map(BlockTrace::lower).collect();
    let lower_s = t_lower.elapsed().as_secs_f64();
    let static_ops: usize = blocks.iter().map(BlockTrace::static_ops).sum();
    let dynamic_ops: u64 = blocks.iter().map(BlockTrace::len).sum();
    let reuse = dynamic_ops as f64 / static_ops.max(1) as f64;
    println!(
        "sim/lower: {lower_s:.3} s  ({static_ops} static ops for {dynamic_ops} dynamic, {reuse:.0}x reuse)"
    );

    // Five modes over the same work: per-op replay with event-horizon
    // skipping, the naive walk-every-cycle reference, the observed
    // (cycle-event ring) replay, and the block engine with the fast
    // path on and off. Rounds are interleaved — every mode runs once
    // per round and each keeps its best time — so slow drift in host
    // clock speed lands on all modes alike instead of biasing whichever
    // section ran in the fast phase. All five must agree bit-for-bit
    // on every kernel's statistics.
    type ModeFn<'a> = Box<dyn Fn() -> Vec<aurora_core::SimStats> + 'a>;
    let traces = &traces;
    let blocks = &blocks;
    let modes: Vec<(&str, ModeFn)> = vec![
        ("skip", {
            let cfg = per_op_cfg(false, true);
            Box::new(move || traces.iter().map(|tr| replay(&cfg, tr)).collect())
        }),
        ("naive", {
            let cfg = per_op_cfg(false, false);
            Box::new(move || traces.iter().map(|tr| replay(&cfg, tr)).collect())
        }),
        ("observed", {
            let cfg = per_op_cfg(true, true);
            Box::new(move || traces.iter().map(|tr| replay(&cfg, tr)).collect())
        }),
        ("block", {
            let cfg = block_cfg(true);
            Box::new(move || blocks.iter().map(|b| replay_blocks(&cfg, b)).collect())
        }),
        ("block_off", {
            let cfg = block_cfg(false);
            Box::new(move || blocks.iter().map(|b| replay_blocks(&cfg, b)).collect())
        }),
    ];
    let mut secs = vec![f64::INFINITY; modes.len()];
    let mut stats = vec![Vec::new(); modes.len()];
    for _round in 0..5 {
        for (m, (_, run_mode)) in modes.iter().enumerate() {
            let t = Instant::now();
            stats[m] = run_mode();
            secs[m] = secs[m].min(t.elapsed().as_secs_f64());
        }
    }
    let skip_stats = stats[0].clone();
    for (m, (label, _)) in modes.iter().enumerate() {
        assert_eq!(
            &stats[m], &skip_stats,
            "{label} stats diverged from per-op skip replay"
        );
    }
    let instrs: u64 = skip_stats.iter().map(|s| s.instructions).sum();
    let mode_results: Vec<(&str, f64, f64)> = modes
        .iter()
        .zip(&secs)
        .map(|((label, _), &s)| (*label, s, instrs as f64 / s))
        .collect();
    for (label, s, ips) in &mode_results[..2] {
        println!("sim/{label}:  {s:.3} s  ({ips:.0} instr/s)");
    }
    let sim_speedup = mode_results[0].2 / mode_results[1].2;
    println!("sim/skip-vs-naive: {sim_speedup:.2}x, stats bit-identical");
    let observe_secs = mode_results[2].1;
    let observe_overhead = observe_secs / mode_results[0].1 - 1.0;
    println!(
        "sim/observed: {observe_secs:.3} s  ({:+.1}% vs unobserved, stats bit-identical)",
        100.0 * observe_overhead
    );
    let block_modes = &mode_results[3..5];
    for (label, s, ips) in block_modes {
        println!("sim/{label}: {s:.3} s  ({ips:.0} instr/s)");
    }
    let block_speedup = block_modes[0].2 / mode_results[0].2;
    println!("sim/block-vs-per-op: {block_speedup:.2}x, stats bit-identical");
    let _ = writeln!(sim_json, "  \"instructions\": {instrs},");
    for (label, secs, ips) in &mode_results[..2] {
        let _ = writeln!(sim_json, "  \"{label}_seconds\": {secs:.6},");
        let _ = writeln!(sim_json, "  \"{label}_instr_per_sec\": {ips:.0},");
    }
    let _ = writeln!(sim_json, "  \"skip_speedup_vs_naive\": {sim_speedup:.3},");
    let _ = writeln!(sim_json, "  \"observed_seconds\": {observe_secs:.6},");
    let _ = writeln!(
        sim_json,
        "  \"observe_overhead_pct\": {:.1},",
        100.0 * observe_overhead
    );
    let _ = writeln!(sim_json, "  \"block_lower_seconds\": {lower_s:.6},");
    let _ = writeln!(sim_json, "  \"block_static_ops\": {static_ops},");
    let _ = writeln!(sim_json, "  \"block_reuse_factor\": {reuse:.1},");
    for (label, secs, ips) in block_modes {
        let _ = writeln!(sim_json, "  \"{label}_seconds\": {secs:.6},");
        let _ = writeln!(sim_json, "  \"{label}_instr_per_sec\": {ips:.0},");
    }
    let _ = writeln!(
        sim_json,
        "  \"block_speedup_vs_per_op\": {block_speedup:.3},"
    );
    let _ = writeln!(sim_json, "  \"stats_bit_identical\": true");
    sim_json.push_str("}\n");
    std::fs::write(&sim_out_path, &sim_json).expect("write sim benchmark json");
    println!("wrote {sim_out_path}");

    // Sampled-simulation section: SMARTS-style detailed windows over a
    // functional-warming fast-forward, validated per kernel × model
    // against full-detail ground truth and timed against full-detail
    // replay of the same traces. Lands in `BENCH_sampled.json`
    // (override with `--sampled-out PATH`).
    let sampled_out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--sampled-out")
            .map_or_else(|| "BENCH_sampled.json".to_string(), |p| p[1].clone())
    };
    let sampling = SamplingConfig::recommended();
    let model_cfgs: Vec<(MachineModel, MachineConfig)> = MachineModel::ALL
        .into_iter()
        .map(|m| (m, m.config(IssueWidth::Dual, LatencyModel::Fixed(17))))
        .collect();
    // Warming digests are trace artifacts like the captures themselves
    // (model-independent — every preset shares one line size), so they
    // are built once outside the timed region, exactly as trace capture
    // is excluded from both modes' timings.
    let digests: Vec<WarmDigest> = traces
        .iter()
        .map(|tr| WarmDigest::build(tr.records(), model_cfgs[0].1.line_bytes))
        .collect();
    // Interleaved rounds, like the sim section: each round runs every
    // (model, kernel) cell once in full detail and once sampled
    // back-to-back, so the speedup of a round compares both modes under
    // the same instantaneous host conditions. The headline speedup is
    // the median per-round ratio — host-load drift *between* rounds
    // moves both numerators and denominators together and cancels,
    // where independent min-of-N for each mode can pair a lucky round
    // of one mode with an unlucky round of the other.
    let mut rounds: Vec<(f64, f64)> = Vec::new();
    let mut truth: Vec<Vec<SimStats>> = Vec::new();
    let mut sampled: Vec<Vec<SampledStats>> = Vec::new();
    for _ in 0..5 {
        let t = Instant::now();
        truth = model_cfgs
            .iter()
            .map(|(_, cfg)| traces.iter().map(|tr| replay(cfg, tr)).collect())
            .collect();
        let round_detail = t.elapsed().as_secs_f64();
        let t = Instant::now();
        sampled = model_cfgs
            .iter()
            .map(|(_, cfg)| {
                traces
                    .iter()
                    .zip(&digests)
                    .map(|(tr, dg)| run_sampled_digest(cfg, &sampling, tr.records(), dg))
                    .collect()
            })
            .collect();
        rounds.push((round_detail, t.elapsed().as_secs_f64()));
    }
    rounds.sort_by(|a, b| (a.0 / a.1).total_cmp(&(b.0 / b.1)));
    // Odd round count: the midpoint is the median-ratio round, and the
    // reported seconds come from that same round so the JSON's
    // detailed/sampled seconds reproduce the JSON's speedup.
    let (detail_secs, sampled_secs) = rounds[rounds.len() / 2];
    // The ground truth must be the very stats the sweep grid produced:
    // dual-issue rows of sweep_configs are models 3..6 in ALL order.
    for (mi, row) in truth.iter().enumerate() {
        assert_eq!(
            row,
            &grid[3 + mi],
            "full-detail ground truth diverged from the sweep grid"
        );
    }
    let total_instrs: u64 = traces.iter().map(|tr| tr.len() as u64).sum();
    let sampled_work = total_instrs * model_cfgs.len() as u64;
    let detail_ips = sampled_work as f64 / detail_secs;
    let sampled_ips = sampled_work as f64 / sampled_secs;
    let sampled_speedup = detail_secs / sampled_secs;
    let mut max_err_pct = 0.0f64;
    let mut sum_err_pct = 0.0f64;
    let mut sum_rel_ci = 0.0f64;
    let mut cell_rows = String::new();
    let cell_count = model_cfgs.len() * suite.len();
    for (mi, (model, _)) in model_cfgs.iter().enumerate() {
        for (wi, w) in suite.iter().enumerate() {
            let exact = &truth[mi][wi];
            let est = &sampled[mi][wi];
            let err_pct = 100.0 * (est.cpi - exact.cpi()).abs() / exact.cpi();
            max_err_pct = max_err_pct.max(err_pct);
            sum_err_pct += err_pct;
            sum_rel_ci += est.relative_ci();
            let _ = writeln!(
                cell_rows,
                "    {{\"kernel\": \"{}\", \"model\": \"{model}\", \
                 \"true_cpi\": {:.6}, \"sampled_cpi\": {:.6}, \
                 \"cpi_error_pct\": {err_pct:.3}, \"ci_half_width\": {:.6}, \
                 \"windows\": {}, \"detail_fraction\": {:.4}}}{}",
                w.name(),
                exact.cpi(),
                est.cpi,
                est.ci_half_width,
                est.windows,
                est.detail_fraction(),
                if mi * suite.len() + wi + 1 == cell_count {
                    ""
                } else {
                    ","
                }
            );
        }
    }
    let mean_err_pct = sum_err_pct / cell_count as f64;
    let mean_rel_ci_pct = 100.0 * sum_rel_ci / cell_count as f64;
    // The accuracy gate is the suite-mean CPI error — the aggregate
    // SMARTS reports. Individual cells can exceed it from honest
    // sampling variance (their CIs cover the truth and are published
    // per cell below); the mean is what the estimator promises.
    let within_2pct = mean_err_pct <= 2.0;
    println!(
        "sampled:  {sampled_secs:.3} s vs detailed {detail_secs:.3} s — {sampled_speedup:.2}x \
         ({sampled_ips:.0} vs {detail_ips:.0} effective instr/s)"
    );
    println!(
        "sampled:  CPI error mean {mean_err_pct:.2}% / max {max_err_pct:.2}% \
         (95% CI mean ±{mean_rel_ci_pct:.2}%) over {cell_count} kernel×model cells \
         [{sampling}]"
    );
    let mut sampled_json = String::from("{\n");
    let _ = writeln!(sampled_json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(sampled_json, "  \"sampling\": \"{sampling}\",");
    let _ = writeln!(sampled_json, "  \"kernels\": {},", suite.len());
    let _ = writeln!(sampled_json, "  \"models\": {},", model_cfgs.len());
    let _ = writeln!(sampled_json, "  \"instructions_per_mode\": {sampled_work},");
    let _ = writeln!(sampled_json, "  \"detailed_seconds\": {detail_secs:.6},");
    let _ = writeln!(sampled_json, "  \"sampled_seconds\": {sampled_secs:.6},");
    let _ = writeln!(
        sampled_json,
        "  \"detailed_effective_instr_per_sec\": {detail_ips:.0},"
    );
    let _ = writeln!(
        sampled_json,
        "  \"sampled_effective_instr_per_sec\": {sampled_ips:.0},"
    );
    let _ = writeln!(sampled_json, "  \"speedup\": {sampled_speedup:.3},");
    let _ = writeln!(sampled_json, "  \"mean_cpi_error_pct\": {mean_err_pct:.3},");
    let _ = writeln!(sampled_json, "  \"max_cpi_error_pct\": {max_err_pct:.3},");
    let _ = writeln!(
        sampled_json,
        "  \"mean_relative_ci_pct\": {mean_rel_ci_pct:.3},"
    );
    let _ = writeln!(
        sampled_json,
        "  \"mean_cpi_error_within_2pct\": {within_2pct},"
    );
    let _ = writeln!(sampled_json, "  \"cells\": [");
    sampled_json.push_str(&cell_rows);
    sampled_json.push_str("  ]\n}\n");
    std::fs::write(&sampled_out_path, &sampled_json).expect("write sampled benchmark json");
    println!("wrote {sampled_out_path}");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"configs\": {},", configs.len());
    let _ = writeln!(json, "  \"workloads\": {},", suite.len());
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"streamed_seconds\": {stream_s:.6},");
    let _ = writeln!(json, "  \"capture_seconds\": {capture_s:.6},");
    let _ = writeln!(json, "  \"replay_seconds\": {replay_s:.6},");
    let _ = writeln!(json, "  \"replay_runs\": 5,");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"pool_threads\": {threads},");
    let _ = writeln!(json, "  \"parallelism\": {achieved:.3},");
    let _ = writeln!(
        json,
        "  \"drain_wall_seconds\": {:.6},",
        metrics.wall_seconds
    );
    let _ = writeln!(
        json,
        "  \"per_thread_cells\": [{}],",
        join_counts(&metrics.per_thread_cells)
    );
    let _ = writeln!(
        json,
        "  \"per_thread_cells_per_sec\": [{}],",
        join_rates(&metrics.per_thread_cells_per_sec())
    );
    let _ = writeln!(json, "  \"captures\": {},", store.captures());
    let _ = writeln!(json, "  \"disk_hits\": {},", store.disk_hits());
    let _ = writeln!(json, "  \"block_disk_hits\": {},", store.block_disk_hits());
    let _ = writeln!(
        json,
        "  \"instructions_per_path\": {streamed_instructions},"
    );
    let _ = writeln!(json, "  \"streamed_instr_per_sec\": {stream_ips:.0},");
    let _ = writeln!(json, "  \"replay_instr_per_sec\": {replay_ips:.0}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
