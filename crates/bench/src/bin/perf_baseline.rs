//! Performance baseline for the capture-once / replay-many engine.
//!
//! Times the same (configurations × workloads) sweep two ways:
//!
//! 1. **streamed** — the pre-trace-engine path: every cell re-runs the
//!    functional emulator and streams ops straight into the simulator,
//! 2. **replay** — [`run_matrix`]: one packed capture per workload via
//!    the process-wide [`TraceStore`], then parallel borrowed replays.
//!
//! Asserts that the store performed exactly one capture per workload and
//! writes the measurements as hand-rolled JSON (no serde dependency) to
//! `BENCH_replay.json` (override with `--out PATH`).
//!
//! A third, single-threaded section isolates raw simulator throughput:
//! the materialised traces are replayed once with event-horizon cycle
//! skipping and once in naive walk-every-cycle mode, the statistics are
//! asserted bit-identical, and the figures land in `BENCH_sim.json`
//! (override with `--sim-out PATH`).
//!
//! ```text
//! cargo run --release -p aurora-bench --bin perf_baseline -- [--scale test] [--out FILE]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use aurora_bench::harness::{fp_suite, integer_suite, run, run_matrix, scale_from_args};
use aurora_core::{replay, IssueWidth, MachineConfig, MachineModel};
use aurora_mem::LatencyModel;
use aurora_workloads::{TraceStore, Workload};

/// A small but heterogeneous config sweep: every machine model at both
/// issue widths, as in the Figure 4 grid.
fn sweep_configs() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for issue in [IssueWidth::Single, IssueWidth::Dual] {
        for model in MachineModel::ALL {
            out.push(model.config(issue, LatencyModel::Fixed(17)));
        }
    }
    out
}

fn main() {
    let scale = scale_from_args();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--out")
            .map_or_else(|| "BENCH_replay.json".to_string(), |p| p[1].clone())
    };

    let mut suite: Vec<Workload> = integer_suite(scale);
    suite.extend(fp_suite(scale));
    let configs = sweep_configs();
    let cells = configs.len() * suite.len();
    println!(
        "perf_baseline: {} configs x {} workloads = {cells} cells at scale {scale}",
        configs.len(),
        suite.len()
    );

    // Streamed path: re-emulate the kernel for every cell.
    let t0 = Instant::now();
    let mut streamed_instructions: u64 = 0;
    for cfg in &configs {
        for w in &suite {
            streamed_instructions += run(cfg, w).instructions;
        }
    }
    let stream_s = t0.elapsed().as_secs_f64();

    // Warm the trace store so the timed region below measures replay
    // alone: capture-once/replay-many means the one capture per workload
    // amortises to zero across sweeps, so emulator time does not belong
    // in a replay-throughput figure. It is reported separately.
    let t_cap = Instant::now();
    for w in &suite {
        w.capture().expect("capture workload");
    }
    let capture_s = t_cap.elapsed().as_secs_f64();

    // Replay path: replay the grid from the materialised traces. Timer
    // noise on this host is large relative to the run (observed ~1.5x
    // swings between identical binaries), so report the minimum of five
    // runs — the standard estimator for a lower-bounded measurement.
    let mut replay_s = f64::INFINITY;
    let mut grid = run_matrix(&configs, &suite); // warm-up (untimed)
    for _ in 0..5 {
        let t1 = Instant::now();
        grid = run_matrix(&configs, &suite);
        replay_s = replay_s.min(t1.elapsed().as_secs_f64());
    }

    let store = TraceStore::global();
    let materialised = store.captures() + store.disk_hits();
    assert_eq!(
        materialised,
        suite.len() as u64,
        "expected exactly one capture (or disk hit) per workload, got {} for {}",
        materialised,
        suite.len()
    );

    let replayed_instructions: u64 = grid.iter().flatten().map(|s| s.instructions).sum();
    assert_eq!(
        replayed_instructions, streamed_instructions,
        "paths must simulate the same work"
    );

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = stream_s / replay_s;
    let stream_ips = streamed_instructions as f64 / stream_s;
    let replay_ips = replayed_instructions as f64 / replay_s;
    println!("streamed: {stream_s:.3} s  ({stream_ips:.0} instr/s)");
    println!("capture:  {capture_s:.3} s  (once per workload, amortised across sweeps)");
    println!("replay:   {replay_s:.3} s  ({replay_ips:.0} instr/s, best of 5)");
    println!(
        "speedup:  {speedup:.2}x on {threads} core(s)  (captures: {}, disk hits: {})",
        store.captures(),
        store.disk_hits()
    );
    if threads == 1 {
        // Streamed cost per cell is emulate+simulate; replay drops the
        // emulate term but the pool cannot overlap cells, so the
        // single-core ceiling is (emulate+simulate)/simulate.
        println!("note: single core — replay's thread pool cannot parallelise the grid");
    }

    // Sim-throughput section: single-threaded pure replay (the traces
    // are already materialised, so this isolates simulator speed from
    // capture and pool effects), once with event-horizon cycle skipping
    // and once in the naive walk-every-cycle reference mode. The two
    // must agree bit-for-bit on every kernel's statistics.
    let sim_out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--sim-out")
            .map_or_else(|| "BENCH_sim.json".to_string(), |p| p[1].clone())
    };
    let traces: Vec<_> = suite
        .iter()
        .map(|w| w.capture().expect("trace already materialised"))
        .collect();
    let mut sim_json = String::from("{\n");
    let _ = writeln!(sim_json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(sim_json, "  \"config\": \"baseline/dual-issue\",");
    let mut mode_results = Vec::new();
    for cycle_skip in [true, false] {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.cycle_skip = cycle_skip;
        let mut secs = f64::INFINITY;
        let mut stats = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            stats = traces.iter().map(|tr| replay(&cfg, tr)).collect();
            secs = secs.min(t.elapsed().as_secs_f64());
        }
        let instrs: u64 = stats.iter().map(|s| s.instructions).sum();
        let ips = instrs as f64 / secs;
        let label = if cycle_skip { "skip" } else { "naive" };
        println!("sim/{label}:  {secs:.3} s  ({ips:.0} instr/s)");
        mode_results.push((label, secs, ips, stats));
    }
    let (skip_stats, naive_stats) = (&mode_results[0].3, &mode_results[1].3);
    assert_eq!(
        skip_stats, naive_stats,
        "cycle-skip stats diverged from naive"
    );
    let sim_speedup = mode_results[0].2 / mode_results[1].2;
    println!("sim/skip-vs-naive: {sim_speedup:.2}x, stats bit-identical");

    // Observer-overhead section: the same single-threaded replays with
    // the cycle-event observer attached. `observe = true` pays for ring
    // writes and histogram updates; the statistics must stay
    // bit-identical to the unobserved run (the observer is read-only
    // with respect to machine state).
    let observe_secs = {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.observe = true;
        let mut secs = f64::INFINITY;
        let mut stats = Vec::new();
        for _ in 0..3 {
            let t = Instant::now();
            stats = traces.iter().map(|tr| replay(&cfg, tr)).collect();
            secs = secs.min(t.elapsed().as_secs_f64());
        }
        assert_eq!(
            &stats, skip_stats,
            "observe=true stats diverged from observe=false"
        );
        secs
    };
    let observe_overhead = observe_secs / mode_results[0].1 - 1.0;
    println!(
        "sim/observed: {observe_secs:.3} s  ({:+.1}% vs unobserved, stats bit-identical)",
        100.0 * observe_overhead
    );
    let _ = writeln!(
        sim_json,
        "  \"instructions\": {},",
        skip_stats.iter().map(|s| s.instructions).sum::<u64>()
    );
    for (label, secs, ips, _) in &mode_results {
        let _ = writeln!(sim_json, "  \"{label}_seconds\": {secs:.6},");
        let _ = writeln!(sim_json, "  \"{label}_instr_per_sec\": {ips:.0},");
    }
    let _ = writeln!(sim_json, "  \"skip_speedup_vs_naive\": {sim_speedup:.3},");
    let _ = writeln!(sim_json, "  \"observed_seconds\": {observe_secs:.6},");
    let _ = writeln!(
        sim_json,
        "  \"observe_overhead_pct\": {:.1},",
        100.0 * observe_overhead
    );
    let _ = writeln!(sim_json, "  \"stats_bit_identical\": true");
    sim_json.push_str("}\n");
    std::fs::write(&sim_out_path, &sim_json).expect("write sim benchmark json");
    println!("wrote {sim_out_path}");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"configs\": {},", configs.len());
    let _ = writeln!(json, "  \"workloads\": {},", suite.len());
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"streamed_seconds\": {stream_s:.6},");
    let _ = writeln!(json, "  \"capture_seconds\": {capture_s:.6},");
    let _ = writeln!(json, "  \"replay_seconds\": {replay_s:.6},");
    let _ = writeln!(json, "  \"replay_runs\": 5,");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"parallelism\": {threads},");
    let _ = writeln!(json, "  \"captures\": {},", store.captures());
    let _ = writeln!(json, "  \"disk_hits\": {},", store.disk_hits());
    let _ = writeln!(
        json,
        "  \"instructions_per_path\": {streamed_instructions},"
    );
    let _ = writeln!(json, "  \"streamed_instr_per_sec\": {stream_ips:.0},");
    let _ = writeln!(json, "  \"replay_instr_per_sec\": {replay_ips:.0}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
