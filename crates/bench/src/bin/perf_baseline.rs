//! Performance baseline for the capture-once / replay-many engine.
//!
//! Times the same (configurations × workloads) sweep two ways:
//!
//! 1. **streamed** — the pre-trace-engine path: every cell re-runs the
//!    functional emulator and streams ops straight into the simulator,
//! 2. **replay** — [`run_matrix`]: one packed capture per workload via
//!    the process-wide [`TraceStore`], then parallel borrowed replays.
//!
//! Asserts that the store performed exactly one capture per workload and
//! writes the measurements as hand-rolled JSON (no serde dependency) to
//! `BENCH_replay.json` (override with `--out PATH`).
//!
//! ```text
//! cargo run --release -p aurora-bench --bin perf_baseline -- [--scale test] [--out FILE]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use aurora_bench::harness::{fp_suite, integer_suite, run, run_matrix, scale_from_args};
use aurora_core::{IssueWidth, MachineConfig, MachineModel};
use aurora_mem::LatencyModel;
use aurora_workloads::{TraceStore, Workload};

/// A small but heterogeneous config sweep: every machine model at both
/// issue widths, as in the Figure 4 grid.
fn sweep_configs() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for issue in [IssueWidth::Single, IssueWidth::Dual] {
        for model in MachineModel::ALL {
            out.push(model.config(issue, LatencyModel::Fixed(17)));
        }
    }
    out
}

fn main() {
    let scale = scale_from_args();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--out")
            .map_or_else(|| "BENCH_replay.json".to_string(), |p| p[1].clone())
    };

    let mut suite: Vec<Workload> = integer_suite(scale);
    suite.extend(fp_suite(scale));
    let configs = sweep_configs();
    let cells = configs.len() * suite.len();
    println!(
        "perf_baseline: {} configs x {} workloads = {cells} cells at scale {scale}",
        configs.len(),
        suite.len()
    );

    // Streamed path: re-emulate the kernel for every cell.
    let t0 = Instant::now();
    let mut streamed_instructions: u64 = 0;
    for cfg in &configs {
        for w in &suite {
            streamed_instructions += run(cfg, w).instructions;
        }
    }
    let stream_s = t0.elapsed().as_secs_f64();

    // Replay path: capture once per workload, replay the grid in parallel.
    let t1 = Instant::now();
    let grid = run_matrix(&configs, &suite);
    let replay_s = t1.elapsed().as_secs_f64();

    let store = TraceStore::global();
    let materialised = store.captures() + store.disk_hits();
    assert_eq!(
        materialised,
        suite.len() as u64,
        "expected exactly one capture (or disk hit) per workload, got {} for {}",
        materialised,
        suite.len()
    );

    let replayed_instructions: u64 =
        grid.iter().flatten().map(|s| s.instructions).sum();
    assert_eq!(replayed_instructions, streamed_instructions, "paths must simulate the same work");

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = stream_s / replay_s;
    let stream_ips = streamed_instructions as f64 / stream_s;
    let replay_ips = replayed_instructions as f64 / replay_s;
    println!("streamed: {stream_s:.3} s  ({stream_ips:.0} instr/s)");
    println!("replay:   {replay_s:.3} s  ({replay_ips:.0} instr/s)");
    println!("speedup:  {speedup:.2}x on {threads} core(s)  (captures: {}, disk hits: {})", store.captures(), store.disk_hits());
    if threads == 1 {
        // Streamed cost per cell is emulate+simulate; replay drops the
        // emulate term but the pool cannot overlap cells, so the
        // single-core ceiling is (emulate+simulate)/simulate.
        println!("note: single core — replay's thread pool cannot parallelise the grid");
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale}\",");
    let _ = writeln!(json, "  \"configs\": {},", configs.len());
    let _ = writeln!(json, "  \"workloads\": {},", suite.len());
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"streamed_seconds\": {stream_s:.6},");
    let _ = writeln!(json, "  \"replay_seconds\": {replay_s:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"parallelism\": {threads},");
    let _ = writeln!(json, "  \"captures\": {},", store.captures());
    let _ = writeln!(json, "  \"disk_hits\": {},", store.disk_hits());
    let _ = writeln!(json, "  \"instructions_per_path\": {streamed_instructions},");
    let _ = writeln!(json, "  \"streamed_instr_per_sec\": {stream_ips:.0},");
    let _ = writeln!(json, "  \"replay_instr_per_sec\": {replay_ips:.0}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
