//! Calibration report: per-benchmark hit rates and CPI on each model,
//! compared against the paper's §5 anchor numbers (base model I$ 96.5%,
//! D$ 95.4%).

use aurora_bench::harness::{cpi, integer_suite, pct, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel, StallKind};
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let mut t = TextTable::new([
            "bench", "CPI", "I$%", "D$%", "Ipf%", "Dpf%", "WC%", "traffic", "fold%", "dual%",
            "stICa", "stLd", "stRob", "stLsu",
        ]);
        for (name, s) in run_suite(&cfg, &suite) {
            let folds =
                s.folded_branches as f64 / (s.folded_branches + s.unfolded_branches).max(1) as f64;
            t.row([
                name.to_string(),
                cpi(s.cpi()),
                pct(s.icache.hit_rate()),
                pct(s.dcache.hit_rate()),
                pct(s.istream.hit_rate()),
                pct(s.dstream.hit_rate()),
                pct(s.write_cache.hit_rate()),
                pct(s.write_cache.traffic_ratio()),
                pct(folds),
                pct(s.dual_issue_rate()),
                cpi(s.stall_cpi(StallKind::ICache)),
                cpi(s.stall_cpi(StallKind::Load)),
                cpi(s.stall_cpi(StallKind::RobFull)),
                cpi(s.stall_cpi(StallKind::LsuBusy)),
            ]);
        }
        println!("== {model} (dual, L17, scale {scale}) ==");
        println!("{}", t.render());
    }
}
