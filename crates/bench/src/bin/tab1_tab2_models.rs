//! Tables 1 and 2: the three machine models and the RBE element costs,
//! printed from the configuration presets and cost model so any drift
//! between code and paper is visible.

use aurora_bench::harness::TextTable;
use aurora_core::{FpuConfig, IssueWidth, MachineModel};
use aurora_cost::{
    add_unit_cost, convert_unit_cost, divide_unit_cost, fpu_cost, icache_cost, ipu_cost,
    multiply_unit_cost, INTEGER_PIPELINE, MSHR_ENTRY, PREFETCH_LINE, ROB_ENTRY, WRITE_CACHE_LINE,
};
use aurora_mem::LatencyModel;

fn main() {
    println!("Table 1: the three machine models");
    let mut t1 = TextTable::new(["model", "I$", "D$", "WC lines", "ROB", "prefetch", "MSHR"]);
    for m in MachineModel::ALL {
        let c = m.config(IssueWidth::Single, LatencyModel::Fixed(17));
        t1.row([
            m.to_string(),
            format!("{} KB", c.icache_bytes / 1024),
            format!("{} KB", c.dcache_bytes / 1024),
            c.write_cache_lines.to_string(),
            c.rob_entries.to_string(),
            c.prefetch_buffers.to_string(),
            c.mshr_entries.to_string(),
        ]);
    }
    println!("{}", t1.render());

    println!("Table 2: processor element costs in RBE units");
    let mut t2 = TextTable::new(["element", "RBE"]);
    t2.row([
        "1 KB I-cache block".to_string(),
        icache_cost(1024).to_string(),
    ]);
    t2.row([
        "2 KB I-cache block".to_string(),
        icache_cost(2048).to_string(),
    ]);
    t2.row([
        "4 KB I-cache block".to_string(),
        icache_cost(4096).to_string(),
    ]);
    t2.row(["write-cache line".to_string(), WRITE_CACHE_LINE.to_string()]);
    t2.row(["prefetch line".to_string(), PREFETCH_LINE.to_string()]);
    t2.row(["reorder-buffer entry".to_string(), ROB_ENTRY.to_string()]);
    t2.row(["MSHR entry".to_string(), MSHR_ENTRY.to_string()]);
    t2.row([
        "integer execution pipeline".to_string(),
        INTEGER_PIPELINE.to_string(),
    ]);
    t2.row([
        "FPU add unit (1..5 cyc)".to_string(),
        format!("{}..{}", add_unit_cost(1), add_unit_cost(5)),
    ]);
    t2.row([
        "FPU multiply unit (1..5 cyc)".to_string(),
        format!("{}..{}", multiply_unit_cost(1), multiply_unit_cost(5)),
    ]);
    t2.row([
        "FPU divide unit (10..30 cyc)".to_string(),
        format!("{}..{}", divide_unit_cost(10), divide_unit_cost(30)),
    ]);
    t2.row([
        "FPU convert unit (1..5 cyc)".to_string(),
        format!("{}..{}", convert_unit_cost(1), convert_unit_cost(5)),
    ]);
    println!("{}", t2.render());

    println!("Derived whole-machine IPU costs (cost axis of Figures 4-8):");
    let mut t3 = TextTable::new(["model", "single issue", "dual issue"]);
    for m in MachineModel::ALL {
        let s = ipu_cost(&m.config(IssueWidth::Single, LatencyModel::Fixed(17)));
        let d = ipu_cost(&m.config(IssueWidth::Dual, LatencyModel::Fixed(17)));
        t3.row([m.to_string(), s.to_string(), d.to_string()]);
    }
    println!("{}", t3.render());
    println!(
        "recommended FPU (5.11) cost: {}",
        fpu_cost(&FpuConfig::recommended())
    );
}
