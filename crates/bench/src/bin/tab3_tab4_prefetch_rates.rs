//! Tables 3 and 4: instruction- and data-stream prefetch hit rates (the
//! fraction of primary-cache misses that hit a stream buffer) per model
//! and integer benchmark.

use aurora_bench::harness::{integer_suite, pct, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel};
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);
    let names: Vec<String> = suite.iter().map(|w| w.name().to_string()).collect();

    let mut header = vec!["model".to_string()];
    header.extend(names.iter().cloned());
    let mut t3 = TextTable::new(header.clone());
    let mut t4 = TextTable::new(header);

    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let results = run_suite(&cfg, &suite);
        let mut irow = vec![model.to_string()];
        let mut drow = vec![model.to_string()];
        for (_, stats) in &results {
            irow.push(pct(stats.istream.hit_rate()));
            drow.push(pct(stats.dstream.hit_rate()));
        }
        t3.row(irow);
        t4.row(drow);
    }
    println!("Table 3: integer I-stream prefetch hit rate % (scale {scale})");
    println!("{}", t3.render());
    println!("Table 4: integer D-stream prefetch hit rate %");
    println!("{}", t4.render());
}
