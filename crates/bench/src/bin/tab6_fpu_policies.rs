//! Table 6: CPI for the three FPU issue policies (in-order issue with
//! in-order completion, out-of-order completion with single issue, and
//! out-of-order completion with dual issue) across the FP suite.

use aurora_bench::harness::{cpi, fp_suite, run_matrix, scale_from_args, TextTable};
use aurora_core::{FpIssuePolicy, IssueWidth, MachineConfig, MachineModel};
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = fp_suite(scale);
    let policies = [
        FpIssuePolicy::InOrderComplete,
        FpIssuePolicy::OutOfOrderSingle,
        FpIssuePolicy::OutOfOrderDual,
    ];
    let configs: Vec<MachineConfig> = policies
        .iter()
        .map(|&policy| {
            let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
            cfg.fpu.issue_policy = policy;
            cfg
        })
        .collect();

    // One row per policy; each FP trace is captured once and shared.
    let grid = run_matrix(&configs, &suite);
    let mut t = TextTable::new(["benchmark", "in-order", "single issue", "dual issue"]);
    let mut sums = [0.0f64; 3];
    for (wi, w) in suite.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        for (i, policy_row) in grid.iter().enumerate() {
            let c = policy_row[wi].cpi();
            sums[i] += c;
            row.push(cpi(c));
        }
        t.row(row);
    }
    let n = suite.len() as f64;
    t.row([
        "Average".to_string(),
        cpi(sums[0] / n),
        cpi(sums[1] / n),
        cpi(sums[2] / n),
    ]);
    println!("Table 6: CPI for three FPU issue policies (scale {scale})");
    println!("{}", t.render());
    println!(
        "improvement over in-order: single {:.0}%, dual {:.0}% (paper: 12% and 21%)",
        100.0 * (sums[0] - sums[1]) / sums[0],
        100.0 * (sums[0] - sums[2]) / sums[0],
    );
}
