//! Table 5 and the §5.5 write-traffic numbers: write-cache hit rates per
//! model and benchmark, and store transactions as a fraction of store
//! instructions.

use aurora_bench::harness::{integer_suite, pct, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel};
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);
    let names: Vec<String> = suite.iter().map(|w| w.name().to_string()).collect();

    let mut header = vec!["model".to_string()];
    header.extend(names.iter().cloned());
    header.push("avg".to_string());
    let mut t5 = TextTable::new(header.clone());
    let mut traffic = TextTable::new(header);

    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let results = run_suite(&cfg, &suite);
        let mut hit_row = vec![model.to_string()];
        let mut tr_row = vec![model.to_string()];
        let mut hit_sum = 0.0;
        let mut tr_sum = 0.0;
        for (_, stats) in &results {
            hit_row.push(pct(stats.write_cache.hit_rate()));
            tr_row.push(pct(stats.write_cache.traffic_ratio()));
            hit_sum += stats.write_cache.hit_rate();
            tr_sum += stats.write_cache.traffic_ratio();
        }
        hit_row.push(pct(hit_sum / results.len() as f64));
        tr_row.push(pct(tr_sum / results.len() as f64));
        t5.row(hit_row);
        traffic.row(tr_row);
    }
    println!("Table 5: integer write-cache hit rate % (loads + stores, scale {scale})");
    println!("{}", t5.render());
    println!("Section 5.5: store transactions as % of store instructions");
    println!("{}", traffic.render());
    println!("paper: hit rates rise small -> large; store traffic falls to");
    println!("44% (small), 30% (base), 22% (large) of store instructions.");
}
