//! Ablations of the design choices the paper argues for but does not
//! sweep directly, plus the sweeps its prose implies:
//!
//! * **branch folding** (Figure 3's NEXT field): disable and charge a
//!   fetch bubble on every taken control transfer,
//! * **write validation** (§2.3's micro-TLB): disable and pay an MMU
//!   round trip per store,
//! * **write-cache size** 1–16 lines (§5.6: "a write cache larger than
//!   in the baseline model has little performance benefit"),
//! * **data-cache latency** 1–5 cycles (§5.3/§6: most large-model stalls
//!   come from the 3-cycle pipelined cache),
//! * **instruction-cache-only upgrade** (§5.6/§6: baseline + 4 KB I$
//!   nearly matches the large model),
//! * **secondary-memory latency** 9–100 cycles (§1: miss penalties "will
//!   rise ... to as many as 100 clock cycles"),
//! * **cache line size** 16–64 bytes (Table 1 fixes 32 bytes everywhere;
//!   the prefetch and write-coalescing machinery is line-granular),
//! * **stream-buffer depth** 1–8 lines per buffer,
//! * **latency-distribution seed** sensitivity (a DRAM-spread result must
//!   not be an artifact of one random stream).

use aurora_bench::harness::{cpi, cpi_range, integer_suite, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineConfig, MachineModel};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;
use aurora_workloads::Workload;

fn base() -> MachineConfig {
    MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17))
}

fn avg(cfg: &MachineConfig, suite: &[Workload]) -> f64 {
    cpi_range(&run_suite(cfg, suite)).avg
}

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);

    // Branch folding.
    println!("== branch folding (Figure 3 NEXT field) ==");
    let with = avg(&base(), &suite);
    let mut cfg = base();
    cfg.branch_folding = false;
    let without = avg(&cfg, &suite);
    println!("folding on:  {}", cpi(with));
    println!(
        "folding off: {}  (+{:.1}% CPI)",
        cpi(without),
        100.0 * (without - with) / with
    );

    // Write validation.
    println!("\n== write validation (micro-TLB, 2.3) ==");
    let mut cfg = base();
    cfg.write_validation = false;
    let novalidate = avg(&cfg, &suite);
    println!("micro-TLB on:            {}", cpi(with));
    println!(
        "MMU query per store:     {}  (+{:.1}% CPI from validation bus traffic)",
        cpi(novalidate),
        100.0 * (novalidate - with) / with
    );

    // Write-cache size sweep.
    println!("\n== write-cache size (5.6) ==");
    let mut t = TextTable::new(["lines", "avg CPI", "cost RBE"]);
    for lines in [1usize, 2, 4, 8, 16] {
        let mut cfg = base();
        cfg.write_cache_lines = lines;
        t.row([
            lines.to_string(),
            cpi(avg(&cfg, &suite)),
            ipu_cost(&cfg).0.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("paper: beyond 4 lines the benefit is small.");

    // D-cache latency sweep.
    println!("\n== pipelined data-cache latency (5.3) ==");
    let mut t = TextTable::new(["cycles", "avg CPI"]);
    for lat in 1..=5u32 {
        let mut cfg = base();
        cfg.dcache_latency = lat;
        t.row([lat.to_string(), cpi(avg(&cfg, &suite))]);
    }
    println!("{}", t.render());
    println!("paper: the 3-cycle latency causes most large-model Load stalls;");
    println!("better compiler scheduling could hide it (6).");

    // I-cache-only upgrade (point E's essence across the suite).
    println!("\n== instruction-cache-only upgrade (5.6) ==");
    let mut t = TextTable::new(["config", "avg CPI", "cost RBE"]);
    let b = base();
    t.row([
        "baseline (2K I$)".to_string(),
        cpi(avg(&b, &suite)),
        ipu_cost(&b).0.to_string(),
    ]);
    let mut e = base();
    e.icache_bytes = 4096;
    t.row([
        "baseline + 4K I$".to_string(),
        cpi(avg(&e, &suite)),
        ipu_cost(&e).0.to_string(),
    ]);
    let l = MachineModel::Large.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    t.row([
        "large".to_string(),
        cpi(avg(&l, &suite)),
        ipu_cost(&l).0.to_string(),
    ]);
    println!("{}", t.render());
    println!("paper: the I$-only upgrade achieves nearly the large model's");
    println!("performance at much lower cost.");

    // Memory-latency scaling.
    println!("\n== secondary-memory latency scaling (1) ==");
    let mut t = TextTable::new(["latency", "single CPI", "dual CPI", "dual gain %"]);
    for lat in [9u32, 17, 35, 60, 100] {
        let mut s = base();
        s.issue_width = IssueWidth::Single;
        s.memory_latency = LatencyModel::Fixed(lat);
        let mut d = base();
        d.issue_width = IssueWidth::Dual;
        d.memory_latency = LatencyModel::Fixed(lat);
        let cs = avg(&s, &suite);
        let cd = avg(&d, &suite);
        t.row([
            lat.to_string(),
            cpi(cs),
            cpi(cd),
            format!("{:.1}", 100.0 * (cs - cd) / cs),
        ]);
    }
    println!("{}", t.render());
    println!("paper: 'large memory latencies reduce the benefit of");
    println!("superscalar-issue' (6) — the dual-issue gain should shrink.");

    // Cache line size.
    println!("\n== cache line size (Table 1 fixes 32 bytes) ==");
    let mut t = TextTable::new(["line bytes", "avg CPI"]);
    for bytes in [16u32, 32, 64] {
        let mut cfg = base();
        cfg.line_bytes = bytes;
        t.row([cfg.line_bytes.to_string(), cpi(avg(&cfg, &suite))]);
    }
    println!("{}", t.render());
    println!("longer lines amortise the header cycle but raise the fill");
    println!("occupancy every miss pays.");

    // Stream-buffer depth.
    println!("\n== stream-buffer depth (lines per buffer) ==");
    let mut t = TextTable::new(["depth", "avg CPI"]);
    for depth in [1usize, 2, 4, 8] {
        let mut cfg = base();
        cfg.prefetch_depth = depth;
        t.row([cfg.prefetch_depth.to_string(), cpi(avg(&cfg, &suite))]);
    }
    println!("{}", t.render());
    println!("paper: buffers 'several lines deep' suffice (2.4).");

    // Latency-distribution seed sensitivity.
    println!("\n== DRAM-spread seed sensitivity (uniform 9..=25) ==");
    let mut t = TextTable::new(["seed", "avg CPI"]);
    for seed in [1u64, 7, 42, 1994] {
        let mut cfg = base();
        cfg.memory_latency = LatencyModel::Uniform { lo: 9, hi: 25 };
        cfg.seed = seed;
        t.row([cfg.seed.to_string(), cpi(avg(&cfg, &suite))]);
    }
    println!("{}", t.render());
    println!("the spread across seeds should be far smaller than any effect");
    println!("reported above; otherwise the run length is too short.");
}
