//! Figure 8: the full cost/performance scatter for espresso at 17-cycle
//! latency — single-issue models plus dual-issue machines of every
//! instruction-cache size crossed with a range of memory-element
//! allocations, including the paper's annotated points:
//!
//! * **A** — single-MSHR configurations (blocking cache), well above the
//!   rest at equal cost,
//! * **B** — the large model's plateau,
//! * **C**/**D** — a prefetch-off/on pair,
//! * **E** — the recommended machine: 4 KB I$, 4-line write cache,
//!   6-entry ROB, 4 MSHRs.

use aurora_bench::harness::{cpi, run_matrix, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineConfig, MachineModel};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;
use aurora_workloads::IntBenchmark;

/// One memory-element allocation (write-cache lines, ROB entries,
/// prefetch buffers, MSHRs, prefetch enabled).
#[derive(Clone, Copy)]
struct Alloc(usize, usize, usize, usize, bool);

fn config(icache_kb: u32, issue: IssueWidth, a: Alloc) -> MachineConfig {
    let mut cfg = MachineModel::Baseline.config(issue, LatencyModel::Fixed(17));
    cfg.icache_bytes = icache_kb * 1024;
    // Scale the external D-cache with the I-cache per Table 1.
    cfg.dcache_bytes = icache_kb * 16 * 1024;
    cfg.write_cache_lines = a.0;
    cfg.rob_entries = a.1;
    cfg.prefetch_buffers = a.2.max(1);
    cfg.prefetch_enabled = a.4 && a.2 > 0;
    cfg.mshr_entries = a.3;
    cfg.name = format!(
        "{icache_kb}K/{issue}/wc{}rob{}pf{}mshr{}{}",
        a.0,
        a.1,
        a.2,
        a.3,
        if cfg.prefetch_enabled { "" } else { "-nopf" }
    );
    cfg
}

fn main() {
    let scale = scale_from_args();
    let espresso = IntBenchmark::Espresso.workload(scale);

    // Collect every scatter point first, so espresso is captured once and
    // all points replay in parallel through the matrix runner.
    let mut labels: Vec<String> = Vec::new();
    let mut configs: Vec<MachineConfig> = Vec::new();

    // Squares: single-issue systems of the three cache sizes + recommended.
    for kb in [1u32, 2, 4] {
        let alloc = match kb {
            1 => Alloc(2, 2, 2, 1, true),
            2 => Alloc(4, 6, 4, 2, true),
            _ => Alloc(8, 8, 8, 4, true),
        };
        labels.push(if kb == 1 { "sq/A" } else { "sq" }.to_string());
        configs.push(config(kb, IssueWidth::Single, alloc));
    }

    // Diamonds/triangles/circles: dual issue, 1/2/4 KB I-cache, eight
    // memory-element allocations each.
    let allocs = [
        Alloc(2, 2, 2, 1, true), // small elements, 1 MSHR -> "A"
        Alloc(2, 2, 2, 2, true),
        Alloc(4, 6, 4, 1, true),  // 1 MSHR -> "A"
        Alloc(4, 6, 4, 2, false), // prefetch off -> "C"
        Alloc(4, 6, 4, 2, true),  // prefetch on  -> "D"
        Alloc(4, 6, 4, 4, true),  // recommended elements -> "E" at 4K
        Alloc(8, 8, 8, 2, true),
        Alloc(8, 8, 8, 4, true), // full large elements -> "B" at 4K
    ];
    for kb in [1u32, 2, 4] {
        let shape = match kb {
            1 => "dia",
            2 => "tri",
            _ => "cir",
        };
        for (i, &alloc) in allocs.iter().enumerate() {
            let note = match (kb, i) {
                (_, 0) | (_, 2) => "/A",
                (4, 3) => "/C",
                (4, 4) => "/D",
                (4, 5) => "/E",
                (4, 7) => "/B",
                _ => "",
            };
            labels.push(format!("{shape}{note}"));
            configs.push(config(kb, IssueWidth::Dual, alloc));
        }
    }

    let grid = run_matrix(&configs, std::slice::from_ref(&espresso));
    let mut t = TextTable::new(["point", "config", "cost RBE", "CPI"]);
    for ((label, cfg), row) in labels.iter().zip(&configs).zip(&grid) {
        t.row([
            label.clone(),
            cfg.name.clone(),
            ipu_cost(cfg).0.to_string(),
            cpi(row[0].cpi()),
        ]);
    }
    println!("Figure 8: espresso full cost-performance scatter @ L17 (scale {scale})");
    println!("{}", t.render());
    println!("paper annotations: A = single-MSHR points lie above equal-cost");
    println!("configs; B = the large plateau; D beats C by the prefetch gain;");
    println!("E (4K I$, 4-line WC, 6 ROB, 4 MSHR) nears large at lower cost.");
}
