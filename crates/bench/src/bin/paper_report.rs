//! The master experiment runner: regenerates every table and figure of
//! the paper and emits a markdown report comparing measured numbers with
//! the paper's published values.
//!
//! ```text
//! cargo run --release -p aurora-bench --bin paper_report -- --scale small --write EXPERIMENTS.md
//! ```

use std::fmt::Write as _;
use std::fs;

use aurora_bench::harness::{
    cpi_range, fp_suite, integer_suite, run_cached, run_matrix, run_suite, scale_from_args,
};
use aurora_core::{FpIssuePolicy, IssueWidth, MachineConfig, MachineModel, SimStats, StallKind};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;
use aurora_workloads::{FpBenchmark, IntBenchmark, Scale, Workload};

fn main() {
    let scale = scale_from_args();
    let mut md = String::new();
    let _ = writeln!(md, "# EXPERIMENTS — paper vs. measured\n");
    let _ = writeln!(
        md,
        "Reproduction of every table and figure in *Resource Allocation in a \
         High Clock Rate Microprocessor* (ASPLOS 1994). Workloads are the \
         from-scratch SPEC92-like kernels of `aurora-workloads` at scale \
         `{scale}`; the substrate is the `aurora-core` cycle-level simulator \
         (see DESIGN.md for the substitution argument). Absolute numbers are \
         not expected to match the authors' traces; the *shape* — who wins, \
         by roughly what factor, where knees fall — is the reproduction \
         target. Regenerate with:\n"
    );
    let _ = writeln!(
        md,
        "```\ncargo run --release -p aurora-bench --bin paper_report -- --scale {scale} --write EXPERIMENTS.md\n```\n"
    );

    book(&mut md, scale);

    let int_suite = integer_suite(scale);
    let fpw = fp_suite(scale);

    fig4(&mut md, &int_suite, scale);
    tab3_tab4(&mut md, &int_suite);
    fig5(&mut md, &int_suite);
    fig6(&mut md, &int_suite);
    fig7(&mut md, &int_suite);
    tab5(&mut md, &int_suite);
    fig8(&mut md, scale);
    tab6(&mut md, &fpw);
    fig9(&mut md, &fpw);
    extension_doubleword(&mut md, scale);
    utilization(&mut md, &int_suite, &fpw);

    let _ = writeln!(
        md,
        "\n## Summary of divergences\n\n\
         * Absolute CPIs are lower than the paper's on the integer suite at\n\
           short latency: the hand-written kernels are better scheduled than\n\
           SPEC92 compiled \"with no additional code rescheduling\" (§4.1).\n\
         * I-stream prefetch hit rates run higher than Table 3 (~75-90% vs.\n\
           ~58% average): the kernels' clone rotation produces more\n\
           sequential miss patterns than real instruction streams.\n\
         * The dual-over-single FPU issue gap is smaller than Table 6's\n\
           (the non-pipelined 5-cycle multiplier of §3.1 bounds both).\n\
         * Figure 9c (FPU reorder buffer) is flatter than the paper's: our\n\
           kernels keep fewer FP instructions in flight than compiled\n\
           SPEC92 code.\n"
    );

    print!("{md}");
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--write" {
            fs::write(&pair[1], &md).expect("write report");
            eprintln!("wrote {}", pair[1]);
        }
    }
}

/// The experiment book: one row per paper artifact, mapping it to the
/// binary, the exact command, where the output lands, and how far from
/// the paper's numbers to expect it. Emitted by the generator so
/// `--write` regeneration cannot orphan it.
fn book(md: &mut String, scale: Scale) {
    let _ = writeln!(
        md,
        "## The experiment book — how to reproduce each result\n"
    );
    let _ = writeln!(
        md,
        "Every row regenerates one paper artifact. All binaries accept \
         `--scale test|small|full` (~0.1M / 1M / 7M instructions per \
         kernel; this report used `{scale}`) and print to stdout unless an \
         output file is named. Prefix each command with \
         `cargo run --release -p aurora-bench --bin`. Runs are \
         deterministic: two runs at the same scale produce identical \
         numbers, so any diff against this file is a real behaviour \
         change.\n"
    );
    let _ = writeln!(
        md,
        "| paper artifact | binary | command | output | expected delta vs. paper |\n|---|---|---|---|---|"
    );
    for (artifact, binary, cmd, output, delta) in [
        (
            "everything below at once",
            "`paper_report`",
            "`paper_report -- --scale small --write EXPERIMENTS.md`",
            "this file",
            "see per-row notes; Summary of divergences at the end",
        ),
        (
            "Fig. 4 issue width × model",
            "`fig4_issue_perf`",
            "`fig4_issue_perf -- --scale small`",
            "stdout table",
            "CPIs ~0.2–0.5 lower (hand-scheduled kernels); ordering and the paper's four claims hold",
        ),
        (
            "Fig. 5 prefetch removal",
            "`fig5_prefetch_removal`",
            "`fig5_prefetch_removal -- --scale small`",
            "stdout table",
            "baseline gains match (~11–19%); small-model gain is larger than the paper's ~0%",
        ),
        (
            "Fig. 6 stall breakdown (counters)",
            "`fig6_stall_breakdown`",
            "`fig6_stall_breakdown -- --scale small`",
            "stdout table",
            "category ranking matches: LSU dominates small, ICache+Load dominate base/large",
        ),
        (
            "Fig. 6 from attribution events",
            "`obs_report`",
            "`obs_report -- --scale small [--trace-out t.json --kernel espresso]`",
            "stdout tables + optional Perfetto JSON",
            "identical to the counter version by construction (asserted, worst deviation 0%)",
        ),
        (
            "Fig. 7 MSHR count",
            "`fig7_mshr_sweep`",
            "`fig7_mshr_sweep -- --scale small`",
            "stdout table",
            "1→2 MSHR cliff reproduces; all models flat by 4",
        ),
        (
            "Fig. 8 espresso scatter",
            "`fig8_espresso_scatter`",
            "`fig8_espresso_scatter -- --scale small`",
            "stdout, 28 (cost, CPI) points",
            "shape matches: plateau past the recommended point",
        ),
        (
            "Tab. 3/4 prefetch hit rates",
            "`tab3_tab4_prefetch_rates`",
            "`tab3_tab4_prefetch_rates -- --scale small`",
            "stdout tables",
            "I-stream runs high (~75–90% vs. 58%): kernel streams are more sequential than SPEC92",
        ),
        (
            "Tab. 5 write-cache hits",
            "`tab5_write_cache`",
            "`tab5_write_cache -- --scale small`",
            "stdout table",
            "hit rates and the 4-line knee match; traffic ratios within ~10 points",
        ),
        (
            "Tab. 6 FPU issue policies",
            "`tab6_fpu_policies`",
            "`tab6_fpu_policies -- --scale small`",
            "stdout table",
            "dual-over-in-order gain smaller than 21% (non-pipelined multiplier bounds both)",
        ),
        (
            "Fig. 9 FPU sweeps",
            "`fig9_fpu_sweeps`",
            "`fig9_fpu_sweeps -- --scale small [--ablation]`",
            "stdout curves",
            "knees at the paper's recommended sizes; 9c flatter (fewer FP ops in flight)",
        ),
        (
            "Tab. 2 area model",
            "`tab1_tab2_models`",
            "`tab1_tab2_models`",
            "stdout RBE table",
            "exact — arithmetic, not simulation",
        ),
        (
            "§5 budgeted design search",
            "`optimize`",
            "`optimize -- --budget 36000 --scale small`",
            "stdout frontier",
            "rediscovers the paper's recommendation (baseline + MSHR upgrade)",
        ),
        (
            "throughput / overhead numbers",
            "`perf_baseline`",
            "`perf_baseline -- --scale test`",
            "`BENCH_replay.json`, `BENCH_sim.json`",
            "host-dependent wall-clock; per-op, block-superinstruction and streamed \
             modes asserted bit-identical (every row above replays through the \
             block engine, see docs/MODEL.md \"Block lowering\")",
        ),
        (
            "sampled-mode accuracy / speedup",
            "`perf_baseline`",
            "`perf_baseline -- --scale test`",
            "`BENCH_sampled.json`",
            "SMARTS-style sampling (docs/MODEL.md \"Sampled simulation\"): CPI per \
             kernel × model vs. full-detail ground truth with 95% CIs; suite-mean \
             error ≤ 2% and ≥ 5× throughput gate the CI smoke",
        ),
        (
            "design-space query service",
            "`aurora-serve`",
            "`cargo run --release -p aurora-serve --bin serve_baseline -- --scale test` (full command)",
            "`BENCH_serve.json`",
            "not a paper number: cold-vs-warm latency, memo hit rate and pool \
             parallelism for the memoised daemon (docs/SERVICE.md); warm cells \
             asserted bit-identical to a direct `run_matrix` sweep",
        ),
        (
            "workspace invariant gate",
            "`aurora-lint`",
            "`cargo run -q -p aurora-lint -- --format sarif > lint.sarif` (full command)",
            "`lint.sarif` + exit code",
            "not a paper number: the transitive hot-path, determinism and unit-safety rules \
             (docs/LINTS.md) that keep every row above allocation-free and bit-reproducible",
        ),
    ] {
        let _ = writeln!(md, "| {artifact} | {binary} | {cmd} | {output} | {delta} |");
    }
    let _ = writeln!(md);
}

fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Figure 4: single/dual issue x three models x two latencies.
fn fig4(md: &mut String, suite: &[Workload], scale: Scale) {
    let _ = writeln!(md, "## Figure 4 — issue width and model cost/performance\n");
    let _ = writeln!(
        md,
        "| latency | config | cost RBE | min CPI | avg CPI | max CPI |\n|---|---|---|---|---|---|"
    );
    let mut avgs = Vec::new();
    for latency in [17u32, 35] {
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            for model in MachineModel::ALL {
                let cfg = model.config(issue, LatencyModel::Fixed(latency));
                let r = cpi_range(&run_suite(&cfg, suite));
                let _ = writeln!(
                    md,
                    "| {latency} | {model}/{issue} | {} | {} | {} | {} |",
                    ipu_cost(&cfg).0,
                    f3(r.min),
                    f3(r.avg),
                    f3(r.max)
                );
                avgs.push((latency, format!("{model}/{issue}"), r.avg));
            }
        }
    }
    let avg = |l: u32, n: &str| {
        avgs.iter()
            .find(|(al, an, _)| *al == l && an == n)
            .unwrap()
            .2
    };
    let _ = writeln!(
        md,
        "\n| claim | paper | measured |\n|---|---|---|\n\
         | dual-issue CPI gain on baseline @L35 | 9.9% | {}% |\n\
         | large/dual best vs baseline/dual @L17 | 12.7% | {}% |\n\
         | second pipe on large model, extra cost | 20.4% | {:.1}% |\n\
         | baseline/single beats small/dual at similar cost | yes | {} |\n",
        pct((avg(35, "baseline/single") - avg(35, "baseline/dual")) / avg(35, "baseline/single")),
        pct((avg(17, "baseline/dual") - avg(17, "large/dual")) / avg(17, "baseline/dual")),
        100.0 * 8192.0
            / ipu_cost(&MachineModel::Large.config(IssueWidth::Single, LatencyModel::Fixed(17)))
                .as_f64(),
        if avg(17, "baseline/single") < avg(17, "small/dual") {
            "yes"
        } else {
            "no"
        },
    );
    let _ = scale;
}

/// Tables 3 and 4: prefetch hit rates.
fn tab3_tab4(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(
        md,
        "## Tables 3 & 4 — prefetch stream-buffer hit rates (%)\n"
    );
    let names: Vec<&str> = suite.iter().map(Workload::name).collect();
    for (title, data_stream, paper_avg) in [
        ("Table 3 (I-stream)", false, "58%"),
        ("Table 4 (D-stream)", true, "~12%"),
    ] {
        let _ = writeln!(md, "### {title} — paper average {paper_avg}\n");
        let _ = writeln!(
            md,
            "| model | {} | avg |\n|---|{}---|",
            names.join(" | "),
            "---|".repeat(names.len())
        );
        for model in MachineModel::ALL {
            let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
            let results = run_suite(&cfg, suite);
            let rates: Vec<f64> = results
                .iter()
                .map(|(_, s)| {
                    if data_stream {
                        s.dstream.hit_rate()
                    } else {
                        s.istream.hit_rate()
                    }
                })
                .collect();
            let avg: f64 = rates.iter().sum::<f64>() / rates.len() as f64;
            let cells: Vec<String> = rates.iter().map(|&r| pct(r)).collect();
            let _ = writeln!(md, "| {model} | {} | {} |", cells.join(" | "), pct(avg));
        }
        let _ = writeln!(md);
    }
}

/// Figure 5: prefetch removal.
fn fig5(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(
        md,
        "## Figure 5 — effect of removing prefetch (dual issue)\n"
    );
    let _ = writeln!(
        md,
        "| latency | model | avg CPI with | avg CPI without | gain | paper gain |\n|---|---|---|---|---|---|"
    );
    for latency in [17u32, 35] {
        for model in MachineModel::ALL {
            let with = model.config(IssueWidth::Dual, LatencyModel::Fixed(latency));
            let mut without = with.clone();
            without.prefetch_enabled = false;
            let rw = cpi_range(&run_suite(&with, suite));
            let ro = cpi_range(&run_suite(&without, suite));
            let paper = match (model, latency) {
                (MachineModel::Baseline, 17) => "11%",
                (MachineModel::Baseline, 35) => "19%",
                (MachineModel::Large, 17) => "11%",
                (MachineModel::Large, 35) => "17%",
                (MachineModel::Small, _) => "~0%",
                _ => "-",
            };
            let _ = writeln!(
                md,
                "| {latency} | {model} | {} | {} | {}% | {paper} |",
                f3(rw.avg),
                f3(ro.avg),
                pct((ro.avg - rw.avg) / ro.avg)
            );
        }
    }
    let _ = writeln!(md);
}

/// Figure 6: stall breakdown.
fn fig6(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(
        md,
        "## Figure 6 — stall-penalty CPI breakdown (dual, L17)\n"
    );
    let _ = writeln!(
        md,
        "| model | ICache | Load | ROB-full | LSU-busy | other | total CPI |\n|---|---|---|---|---|---|---|"
    );
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let results = run_suite(&cfg, suite);
        let n = results.len() as f64;
        let mean = |kind: StallKind| -> f64 {
            results.iter().map(|(_, s)| s.stall_cpi(kind)).sum::<f64>() / n
        };
        let total: f64 = results.iter().map(|(_, s)| s.cpi()).sum::<f64>() / n;
        let other =
            mean(StallKind::FpQueue) + mean(StallKind::FpResult) + mean(StallKind::Interlock);
        let _ = writeln!(
            md,
            "| {model} | {} | {} | {} | {} | {} | {} |",
            f3(mean(StallKind::ICache)),
            f3(mean(StallKind::Load)),
            f3(mean(StallKind::RobFull)),
            f3(mean(StallKind::LsuBusy)),
            f3(other),
            f3(total)
        );
    }
    let _ = writeln!(
        md,
        "\npaper: the small model is dominated by waiting on the LSU; base and \
         large by instruction misses and the pipelined data cache's 3-cycle \
         latency (Load); the ROB matters little for base/large.\n"
    );
}

/// Figure 7: MSHR count.
fn fig7(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(md, "## Figure 7 — MSHR count (degree of non-blocking)\n");
    let _ = writeln!(md, "| model | 1 MSHR | 2 | 3 | 4 |\n|---|---|---|---|---|");
    for model in MachineModel::ALL {
        let mut cells = Vec::new();
        for mshrs in 1..=4usize {
            let mut cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
            cfg.mshr_entries = mshrs;
            cells.push(f3(cpi_range(&run_suite(&cfg, suite)).avg));
        }
        let _ = writeln!(md, "| {model} | {} |", cells.join(" | "));
    }
    let _ = writeln!(
        md,
        "\npaper: the small model improves dramatically with a second MSHR; \
         all models perform best with 4.\n"
    );
}

/// Table 5 and the §5.5 write-traffic reduction.
fn tab5(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(
        md,
        "## Table 5 — write-cache hit rate (%) and §5.5 store traffic\n"
    );
    let names: Vec<&str> = suite.iter().map(Workload::name).collect();
    let _ = writeln!(
        md,
        "| model | {} | avg hit | traffic (paper) |\n|---|{}---|---|",
        names.join(" | "),
        "---|".repeat(names.len())
    );
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let results = run_suite(&cfg, suite);
        let n = results.len() as f64;
        let cells: Vec<String> = results
            .iter()
            .map(|(_, s)| pct(s.write_cache.hit_rate()))
            .collect();
        let avg_hit: f64 = results
            .iter()
            .map(|(_, s)| s.write_cache.hit_rate())
            .sum::<f64>()
            / n;
        let traffic: f64 = results
            .iter()
            .map(|(_, s)| s.write_cache.traffic_ratio())
            .sum::<f64>()
            / n;
        let paper_traffic = match model {
            MachineModel::Small => "44%",
            MachineModel::Baseline => "30%",
            MachineModel::Large => "22%",
        };
        let _ = writeln!(
            md,
            "| {model} | {} | {} | {}% ({paper_traffic}) |",
            cells.join(" | "),
            pct(avg_hit),
            pct(traffic)
        );
    }
    let _ = writeln!(md);
}

/// Figure 8: espresso scatter (headline points only in the report).
fn fig8(md: &mut String, scale: Scale) {
    let _ = writeln!(
        md,
        "## Figure 8 — espresso full cost/performance scatter (L17)\n"
    );
    let espresso = IntBenchmark::Espresso.workload(scale);
    let point = |name: &str, cfg: &MachineConfig| -> (String, u64, f64) {
        let s = run_cached(cfg, &espresso);
        (name.to_owned(), ipu_cost(cfg).0, s.cpi())
    };
    let mut rows = Vec::new();
    let small_dual = MachineModel::Small.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    rows.push(point("A: small/dual, 1 MSHR (blocking)", &small_dual));
    let base_dual = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut c = base_dual.clone();
    c.prefetch_enabled = false;
    rows.push(point("C: baseline/dual, prefetch off", &c));
    rows.push(point("D: baseline/dual, prefetch on", &base_dual));
    let large_dual = MachineModel::Large.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    rows.push(point("B: large/dual (plateau)", &large_dual));
    let mut e = large_dual.clone();
    e.write_cache_lines = 4;
    e.rob_entries = 6;
    e.prefetch_buffers = 4;
    rows.push(point("E: recommended (4K I$, 4 WC, 6 ROB, 4 MSHR)", &e));
    let _ = writeln!(md, "| point | cost RBE | CPI |\n|---|---|---|");
    for (name, cost, cpi) in &rows {
        let _ = writeln!(md, "| {name} | {cost} | {} |", f3(*cpi));
    }
    let e_cpi = rows[4].2;
    let b_cpi = rows[3].2;
    let e_cost = rows[4].1;
    let b_cost = rows[3].1;
    let _ = writeln!(
        md,
        "\nE achieves {:.1}% of B's performance at {:.1}% of its cost \
         (paper: \"nearly the same performance as the large model at a much \
         lower cost\"). The full 28-point scatter comes from \
         `fig8_espresso_scatter`.\n",
        100.0 * b_cpi / e_cpi,
        100.0 * e_cost as f64 / b_cost as f64
    );
}

/// Table 6: FPU issue policies.
fn tab6(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(md, "## Table 6 — FPU issue policies (CPI)\n");
    let paper: &[(&str, f64, f64, f64)] = &[
        ("alvinn", 2.113, 2.111, 2.107),
        ("doduc", 1.957, 1.782, 1.671),
        ("ear", 1.299, 1.155, 1.022),
        ("hydro2d", 1.298, 1.123, 0.999),
        ("mdljdp2", 1.344, 1.136, 0.948),
        ("nasa7", 1.702, 1.294, 0.957),
        ("ora", 1.906, 1.780, 1.701),
        ("spice2g6", 1.219, 1.204, 1.203),
        ("su2cor", 1.973, 1.706, 1.557),
    ];
    let _ = writeln!(
        md,
        "| benchmark | in-order (paper) | single (paper) | dual (paper) |\n|---|---|---|---|"
    );
    let configs: Vec<MachineConfig> = [
        FpIssuePolicy::InOrderComplete,
        FpIssuePolicy::OutOfOrderSingle,
        FpIssuePolicy::OutOfOrderDual,
    ]
    .into_iter()
    .map(|policy| {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.fpu.issue_policy = policy;
        cfg
    })
    .collect();
    let grid = run_matrix(&configs, suite);
    let mut sums = [0.0f64; 3];
    for (wi, w) in suite.iter().enumerate() {
        let mut vals = Vec::new();
        for (i, policy_row) in grid.iter().enumerate() {
            let c = policy_row[wi].cpi();
            sums[i] += c;
            vals.push(c);
        }
        let p = paper.iter().find(|(n, ..)| *n == w.name());
        let fmt = |i: usize, pv: fn(&(&str, f64, f64, f64)) -> f64| -> String {
            match p {
                Some(row) => format!("{} ({})", f3(vals[i]), f3(pv(row))),
                None => f3(vals[i]),
            }
        };
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} |",
            w.name(),
            fmt(0, |r| r.1),
            fmt(1, |r| r.2),
            fmt(2, |r| r.3)
        );
    }
    let n = suite.len() as f64;
    let _ = writeln!(
        md,
        "| **Average** | {} (1.577) | {} (1.401) | {} (1.248) |",
        f3(sums[0] / n),
        f3(sums[1] / n),
        f3(sums[2] / n)
    );
    let _ = writeln!(
        md,
        "\nmeasured gains over in-order: single {}%, dual {}% (paper: 12% and 21%).\n",
        pct((sums[0] - sums[1]) / sums[0]),
        pct((sums[0] - sums[2]) / sums[0])
    );
}

/// Figure 9: FPU design-space sweeps.
fn fig9(md: &mut String, suite: &[Workload]) {
    let _ = writeln!(
        md,
        "## Figure 9 — FPU resource and latency sweeps (avg CPI)\n"
    );
    let base = || {
        let mut cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        cfg.fpu.issue_policy = FpIssuePolicy::OutOfOrderSingle;
        cfg
    };
    let avg = |cfg: &MachineConfig| -> f64 {
        let row = &run_matrix(std::slice::from_ref(cfg), suite)[0];
        row.iter().map(aurora_core::SimStats::cpi).sum::<f64>() / row.len() as f64
    };
    let mut sweep =
        |label: &str, values: &[u32], paper: &str, apply: &dyn Fn(&mut MachineConfig, u32)| {
            let cells: Vec<String> = values
                .iter()
                .map(|&v| {
                    let mut cfg = base();
                    apply(&mut cfg, v);
                    format!("{v}: {}", f3(avg(&cfg)))
                })
                .collect();
            let _ = writeln!(md, "* **{label}** — {} — paper: {paper}", cells.join(", "));
        };
    sweep(
        "9a instruction queue",
        &[1, 2, 3, 4, 5],
        "flat beyond 3 entries",
        &|c, v| {
            c.fpu.instr_queue = v as usize;
        },
    );
    sweep(
        "9b load queue",
        &[1, 2, 3, 4, 5],
        "two entries needed",
        &|c, v| {
            c.fpu.load_queue = v as usize;
        },
    );
    sweep(
        "9c reorder buffer",
        &[3, 5, 7, 9, 11],
        "insensitive beyond 6",
        &|c, v| {
            c.fpu.rob_entries = v as usize;
        },
    );
    sweep("9d add latency", &[1, 2, 3, 4, 5], "~17% swing", &|c, v| {
        c.fpu.add_latency = v
    });
    sweep(
        "9e multiply latency",
        &[1, 2, 3, 4, 5],
        "~17% swing (4%/cycle)",
        &|c, v| {
            c.fpu.mul_latency = v;
        },
    );
    sweep(
        "9f divide latency",
        &[10, 15, 19, 25, 30],
        "~8% swing",
        &|c, v| {
            c.fpu.div_latency = v;
        },
    );
    sweep(
        "9g convert latency",
        &[1, 2, 3, 4, 5],
        "negligible",
        &|c, v| c.fpu.cvt_latency = v,
    );

    // §5.10 pipelining ablation.
    let c0 = avg(&base());
    let mut np = base();
    np.fpu.add_pipelined = false;
    np.fpu.mul_pipelined = false;
    let c1 = avg(&np);
    let _ = writeln!(
        md,
        "* **§5.10 non-pipelined add+mul** — {} vs {} pipelined: {}% degradation (paper: <5%)\n",
        f3(c1),
        f3(c0),
        pct((c1 - c0) / c0)
    );
}

/// Appendix: the raw event counters behind the derived rates above —
/// eviction and MSHR pressure, prefetch traffic, write-cache coalescing,
/// and BIU bus occupancy. These are the §5 resource-utilisation numbers
/// the paper's cost/performance arguments lean on.
fn utilization(md: &mut String, suite: &[Workload], fpw: &[Workload]) {
    let _ = writeln!(
        md,
        "## Appendix — machine utilisation and bus traffic (dual, L17)\n"
    );
    let _ = writeln!(
        md,
        "| model | I$+D$ evictions | MSHR full-stalls | MSHR peak occ | prefetches issued | \
         WC stores (hits) | WC loads (hits) | WC store txns | BIU I-fills | \
         BIU write-backs | rx busy % | tx busy % |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|"
    );
    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let results = run_suite(&cfg, suite);
        let sum = |f: &dyn Fn(&SimStats) -> u64| results.iter().map(|(_, s)| f(s)).sum::<u64>();
        let peak = results
            .iter()
            .map(|(_, s)| s.mshr.peak_occupancy)
            .max()
            .unwrap_or(0);
        let cycles = sum(&|s| s.cycles).max(1);
        let _ = writeln!(
            md,
            "| {model} | {} | {} | {peak} | {} | {} ({}) | {} ({}) | {} | {} | {} | {} | {} |",
            sum(&|s| s.icache.evictions + s.dcache.evictions),
            sum(&|s| s.mshr.full_stalls),
            sum(&|s| s.istream.prefetches_issued + s.dstream.prefetches_issued),
            sum(&|s| s.write_cache.store_accesses),
            sum(&|s| s.write_cache.store_hits),
            sum(&|s| s.write_cache.load_accesses),
            sum(&|s| s.write_cache.load_hits),
            sum(&|s| s.write_cache.store_transactions),
            sum(&|s| s.biu.instr_fills),
            sum(&|s| s.biu.write_backs),
            pct(sum(&|s| s.biu.receive_busy_cycles) as f64 / cycles as f64),
            pct(sum(&|s| s.biu.transmit_busy_cycles) as f64 / cycles as f64),
        );
    }
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let results = run_suite(&cfg, fpw);
    let pairs: u64 = results.iter().map(|(_, s)| s.fp_dual_issues).sum();
    let fp: u64 = results.iter().map(|(_, s)| s.fp_instructions).sum();
    let _ = writeln!(
        md,
        "\nFPU pair issue (dual policy, FP suite): {pairs} of {fp} FP \
         instructions issued as the second half of an FPU pair ({}%).\n",
        pct(pairs as f64 / fp.max(1) as f64)
    );
}

/// §5.9 extension: double-word FP loads/stores.
fn extension_doubleword(md: &mut String, scale: Scale) {
    let _ = writeln!(md, "## §5.9 extension — double-word FP loads/stores\n");
    let _ = writeln!(
        md,
        "The implemented FPU supports `ldc1`/`sdc1`; the paper predicts an \
         improvement since \"on average 15% of floating point instructions \
         executed in the SPEC benchmarks are loads\".\n"
    );
    let _ = writeln!(
        md,
        "| benchmark | 2x32-bit CPI | 64-bit CPI | gain |\n|---|---|---|---|"
    );
    let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut total_gain = 0.0;
    for b in FpBenchmark::ALL {
        let sw = run_cached(&cfg, &b.workload(scale));
        let dw = run_cached(&cfg, &b.workload_doubleword(scale));
        // Compare cycles for the same work, not CPI (instruction counts differ).
        let gain = (sw.cycles as f64 - dw.cycles as f64) / sw.cycles as f64;
        total_gain += gain;
        let _ = writeln!(
            md,
            "| {} | {} | {} | {}% fewer cycles |",
            b.name(),
            f3(sw.cpi()),
            f3(dw.cpi()),
            pct(gain)
        );
    }
    let _ = writeln!(
        md,
        "\naverage cycle reduction from double-word FP memory ops: {}%\n",
        pct(total_gain / FpBenchmark::ALL.len() as f64)
    );
}
