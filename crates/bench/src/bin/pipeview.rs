//! Pipeline viewer: runs a small assembly program with the cycle-event
//! observer enabled and prints a timeline straight off the event stream —
//! which cycle each instruction issued, every stall region with its
//! fine-grained cause, and cache-miss / MSHR activity interleaved in
//! cycle order. Optionally dumps the same events as Chrome/Perfetto
//! trace JSON.
//!
//! ```text
//! cargo run --release -p aurora-bench --bin pipeview \
//!     [-- --model small|baseline|large] [--trace-out FILE.json]
//! ```

use aurora_core::{IssueWidth, MachineModel, ObsEventKind, Simulator};
use aurora_isa::{Assembler, Emulator};
use aurora_mem::LatencyModel;

const DEMO: &str = r#"
    .data
    arr: .word 5, 9, 2, 7, 1, 8, 3, 6, 4, 0, 11, 13, 12, 15, 10, 14
    .text
    main:
        la   $s0, arr
        li   $s1, 16
        li   $v0, 0
        li   $v1, 0
    loop:
        lw   $t0, 0($s0)
        addu $v0, $v0, $t0      # depends on the load: load-use stall
        andi $t1, $t0, 1
        beq  $t1, $zero, even
        nop
        addiu $v1, $v1, 1
    even:
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bgtz $s1, loop
        nop
        break
"#;

fn arg_value(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

fn main() {
    let model = arg_value("--model")
        .map(|m| match m.as_str() {
            "small" => MachineModel::Small,
            "large" => MachineModel::Large,
            _ => MachineModel::Baseline,
        })
        .unwrap_or(MachineModel::Baseline);

    let program = Assembler::new().assemble(DEMO).expect("demo assembles");
    let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut sim = Simulator::new(&cfg);
    sim.enable_observer(1 << 14);
    let mut emu = Emulator::new(&program);
    emu.run_traced(100_000, |op| sim.feed(op))
        .expect("demo runs");

    let (stats, obs) = sim.finish_observed();
    let obs = obs.expect("observer was enabled");

    println!("event timeline on the {model} model (dual issue, L17):\n");
    println!("{:>7}  {:<12} event", "cycle", "unit");
    for (shown, ev) in obs.events().enumerate() {
        if shown >= 72 {
            println!("... ({} more events)", obs.len() - shown);
            break;
        }
        let (unit, what) = match ev.kind {
            ObsEventKind::Fetch { pc } => ("fetch", format!("pair @ {pc:#x}")),
            ObsEventKind::Issue { pc, dual } => (
                "issue",
                format!("{pc:#x}{}", if dual { "  <pair" } else { "" }),
            ),
            ObsEventKind::Retire => ("retire", "rob entry completes".to_owned()),
            ObsEventKind::Stall { cause, cycles } => ("stall", format!("{cause} x{cycles}")),
            ObsEventKind::IcacheMiss { latency } => {
                ("icache", format!("miss, {latency}-cycle service"))
            }
            ObsEventKind::DcacheMiss { latency } => {
                ("dcache", format!("miss, {latency}-cycle service"))
            }
            ObsEventKind::MshrAlloc { occupancy } => ("mshr", format!("alloc ({occupancy} live)")),
            ObsEventKind::MshrFree { held } => ("mshr", format!("free after {held}")),
            ObsEventKind::WriteCacheMerge => ("wcache", "store coalesced".to_owned()),
            ObsEventKind::FpQueueDepth { depth } => ("fpu", format!("iq depth {depth}")),
        };
        println!("{:>7}  {:<12} {}", ev.cycle, unit, what);
    }

    println!(
        "\nstall attribution ({} stall cycles total):",
        obs.total_stall_cycles()
    );
    for (cause, cycles) in obs.stall_breakdown() {
        if cycles > 0 {
            println!(
                "  {:<26} {:>6}  ({:.1}%)",
                cause.label(),
                cycles,
                100.0 * cycles as f64 / obs.total_stall_cycles().max(1) as f64
            );
        }
    }
    let dmiss = obs.dmiss_latency();
    if dmiss.count() > 0 {
        println!(
            "\nD$ miss latency: {} misses, mean {:.1}, p95 {}, max {}",
            dmiss.count(),
            dmiss.mean(),
            dmiss.percentile(0.95),
            dmiss.max()
        );
    }

    if let Some(path) = arg_value("--trace-out") {
        std::fs::write(&path, obs.chrome_trace_json()).expect("trace file writes");
        println!("\nPerfetto trace written to {path} (open in ui.perfetto.dev)");
    }

    println!(
        "\n{} instructions in {} cycles: CPI {:.3}, {} dual issues, \
         dropped events {}",
        stats.instructions,
        stats.cycles,
        stats.cpi(),
        stats.dual_issues,
        obs.dropped()
    );
    assert_eq!(
        obs.stalls_by_kind(),
        stats.stalls,
        "event attribution must reproduce the counter breakdown"
    );
}
