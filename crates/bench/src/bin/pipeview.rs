//! Pipeline viewer: runs a small assembly program with the issue log
//! enabled and prints a per-instruction timeline — which cycle each
//! instruction issued, what stalled it, and which pairs dual-issued.
//!
//! ```text
//! cargo run --release -p aurora-bench --bin pipeview [-- --model small|baseline|large]
//! ```

use aurora_core::{IssueWidth, MachineModel, Simulator};
use aurora_isa::{Assembler, Emulator, OpKind};
use aurora_mem::LatencyModel;

const DEMO: &str = r#"
    .data
    arr: .word 5, 9, 2, 7, 1, 8, 3, 6, 4, 0, 11, 13, 12, 15, 10, 14
    .text
    main:
        la   $s0, arr
        li   $s1, 16
        li   $v0, 0
        li   $v1, 0
    loop:
        lw   $t0, 0($s0)
        addu $v0, $v0, $t0      # depends on the load: load-use stall
        andi $t1, $t0, 1
        beq  $t1, $zero, even
        nop
        addiu $v1, $v1, 1
    even:
        addiu $s0, $s0, 4
        addiu $s1, $s1, -1
        bgtz $s1, loop
        nop
        break
"#;

fn main() {
    let model = std::env::args()
        .skip_while(|a| a != "--model")
        .nth(1)
        .map(|m| match m.as_str() {
            "small" => MachineModel::Small,
            "large" => MachineModel::Large,
            _ => MachineModel::Baseline,
        })
        .unwrap_or(MachineModel::Baseline);

    let program = Assembler::new().assemble(DEMO).expect("demo assembles");
    let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
    let mut sim = Simulator::new(&cfg);
    sim.enable_issue_log(4096);
    let mut emu = Emulator::new(&program);
    emu.run_traced(100_000, |op| sim.feed(op))
        .expect("demo runs");

    println!("pipeline timeline on the {model} model (dual issue, L17):\n");
    println!(
        "{:>7}  {:<10} {:<22} {:<6} stall",
        "cycle", "pc", "op", "pair"
    );
    let records: Vec<_> = sim.issue_log().copied().collect();
    for (shown, r) in records.iter().enumerate() {
        if shown >= 60 {
            println!("... ({} more)", records.len() - shown);
            break;
        }
        let op = match r.kind {
            OpKind::Load { ea, .. } => format!("load  [{ea:#x}]"),
            OpKind::Store { ea, .. } => format!("store [{ea:#x}]"),
            OpKind::Branch { taken, .. } => {
                format!("branch ({})", if taken { "taken" } else { "not taken" })
            }
            OpKind::Jump { .. } => "jump".to_owned(),
            other => format!("{other:?}").to_lowercase(),
        };
        let stall = match r.stall_kind {
            Some(kind) if r.stall_cycles > 0 => format!("{} x{}", kind, r.stall_cycles),
            _ => String::new(),
        };
        println!(
            "{:>7}  {:<10} {:<22} {:<6} {}",
            r.cycle,
            format!("{:#x}", r.pc),
            op,
            if r.dual_with_prev { "<pair" } else { "" },
            stall
        );
    }
    let stats = sim.finish();
    println!(
        "\n{} instructions in {} cycles: CPI {:.3}, {} dual issues, \
         load stalls {:.3} CPI",
        stats.instructions,
        stats.cycles,
        stats.cpi(),
        stats.dual_issues,
        stats.stall_cpi(aurora_core::StallKind::Load)
    );
}
