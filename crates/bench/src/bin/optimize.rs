//! The paper's motivating question, made executable: *given a limited
//! resource budget, which allocation optimises performance?* (§1).
//!
//! Enumerates the on-chip design space of Tables 1/2 — instruction-cache
//! size, write-cache lines, reorder-buffer entries, prefetch buffers,
//! MSHRs and issue width — prices each point with the RBE model, prunes
//! to the budget, simulates the survivors in parallel, and reports the
//! best machines plus the whole efficient frontier.
//!
//! ```text
//! cargo run --release -p aurora-bench --bin optimize -- [--budget RBE] [--scale ...]
//! ```

use aurora_bench::harness::{cpi, run_matrix, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineConfig, MachineModel};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;
use aurora_workloads::{IntBenchmark, Workload};

/// The discrete design space (Table 1's resource columns, extended with
/// the no-prefetch option of Figure 5).
fn design_space() -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for issue in [IssueWidth::Single, IssueWidth::Dual] {
        for icache_kb in [1u32, 2, 4] {
            for wc in [2usize, 4, 8] {
                for rob in [2usize, 4, 6, 8] {
                    for pf in [0usize, 2, 4, 8] {
                        for mshr in [1usize, 2, 4] {
                            let mut cfg =
                                MachineModel::Baseline.config(issue, LatencyModel::Fixed(17));
                            cfg.icache_bytes = icache_kb * 1024;
                            cfg.write_cache_lines = wc;
                            cfg.rob_entries = rob;
                            cfg.prefetch_enabled = pf > 0;
                            cfg.prefetch_buffers = pf.max(1);
                            cfg.mshr_entries = mshr;
                            cfg.name =
                                format!("{icache_kb}K/{issue}/wc{wc}/rob{rob}/pf{pf}/mshr{mshr}");
                            out.push(cfg);
                        }
                    }
                }
            }
        }
    }
    out
}

fn main() {
    let scale = scale_from_args();
    let budget: u64 = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|p| p[0] == "--budget")
            .and_then(|p| p[1].parse().ok())
            .unwrap_or(40_000)
    };
    // A representative sub-suite keeps full enumeration tractable; it
    // mixes prefetch-hostile (compress, li) and prefetch-friendly (sc)
    // behaviour so no single mechanism dominates the ranking.
    let suite: Vec<Workload> = [
        IntBenchmark::Espresso,
        IntBenchmark::Compress,
        IntBenchmark::Li,
        IntBenchmark::Sc,
    ]
    .into_iter()
    .map(|b| b.workload(scale))
    .collect();

    let space = design_space();
    let affordable: Vec<MachineConfig> = space
        .iter()
        .filter(|c| ipu_cost(c).0 <= budget)
        .cloned()
        .collect();
    println!(
        "design space: {} points, {} within the {budget}-RBE budget; \
         evaluating on {} kernels at scale {scale}...",
        space.len(),
        affordable.len(),
        suite.len()
    );

    // One capture per kernel, then the whole affordable-configs × suite
    // grid replays in parallel through the matrix runner.
    let grid = run_matrix(&affordable, &suite);
    let results: Vec<(String, u64, f64)> = affordable
        .iter()
        .zip(&grid)
        .map(|(cfg, row)| {
            let avg = row.iter().map(aurora_core::SimStats::cpi).sum::<f64>() / row.len() as f64;
            (cfg.name.clone(), ipu_cost(cfg).0, avg)
        })
        .collect();

    // Best absolute performers.
    let mut by_cpi = results.clone();
    by_cpi.sort_by(|a, b| a.2.total_cmp(&b.2));
    println!("\nbest configurations within budget:");
    let mut t = TextTable::new(["config", "cost RBE", "avg CPI"]);
    for (name, cost, c) in by_cpi.iter().take(10) {
        t.row([name.clone(), cost.to_string(), cpi(*c)]);
    }
    println!("{}", t.render());

    // Efficient frontier over the whole affordable set.
    let mut by_cost = results;
    by_cost.sort_by_key(|r| r.1);
    println!("efficient frontier (no cheaper config is faster):");
    let mut t = TextTable::new(["config", "cost RBE", "avg CPI"]);
    let mut best = f64::INFINITY;
    for (name, cost, c) in &by_cost {
        if *c < best {
            best = *c;
            t.row([name.clone(), cost.to_string(), cpi(*c)]);
        }
    }
    println!("{}", t.render());
    println!("compare with the paper's recommendation (5.6): a baseline");
    println!("machine upgraded only in instruction cache and MSHRs.");
}
