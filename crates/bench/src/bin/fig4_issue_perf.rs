//! Figure 4: dual- and single-issue cost/performance for the three models
//! at 17- and 35-cycle secondary latencies — 12 configurations, each
//! reporting the min/avg/max CPI over the integer suite against its RBE
//! cost.

use aurora_bench::harness::{cpi, cpi_range, integer_suite, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);
    for latency in [17u32, 35] {
        let mut t = TextTable::new(["config", "cost RBE", "min CPI", "avg CPI", "max CPI"]);
        let mut averages = Vec::new();
        for issue in [IssueWidth::Single, IssueWidth::Dual] {
            for model in MachineModel::ALL {
                let cfg = model.config(issue, LatencyModel::Fixed(latency));
                let results = run_suite(&cfg, &suite);
                let range = cpi_range(&results);
                t.row([
                    format!("{model}/{issue}"),
                    ipu_cost(&cfg).0.to_string(),
                    cpi(range.min),
                    cpi(range.avg),
                    cpi(range.max),
                ]);
                averages.push((format!("{model}/{issue}"), range.avg));
            }
        }
        println!("Figure 4: {latency}-cycle secondary latency (scale {scale})");
        println!("{}", t.render());

        // The paper's headline comparisons for this latency.
        let avg = |name: &str| averages.iter().find(|(n, _)| n == name).unwrap().1;
        let base_single = avg("baseline/single");
        let base_dual = avg("baseline/dual");
        let large_dual = avg("large/dual");
        let small_dual = avg("small/dual");
        println!(
            "  dual-issue gain on baseline: {:.1}%  (paper: ~9.9% at L35)",
            100.0 * (base_single - base_dual) / base_single
        );
        println!(
            "  large/dual vs baseline/dual: {:.1}% better (paper: best by 12.7% at L17)",
            100.0 * (base_dual - large_dual) / base_dual
        );
        println!(
            "  baseline/single vs small/dual: {:.1}% better at similar cost (paper: single base beats dual small)",
            100.0 * (small_dual - base_single) / small_dual
        );
        println!();
    }
}
