//! End-user CLI: assemble a mini-MIPS source file, execute it, and report
//! cycle-level statistics on a chosen machine model.
//!
//! ```text
//! cargo run --release -p aurora-bench --bin aurora_run -- program.s \
//!     [--model small|baseline|large] [--issue single|dual] \
//!     [--latency N] [--limit N] [--dump] [--timeline]
//! ```

use std::process::exit;

use aurora_core::{IssueWidth, MachineModel, Simulator, StallKind};
use aurora_isa::{Assembler, Emulator, RunOutcome};
use aurora_mem::LatencyModel;

struct Options {
    path: String,
    model: MachineModel,
    issue: IssueWidth,
    latency: u32,
    limit: u64,
    dump: bool,
    timeline: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        path: String::new(),
        model: MachineModel::Baseline,
        issue: IssueWidth::Dual,
        latency: 17,
        limit: 100_000_000,
        dump: false,
        timeline: false,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                opts.model = match it.next().as_deref() {
                    Some("small") => MachineModel::Small,
                    Some("baseline") => MachineModel::Baseline,
                    Some("large") => MachineModel::Large,
                    other => usage(&format!("bad --model {other:?}")),
                }
            }
            "--issue" => {
                opts.issue = match it.next().as_deref() {
                    Some("single") => IssueWidth::Single,
                    Some("dual") => IssueWidth::Dual,
                    other => usage(&format!("bad --issue {other:?}")),
                }
            }
            "--latency" => {
                opts.latency = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --latency"));
            }
            "--limit" => {
                opts.limit = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --limit"));
            }
            "--dump" => opts.dump = true,
            "--timeline" => opts.timeline = true,
            path if !path.starts_with('-') && opts.path.is_empty() => opts.path = path.to_owned(),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    if opts.path.is_empty() {
        usage("missing source file");
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: aurora_run <file.s> [--model small|baseline|large] \
         [--issue single|dual] [--latency N] [--limit N] [--dump] [--timeline]"
    );
    exit(2);
}

fn main() {
    let opts = parse_args();
    let source = std::fs::read_to_string(&opts.path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", opts.path);
        exit(1);
    });
    let program = Assembler::new().assemble(&source).unwrap_or_else(|e| {
        eprintln!("{}: {e}", opts.path);
        exit(1);
    });
    if let Err(e) = program.verify_delay_slots() {
        eprintln!("{}: warning: {e}", opts.path);
    }
    if opts.dump {
        println!("{program}");
    }

    let cfg = opts
        .model
        .config(opts.issue, LatencyModel::Fixed(opts.latency));
    let mut sim = Simulator::new(&cfg);
    if opts.timeline {
        sim.enable_issue_log(100_000);
    }
    let mut emu = Emulator::new(&program);
    let outcome = emu
        .run_traced(opts.limit, |op| sim.feed(op))
        .unwrap_or_else(|e| {
            eprintln!("runtime fault: {e}");
            exit(1);
        });
    if outcome != RunOutcome::Halted {
        eprintln!("warning: instruction limit reached before `break`");
    }

    if opts.timeline {
        println!("{:>8}  {:<10} {:<6} stall", "cycle", "pc", "pair");
        for r in sim.issue_log() {
            let stall = match r.stall_cause {
                Some(c) if r.stall_cycles > 0 => format!("{c} x{}", r.stall_cycles),
                _ => String::new(),
            };
            println!(
                "{:>8}  {:<10} {:<6} {}",
                r.cycle,
                format!("{:#x}", r.pc),
                if r.dual_with_prev { "<pair" } else { "" },
                stall
            );
        }
        println!();
    }

    let stats = sim.finish();
    println!("machine: {cfg}");
    println!("{stats}");
    println!();
    println!("stall CPI breakdown:");
    for kind in StallKind::ALL {
        let v = stats.stall_cpi(kind);
        if v > 0.0005 {
            println!("  {:<10} {v:.3}", kind.label());
        }
    }
}
