//! Trace capture and replay — the classic trace-driven workflow (§4.1):
//! collect once, simulate many times.
//!
//! ```text
//! # capture a kernel's dynamic trace to a file
//! cargo run --release -p aurora-bench --bin trace_tool -- record espresso /tmp/espresso.trc
//!
//! # replay it against all three machine models
//! cargo run --release -p aurora-bench --bin trace_tool -- replay /tmp/espresso.trc
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use aurora_bench::harness::scale_from_args;
use aurora_core::{IssueWidth, MachineModel, Simulator};
use aurora_isa::{read_trace, TraceWriter};
use aurora_mem::LatencyModel;
use aurora_workloads::{FpBenchmark, IntBenchmark};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("record") => record(&args[2], &args[3]),
        Some("replay") => replay(&args[2]),
        _ => {
            eprintln!("usage: trace_tool record <benchmark> <file> | replay <file>");
            std::process::exit(2);
        }
    }
}

fn record(bench: &str, path: &str) {
    let scale = scale_from_args();
    let workload = bench
        .parse::<IntBenchmark>()
        .map(|b| b.workload(scale))
        .or_else(|_| bench.parse::<FpBenchmark>().map(|b| b.workload(scale)))
        .unwrap_or_else(|_| {
            eprintln!("unknown benchmark `{bench}`");
            std::process::exit(2);
        });
    let file = File::create(path).expect("create trace file");
    let mut writer = TraceWriter::new(BufWriter::new(file)).expect("write header");
    workload
        .run_traced(|op| writer.write(&op).expect("write record"))
        .expect("kernel runs");
    let n = writer.written();
    writer.finish().expect("flush");
    println!("recorded {n} instructions of {bench} to {path}");
}

fn replay(path: &str) {
    println!("{:<10} {:>12} {:>8}", "model", "cycles", "CPI");
    for model in MachineModel::ALL {
        let file = File::open(path).expect("open trace file");
        let reader = read_trace(BufReader::new(file)).expect("valid trace header");
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let mut sim = Simulator::new(&cfg);
        for op in reader {
            sim.feed(op.expect("valid record"));
        }
        let stats = sim.finish();
        println!(
            "{:<10} {:>12} {:>8.3}",
            model.to_string(),
            stats.cycles,
            stats.cpi()
        );
    }
}
