//! Figure 1: single-chip microprocessor clock frequencies presented at
//! ISSCC, 1983–1993, with the paper's ~40 %/year trend line.
//!
//! This is historical data, not a simulation output; the dataset below is
//! a representative survey of published ISSCC parts in the paper's span
//! (min/max per conference year).

use aurora_bench::harness::TextTable;

/// (year, slowest MHz, fastest MHz) per ISSCC conference.
const SURVEY: &[(u32, f64, f64)] = &[
    (1983, 4.0, 16.0),
    (1984, 5.0, 20.0),
    (1985, 8.0, 25.0),
    (1986, 10.0, 33.0),
    (1987, 12.0, 50.0),
    (1988, 16.0, 66.0),
    (1989, 20.0, 80.0),
    (1990, 25.0, 100.0),
    (1991, 33.0, 150.0),
    (1992, 40.0, 200.0),
    (1993, 50.0, 275.0),
];

fn main() {
    let mut t = TextTable::new(["year", "slowest MHz", "fastest MHz", "trend MHz"]);
    // The paper's line: ~40 % growth per year through the fastest parts.
    let base_year = SURVEY[0].0;
    let base = 14.0;
    for &(year, lo, hi) in SURVEY {
        let trend = base * 1.40_f64.powi((year - base_year) as i32);
        t.row([
            year.to_string(),
            format!("{lo:.0}"),
            format!("{hi:.0}"),
            format!("{trend:.0}"),
        ]);
    }
    println!("Figure 1: ISSCC single-chip clock-frequency survey");
    println!("{}", t.render());

    // Fit the actual growth rate of the fastest parts.
    let n = SURVEY.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(year, _, hi) in SURVEY {
        let x = (year - base_year) as f64;
        let y = hi.ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let growth = slope.exp() - 1.0;
    println!(
        "fitted fastest-part growth: {:.1}% per year (paper: ~40%)",
        100.0 * growth
    );
    let spread: f64 = SURVEY.iter().map(|&(_, lo, hi)| hi / lo).sum::<f64>() / n;
    println!("average fastest/slowest spread: {spread:.1}x (paper: at least 2x, widening)");
}
