//! Figure 5: the effect of removing the prefetch stream buffers from the
//! three dual-issue models, at both secondary latencies.

use aurora_bench::harness::{cpi, cpi_range, integer_suite, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel};
use aurora_cost::ipu_cost;
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);
    for latency in [17u32, 35] {
        let mut t = TextTable::new(["config", "cost RBE", "min CPI", "avg CPI", "max CPI"]);
        let mut gains = Vec::new();
        for model in MachineModel::ALL {
            let mut with = model.config(IssueWidth::Dual, LatencyModel::Fixed(latency));
            with.prefetch_enabled = true;
            let mut without = with.clone();
            without.prefetch_enabled = false;

            let r_with = cpi_range(&run_suite(&with, &suite));
            let r_without = cpi_range(&run_suite(&without, &suite));
            t.row([
                format!("{model}/prefetch"),
                ipu_cost(&with).0.to_string(),
                cpi(r_with.min),
                cpi(r_with.avg),
                cpi(r_with.max),
            ]);
            t.row([
                format!("{model}/none"),
                ipu_cost(&without).0.to_string(),
                cpi(r_without.min),
                cpi(r_without.avg),
                cpi(r_without.max),
            ]);
            gains.push((
                model,
                100.0 * (r_without.avg - r_with.avg) / r_without.avg,
                100.0 * (r_without.max - r_with.max) / r_without.max,
            ));
        }
        println!("Figure 5: prefetch removal at {latency}-cycle latency (scale {scale})");
        println!("{}", t.render());
        for (model, avg_gain, worst_gain) in gains {
            println!(
                "  {model}: prefetch improves avg CPI {avg_gain:.1}%, worst case {worst_gain:.1}%"
            );
        }
        println!(
            "  (paper: base 11% @L17 / 19% @L35, large 11% / 17%, small ~none; worst case 25% / 35%)"
        );
        println!();
    }
}
