//! Characterises every workload kernel: instruction mix, working set and
//! branch behaviour — the evidence that each kernel models its SPEC92
//! namesake's dominant character (see `aurora-workloads` docs).

use std::collections::HashSet;

use aurora_bench::harness::{pct, scale_from_args, TextTable};
use aurora_workloads::{FpBenchmark, IntBenchmark, Workload};

fn profile(t: &mut TextTable, w: &Workload) {
    let mut lines: HashSet<u32> = HashSet::new();
    let mut pcs: HashSet<u32> = HashSet::new();
    let trace = w.trace().expect("kernel runs");
    for op in &trace.ops {
        pcs.insert(op.pc);
        if let Some(ea) = op.kind.effective_address() {
            lines.insert(ea / 32);
        }
    }
    let s = &trace.stats;
    let total = s.total as f64;
    t.row([
        w.name().to_string(),
        s.total.to_string(),
        format!("{}", pcs.len() * 4),
        format!("{}", lines.len() * 32 / 1024),
        pct(s.memory_fraction()),
        pct((s.stores + s.fp_stores) as f64 / total),
        pct(s.branches as f64 / total),
        pct(s.taken_branches as f64 / s.branches.max(1) as f64),
        pct(s.fp_fraction()),
    ]);
}

fn main() {
    let scale = scale_from_args();
    let mut t = TextTable::new([
        "kernel",
        "dyn instrs",
        "code B",
        "data KB",
        "mem%",
        "store%",
        "br%",
        "taken%",
        "fp%",
    ]);
    for b in IntBenchmark::ALL {
        profile(&mut t, &b.workload(scale));
    }
    for b in FpBenchmark::ALL {
        profile(&mut t, &b.workload(scale));
    }
    println!("workload profiles at scale {scale}:");
    println!("{}", t.render());
}
