//! Figure 6: the CPI penalty contributed by each IPU stall condition
//! (ICache, Load, ROB-full, LSU-busy) for the three dual-issue models.

use aurora_bench::harness::{cpi, integer_suite, run_suite, scale_from_args, TextTable};
use aurora_core::{IssueWidth, MachineModel, StallKind};
use aurora_mem::LatencyModel;

fn main() {
    let scale = scale_from_args();
    let suite = integer_suite(scale);
    let kinds = [
        StallKind::ICache,
        StallKind::Load,
        StallKind::RobFull,
        StallKind::LsuBusy,
    ];

    let mut header = vec!["model".to_string(), "base CPI".to_string()];
    header.extend(kinds.iter().map(|k| k.label().to_string()));
    header.push("other".to_string());
    header.push("total CPI".to_string());
    let mut t = TextTable::new(header);

    for model in MachineModel::ALL {
        let cfg = model.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let results = run_suite(&cfg, &suite);
        let n = results.len() as f64;
        let total: f64 = results.iter().map(|(_, s)| s.cpi()).sum::<f64>() / n;
        let mut row = vec![model.to_string()];
        let mut stall_sum = 0.0;
        let mut per_kind = Vec::new();
        for kind in kinds {
            let v: f64 = results.iter().map(|(_, s)| s.stall_cpi(kind)).sum::<f64>() / n;
            stall_sum += v;
            per_kind.push(v);
        }
        let other: f64 = results
            .iter()
            .map(|(_, s)| {
                s.stall_cpi(StallKind::FpQueue)
                    + s.stall_cpi(StallKind::FpResult)
                    + s.stall_cpi(StallKind::Interlock)
            })
            .sum::<f64>()
            / n;
        row.push(cpi(total - stall_sum - other));
        row.extend(per_kind.iter().map(|&v| cpi(v)));
        row.push(cpi(other));
        row.push(cpi(total));
        t.row(row);
    }
    println!("Figure 6: stall-penalty breakdown, dual issue @ L17 (scale {scale})");
    println!("{}", t.render());
    println!("paper: small model dominated by LSU/memory waits; base and large");
    println!("dominated by instruction misses and the 3-cycle pipelined data");
    println!("cache (Load); ROB size hardly matters for base and large.");
}
