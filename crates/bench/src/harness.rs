//! Shared experiment-harness utilities: streaming simulation runners and
//! plain-text table/series formatting used by every `src/bin/` experiment.

use aurora_core::{MachineConfig, SimStats, Simulator};
use aurora_workloads::{Scale, Workload};

/// Runs `workload` through a simulator for `cfg`, streaming the trace
/// (no trace materialisation, so `Scale::Full` runs fit in memory).
///
/// # Panics
///
/// Panics if the kernel fails to run — kernels are compiled-in and a
/// failure is a bug, not an operational error.
pub fn run(cfg: &MachineConfig, workload: &Workload) -> SimStats {
    let mut sim = Simulator::new(cfg);
    workload
        .run_traced(|op| sim.feed(op))
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()));
    sim.finish()
}

/// Runs a benchmark list against one config, one thread per workload
/// (each simulation is independent and deterministic), returning
/// `(name, stats)` in workload order.
pub fn run_suite<'w>(
    cfg: &MachineConfig,
    workloads: &'w [Workload],
) -> Vec<(&'w str, SimStats)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| scope.spawn(move || (w.name(), run(cfg, w))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("simulation thread")).collect()
    })
}

/// Builds the full integer suite at `scale`.
pub fn integer_suite(scale: Scale) -> Vec<Workload> {
    aurora_workloads::IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(scale))
        .collect()
}

/// Builds the full floating-point suite at `scale`.
pub fn fp_suite(scale: Scale) -> Vec<Workload> {
    aurora_workloads::FpBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(scale))
        .collect()
}

/// Reads the scale from argv (`--scale test|small|full`), default small.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--scale" {
            return match pair[1].as_str() {
                "test" => Scale::Test,
                "small" => Scale::Small,
                "full" => Scale::Full,
                other => panic!("unknown scale `{other}` (use test|small|full)"),
            };
        }
    }
    Scale::Small
}

/// Whether a flag like `--ablation` is present on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// A minimal fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats a CPI value with three decimals.
pub fn cpi(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{IssueWidth, MachineModel};
    use aurora_mem::LatencyModel;
    use aurora_workloads::IntBenchmark;

    #[test]
    fn run_produces_stats() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Single, LatencyModel::Fixed(17));
        let w = IntBenchmark::Eqntott.workload(Scale::Test);
        let stats = run(&cfg, &w);
        assert!(stats.instructions > 10_000);
        assert!(stats.cpi() > 0.5);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["model", "espresso", "li"]);
        t.row(["small", "1.23", "4.5"]);
        t.row(["baseline", "0.9", "10.01"]);
        let s = t.render();
        assert!(s.contains("model"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(cpi(1.23456), "1.235");
    }
}

/// Minimum, average and maximum CPI over a suite run (the Figure 4/5/7
/// vertical bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiRange {
    /// Lowest CPI in the suite.
    pub min: f64,
    /// Arithmetic mean CPI.
    pub avg: f64,
    /// Highest CPI in the suite.
    pub max: f64,
}

/// Summarises per-benchmark stats into a [`CpiRange`].
///
/// # Panics
///
/// Panics on an empty result set.
pub fn cpi_range(results: &[(&str, aurora_core::SimStats)]) -> CpiRange {
    assert!(!results.is_empty());
    let cpis: Vec<f64> = results.iter().map(|(_, s)| s.cpi()).collect();
    CpiRange {
        min: cpis.iter().copied().fold(f64::INFINITY, f64::min),
        avg: cpis.iter().sum::<f64>() / cpis.len() as f64,
        max: cpis.iter().copied().fold(0.0, f64::max),
    }
}
