//! Shared experiment-harness utilities: capture-once / replay-many sweep
//! runners and plain-text table/series formatting used by every
//! `src/bin/` experiment.
//!
//! The heart of the module is [`run_matrix`]: every experiment binary is
//! ultimately a (configurations × workloads) sweep, and the trace of a
//! (workload, scale) pair is configuration-independent. The matrix runner
//! therefore captures each workload's packed trace once — through the
//! process-wide [`TraceStore`] — lowers it once into basic-block
//! superinstructions ([`aurora_isa::BlockTrace`]), and replays the
//! shared, pre-resolved blocks across a work-stealing thread pool, one
//! cell at a time. Compared with re-emulating the kernel per cell,
//! replay skips the functional emulator entirely; compared with per-op
//! replay, block replay amortises fetch, footprint and scoreboard checks
//! over whole blocks. Statistics stay bit-identical throughout.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use aurora_core::{replay_blocks, MachineConfig, SimStats, Simulator};
use aurora_isa::BlockTrace;
use aurora_workloads::{Scale, TraceStore, Workload};

/// Runs `workload` through a simulator for `cfg`, streaming the trace
/// (no trace materialisation, so `Scale::Full` runs fit in memory).
///
/// # Panics
///
/// Panics if the kernel fails to run — kernels are compiled-in and a
/// failure is a bug, not an operational error.
pub fn run(cfg: &MachineConfig, workload: &Workload) -> SimStats {
    let mut sim = Simulator::new(cfg);
    workload
        .run_traced(|op| sim.feed(op))
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()));
    sim.finish()
}

/// Captures `workload`'s trace through the process-wide [`TraceStore`]
/// (at most once per (name, scale), across all threads), lowers it to
/// basic blocks (also memoised), and replays the blocks against `cfg`.
/// Statistics are bit-identical to [`run`].
///
/// # Panics
///
/// Panics if the kernel fails to run — kernels are compiled-in and a
/// failure is a bug, not an operational error.
pub fn run_cached(cfg: &MachineConfig, workload: &Workload) -> SimStats {
    replay_blocks(cfg, &capture_blocks(workload))
}

fn capture_blocks(workload: &Workload) -> Arc<BlockTrace> {
    TraceStore::global()
        .get_blocks(workload)
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()))
}

/// Sizes the sweep thread pool: one thread per hardware thread, but
/// never more threads than grid cells. This is the pool *size*; the
/// parallelism a drain actually achieves is measured per run and
/// reported by [`MatrixMetrics::achieved_parallelism`].
pub fn sweep_threads(cells: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(4, usize::from)
        .min(cells.max(1))
}

/// Observed execution profile of one [`run_matrix_timed`] grid drain.
///
/// `parallelism` in `BENCH_replay.json` is the *achieved* figure from
/// these measurements, not the pool size: a pool of N threads on a
/// saturated or single-core host overlaps far less than N-fold, and
/// reporting the thread count as parallelism would overstate the
/// engine. Busy time is summed per worker around each cell's replay, so
/// scheduling gaps, queue exhaustion at the tail of the grid and time
/// stolen by the host all show up as the difference between
/// `wall_seconds` and the per-thread busy totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixMetrics {
    /// Threads the pool spawned ([`sweep_threads`]).
    pub threads: usize,
    /// Wall-clock seconds of the replay drain (phase 2 only — capture
    /// and lowering are amortised capture-side work).
    pub wall_seconds: f64,
    /// Grid cells replayed.
    pub cells: usize,
    /// Cells completed by each pool thread, in spawn order.
    pub per_thread_cells: Vec<usize>,
    /// Busy seconds (summed cell-replay time) of each pool thread.
    pub per_thread_seconds: Vec<f64>,
}

impl MatrixMetrics {
    /// Achieved parallelism: total busy time across workers divided by
    /// wall time. At most [`threads`](Self::threads); ~1.0 on a single
    /// core regardless of pool size.
    pub fn achieved_parallelism(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.per_thread_seconds.iter().sum::<f64>() / self.wall_seconds
    }

    /// Per-thread throughput over busy time, in cells per second.
    pub fn per_thread_cells_per_sec(&self) -> Vec<f64> {
        self.per_thread_cells
            .iter()
            .zip(&self.per_thread_seconds)
            .map(|(&cells, &secs)| if secs > 0.0 { cells as f64 / secs } else { 0.0 })
            .collect()
    }
}

/// Runs `cells` independent jobs through the work-stealing sweep pool,
/// invoking `on_cell` on the worker thread as each job completes. This
/// is the library form of the grid drain behind [`run_matrix`]: callers
/// with a sparse or heterogeneous cell list (the `aurora-serve` query
/// engine batching cold design-space cells, a sampled-mode sweep) reuse
/// the same pool sizing, work stealing and [`MatrixMetrics`] profiling
/// as the full-matrix path.
///
/// `run_cell(i)` computes cell `i`; results come back as `Vec<R>` in
/// cell order. `on_cell(i, &result)` fires in *completion* order, on the
/// pool thread that finished the cell — keep it cheap and non-blocking
/// (forward into a channel for anything heavier: the drain loop is the
/// `[[pool]]` lint root, so blocking calls reachable from it fail L013).
///
/// # Panics
///
/// Propagates panics from `run_cell`/`on_cell` (a panicking cell is a
/// bug in the cell function, not an operational error).
pub fn drain_cells_timed<R, F, C>(cells: usize, run_cell: F, on_cell: C) -> (Vec<R>, MatrixMetrics)
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
    C: Fn(usize, &R) + Sync,
{
    if cells == 0 {
        return (Vec::new(), MatrixMetrics::default());
    }
    let results: Vec<OnceLock<R>> = (0..cells).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let threads = sweep_threads(cells);
    let drain_start = Instant::now();
    let profile: Vec<(usize, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(|| drain_worker(&next, cells, &run_cell, &on_cell, &results)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    });
    let metrics = MatrixMetrics {
        threads,
        wall_seconds: drain_start.elapsed().as_secs_f64(),
        cells,
        per_thread_cells: profile.iter().map(|&(done, _)| done).collect(),
        per_thread_seconds: profile.iter().map(|&(_, busy)| busy).collect(),
    };
    let out: Vec<R> = results
        .into_iter()
        .map(|c| match c.into_inner() {
            Some(r) => r,
            None => unreachable!("cell not simulated"),
        })
        .collect();
    (out, metrics)
}

/// Replays every workload against every configuration: the universal
/// sweep shape behind the paper's figures and tables.
///
/// Traces are captured and lowered to basic blocks once per workload
/// (in parallel, memoised in the process-wide [`TraceStore`]), then the
/// `configs.len() × workloads.len()` grid of independent block replays
/// drains through a work-stealing pool sized to the machine. Returns one
/// row per configuration, one column per workload: `result[c][w]` is
/// `configs[c]` × `workloads[w]`.
///
/// # Panics
///
/// Panics if any kernel fails to run — kernels are compiled-in and a
/// failure is a bug, not an operational error.
pub fn run_matrix(configs: &[MachineConfig], workloads: &[Workload]) -> Vec<Vec<SimStats>> {
    run_matrix_timed(configs, workloads).0
}

/// [`run_matrix`] with an execution profile: the same grid drain, plus
/// per-thread cell counts and busy times so callers can report the
/// parallelism the pool *achieved* (see [`MatrixMetrics`]).
///
/// # Panics
///
/// Panics if any kernel fails to run — kernels are compiled-in and a
/// failure is a bug, not an operational error.
pub fn run_matrix_timed(
    configs: &[MachineConfig],
    workloads: &[Workload],
) -> (Vec<Vec<SimStats>>, MatrixMetrics) {
    if configs.is_empty() || workloads.is_empty() {
        let rows = configs.iter().map(|_| Vec::new()).collect();
        return (rows, MatrixMetrics::default());
    }
    // Phase 1: capture and block-lower each workload's trace, one
    // thread per workload (both steps memoised in the TraceStore).
    let traces: Vec<Arc<BlockTrace>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| scope.spawn(move || capture_blocks(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("capture thread"))
            .collect()
    });
    // Phase 2: drain the replay grid with work stealing — replay times
    // vary wildly across (config, workload) cells, so static chunking
    // would leave threads idle. Cells are claimed in workload-major
    // order: consecutive cells replay the same trace against different
    // configs, so the block pool and templates stay cache-hot instead
    // of being streamed from memory once per configuration row.
    let n_configs = configs.len();
    let cells = n_configs * workloads.len();
    let (flat, metrics) = drain_cells_timed(
        cells,
        |cell| {
            let (wi, ci) = (cell / n_configs, cell % n_configs);
            replay_blocks(&configs[ci], &traces[wi])
        },
        |_, _| {},
    );
    // Reshape the workload-major flat order into config-major rows.
    let mut rows: Vec<Vec<SimStats>> = (0..n_configs)
        .map(|_| Vec::with_capacity(workloads.len()))
        .collect();
    for (cell, stats) in flat.into_iter().enumerate() {
        rows[cell % n_configs].push(stats);
    }
    (rows, metrics)
}

/// One work-stealing pool thread's share of a cell drain: claim cells
/// off the shared counter until the list is exhausted, returning the
/// cell count and busy seconds this worker accumulated. Declared as the
/// `[[pool]]` root in lint.toml — nothing reachable from here may block
/// (L013), or the sweep serializes on whichever thread holds the lock.
fn drain_worker<R, F, C>(
    next: &AtomicUsize,
    cells: usize,
    run_cell: &F,
    on_cell: &C,
    results: &[OnceLock<R>],
) -> (usize, f64)
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
    C: Fn(usize, &R) + Sync,
{
    let mut done = 0usize;
    let mut busy = 0.0f64;
    loop {
        let cell = next.fetch_add(1, Ordering::Relaxed);
        if cell >= cells {
            return (done, busy);
        }
        let t = Instant::now();
        let r = run_cell(cell);
        busy += t.elapsed().as_secs_f64();
        done += 1;
        on_cell(cell, &r);
        if results[cell].set(r).is_err() {
            unreachable!("cell simulated twice");
        }
    }
}

/// Runs a benchmark list against one config via [`run_matrix`] (captured
/// traces are shared with any other sweep in the process), returning
/// `(name, stats)` in workload order.
pub fn run_suite<'w>(cfg: &MachineConfig, workloads: &'w [Workload]) -> Vec<(&'w str, SimStats)> {
    let row = run_matrix(std::slice::from_ref(cfg), workloads)
        .pop()
        .expect("one row");
    workloads.iter().map(Workload::name).zip(row).collect()
}

/// Builds the full integer suite at `scale`.
pub fn integer_suite(scale: Scale) -> Vec<Workload> {
    aurora_workloads::IntBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(scale))
        .collect()
}

/// Builds the full floating-point suite at `scale`.
pub fn fp_suite(scale: Scale) -> Vec<Workload> {
    aurora_workloads::FpBenchmark::ALL
        .into_iter()
        .map(|b| b.workload(scale))
        .collect()
}

/// Reads the scale from argv (`--scale test|small|full`), default small.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--scale" {
            return match pair[1].as_str() {
                "test" => Scale::Test,
                "small" => Scale::Small,
                "full" => Scale::Full,
                other => panic!("unknown scale `{other}` (use test|small|full)"),
            };
        }
    }
    Scale::Small
}

/// Whether a flag like `--ablation` is present on the command line.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// A minimal fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Formats a CPI value with three decimals.
pub fn cpi(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{IssueWidth, MachineModel};
    use aurora_mem::LatencyModel;
    use aurora_workloads::IntBenchmark;

    #[test]
    fn run_produces_stats() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Single, LatencyModel::Fixed(17));
        let w = IntBenchmark::Eqntott.workload(Scale::Test);
        let stats = run(&cfg, &w);
        assert!(stats.instructions > 10_000);
        assert!(stats.cpi() > 0.5);
    }

    #[test]
    fn drain_cells_returns_in_cell_order_and_fires_callback_per_cell() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        let (out, metrics) =
            drain_cells_timed(25, |i| i * i, |i, &r| seen.lock().unwrap().push((i, r)));
        assert_eq!(out, (0..25).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(metrics.cells, 25);
        assert_eq!(metrics.per_thread_cells.iter().sum::<usize>(), 25);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).map(|i| (i, i * i)).collect::<Vec<_>>());
        let (empty, m0) = drain_cells_timed(0, |_| 0u32, |_, _| {});
        assert!(empty.is_empty());
        assert_eq!(m0.threads, 0);
    }

    #[test]
    fn cached_replay_matches_streamed_run() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let w = IntBenchmark::Compress.workload(Scale::Test);
        assert_eq!(run_cached(&cfg, &w), run(&cfg, &w));
    }

    #[test]
    fn matrix_matches_individual_runs() {
        let configs = [
            MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17)),
            MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17)),
            MachineModel::Large.config(IssueWidth::Dual, LatencyModel::Fixed(17)),
        ];
        let workloads = [
            IntBenchmark::Espresso.workload(Scale::Test),
            IntBenchmark::Li.workload(Scale::Test),
        ];
        let grid = run_matrix(&configs, &workloads);
        assert_eq!(grid.len(), configs.len());
        for (cfg, row) in configs.iter().zip(&grid) {
            assert_eq!(row.len(), workloads.len());
            for (w, stats) in workloads.iter().zip(row) {
                assert_eq!(*stats, run(cfg, w), "{} mismatch", w.name());
            }
        }
    }

    #[test]
    fn timed_matrix_profiles_the_real_pool() {
        let configs = [
            MachineModel::Small.config(IssueWidth::Single, LatencyModel::Fixed(17)),
            MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17)),
        ];
        let workloads = [
            IntBenchmark::Espresso.workload(Scale::Test),
            IntBenchmark::Li.workload(Scale::Test),
        ];
        let (grid, m) = run_matrix_timed(&configs, &workloads);
        assert_eq!(grid, run_matrix(&configs, &workloads));
        assert_eq!(m.cells, configs.len() * workloads.len());
        assert_eq!(m.threads, sweep_threads(m.cells));
        assert_eq!(m.per_thread_cells.len(), m.threads);
        assert_eq!(m.per_thread_seconds.len(), m.threads);
        // Every cell is accounted to exactly one worker.
        assert_eq!(m.per_thread_cells.iter().sum::<usize>(), m.cells);
        // Busy time is real work: positive, and it cannot overlap more
        // than the pool allows.
        let busy: f64 = m.per_thread_seconds.iter().sum();
        assert!(busy > 0.0 && m.wall_seconds > 0.0);
        // Small slack for timer skew between the per-cell and wall clocks.
        let achieved = m.achieved_parallelism();
        assert!(achieved > 0.0 && achieved <= m.threads as f64 * 1.05);
        assert_eq!(m.per_thread_cells_per_sec().len(), m.threads);
    }

    #[test]
    fn empty_matrix_shapes() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        assert!(run_matrix(&[], &integer_suite(Scale::Test)).is_empty());
        let rows = run_matrix(std::slice::from_ref(&cfg), &[]);
        assert_eq!(rows, vec![Vec::new()]);
    }

    #[test]
    fn suite_results_keep_workload_order() {
        let cfg = MachineModel::Baseline.config(IssueWidth::Dual, LatencyModel::Fixed(17));
        let suite = [
            IntBenchmark::Sc.workload(Scale::Test),
            IntBenchmark::Compress.workload(Scale::Test),
        ];
        let results = run_suite(&cfg, &suite);
        assert_eq!(results[0].0, "sc");
        assert_eq!(results[1].0, "compress");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["model", "espresso", "li"]);
        t.row(["small", "1.23", "4.5"]);
        t.row(["baseline", "0.9", "10.01"]);
        let s = t.render();
        assert!(s.contains("model"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34");
        assert_eq!(cpi(1.23456), "1.235");
    }
}

/// Minimum, average and maximum CPI over a suite run (the Figure 4/5/7
/// vertical bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiRange {
    /// Lowest CPI in the suite.
    pub min: f64,
    /// Arithmetic mean CPI.
    pub avg: f64,
    /// Highest CPI in the suite.
    pub max: f64,
}

/// Summarises per-benchmark stats into a [`CpiRange`].
///
/// # Panics
///
/// Panics on an empty result set.
pub fn cpi_range(results: &[(&str, aurora_core::SimStats)]) -> CpiRange {
    assert!(!results.is_empty());
    let cpis: Vec<f64> = results.iter().map(|(_, s)| s.cpi()).collect();
    CpiRange {
        min: cpis.iter().copied().fold(f64::INFINITY, f64::min),
        avg: cpis.iter().sum::<f64>() / cpis.len() as f64,
        max: cpis.iter().copied().fold(0.0, f64::max),
    }
}
