//! `--fix`: mechanical rewrites for the pragma-hygiene rules.
//!
//! Only findings whose fix is purely syntactic are handled — L009 stale
//! pragmas (drop the dead rule id, or the whole pragma when none remain)
//! and the recoverable shapes of L000 malformed pragmas (missing `:`
//! before a reason, lowercase/unpadded rule ids). A malformed pragma with
//! no reason at all cannot be repaired — no tool can invent the
//! justification — so it is deleted; the underlying finding then
//! resurfaces un-suppressed, which is the honest state.

use std::collections::BTreeMap;
use std::path::Path;

use crate::Finding;

/// One planned line rewrite; `new: None` deletes the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineEdit {
    pub file: String,
    pub line: u32,
    pub old: String,
    pub new: Option<String>,
}

/// Plan fixes for the fixable findings (L000/L009). Non-mechanical rules
/// are ignored. Reads each affected file once.
pub fn plan(root: &Path, findings: &[Finding]) -> Result<Vec<LineEdit>, String> {
    // (file, line) -> (stale ids to drop, saw a malformed pragma).
    let mut sites: BTreeMap<(String, u32), (Vec<String>, bool)> = BTreeMap::new();
    for f in findings {
        match f.rule {
            "L009" => {
                if let Some(id) = stale_id(&f.msg) {
                    sites
                        .entry((f.file.clone(), f.line))
                        .or_default()
                        .0
                        .push(id);
                }
            }
            "L000" => sites.entry((f.file.clone(), f.line)).or_default().1 = true,
            _ => {}
        }
    }
    let mut edits = Vec::new();
    let mut cache: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for ((file, line), (stale, malformed)) in sites {
        if !cache.contains_key(&file) {
            let path = root.join(&file);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            cache.insert(file.clone(), text.lines().map(str::to_string).collect());
        }
        let lines = &cache[&file];
        let Some(old) = lines.get(line as usize - 1) else {
            continue;
        };
        if let Some(new) = fix_line(old, &stale, malformed) {
            edits.push(LineEdit {
                file,
                line,
                old: old.clone(),
                new,
            });
        }
    }
    Ok(edits)
}

/// The rule id an L009 message says is stale: the text inside
/// `lint:allow(...)` in the diagnostic.
fn stale_id(msg: &str) -> Option<String> {
    let at = msg.find("lint:allow(")?;
    let rest = &msg[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    Some(rest[..close].to_string())
}

/// Rewrite one source line carrying a pragma. Returns `None` when the
/// line needs no change, `Some(None)` to delete it, `Some(Some(new))` to
/// replace it.
fn fix_line(text: &str, stale: &[String], malformed: bool) -> Option<Option<String>> {
    let at = text.find("lint:allow")?;
    let comment_start = text[..at].rfind("//")?;
    let prefix = &text[..comment_start];
    let pragma = &text[at + "lint:allow".len()..];
    let drop_comment = || {
        if prefix.trim().is_empty() {
            Some(None)
        } else {
            Some(Some(prefix.trim_end().to_string()))
        }
    };
    // Parse `(ids) [:] reason`.
    let Some(rest) = pragma.trim_start().strip_prefix('(') else {
        return drop_comment();
    };
    let Some(close) = rest.find(')') else {
        return drop_comment();
    };
    let raw_ids: Vec<&str> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let mut ids = Vec::new();
    for raw in &raw_ids {
        match canonical_id(raw) {
            Some(id) => ids.push(id),
            // An id even canonicalization cannot read: drop the pragma.
            None => return drop_comment(),
        }
    }
    ids.retain(|id| !stale.contains(id));
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(':')
        .trim();
    if ids.is_empty() || reason.is_empty() {
        // Nothing left to allow, or nothing justifies it.
        return drop_comment();
    }
    let rebuilt = format!("{prefix}// lint:allow({}): {reason}", ids.join(", "));
    if rebuilt == text && !malformed {
        return None;
    }
    if rebuilt == text {
        // Malformed for a reason this rewriter does not model.
        return drop_comment();
    }
    Some(Some(rebuilt))
}

/// Canonicalize a rule id: `l2`/`L02` → `L002`. `None` when unreadable.
fn canonical_id(raw: &str) -> Option<String> {
    let digits = raw.strip_prefix(['L', 'l'])?;
    if digits.is_empty() || !digits.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let n: u32 = digits.parse().ok()?;
    Some(format!("L{n:03}"))
}

/// Apply planned edits in place. Returns the number of files rewritten.
pub fn apply(root: &Path, edits: &[LineEdit]) -> Result<usize, String> {
    let mut by_file: BTreeMap<&str, Vec<&LineEdit>> = BTreeMap::new();
    for e in edits {
        by_file.entry(&e.file).or_default().push(e);
    }
    for (file, file_edits) in &by_file {
        let path = root.join(file);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let had_trailing_newline = text.ends_with('\n');
        let mut lines: Vec<Option<String>> = text.lines().map(|l| Some(l.to_string())).collect();
        for e in file_edits {
            let slot = lines
                .get_mut(e.line as usize - 1)
                .ok_or_else(|| format!("{file}:{}: line out of range", e.line))?;
            if slot.as_deref() != Some(e.old.as_str()) {
                return Err(format!(
                    "{file}:{}: file changed since the fix was planned — re-run",
                    e.line
                ));
            }
            *slot = e.new.clone();
        }
        let mut out = lines.into_iter().flatten().collect::<Vec<_>>().join("\n");
        if had_trailing_newline {
            out.push('\n');
        }
        std::fs::write(&path, out).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(by_file.len())
}

/// The `--dry-run` view: a minimal `-old` / `+new` diff per edit.
pub fn render_diff(edits: &[LineEdit]) -> String {
    let mut out = String::new();
    for e in edits {
        out.push_str(&format!("--- {}:{}\n", e.file, e.line));
        out.push_str(&format!("-{}\n", e.old));
        if let Some(new) = &e.new {
            out.push_str(&format!("+{new}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_id_extraction() {
        assert_eq!(
            stale_id("stale pragma: `lint:allow(L003)` suppresses nothing — ...").as_deref(),
            Some("L003")
        );
        assert_eq!(stale_id("no pragma here"), None);
    }

    #[test]
    fn drops_one_stale_id_and_keeps_the_rest() {
        let got = fix_line(
            "    // lint:allow(L001, L002): bounded by warm-up",
            &["L002".to_string()],
            false,
        );
        assert_eq!(
            got,
            Some(Some(
                "    // lint:allow(L001): bounded by warm-up".to_string()
            ))
        );
    }

    #[test]
    fn deletes_a_fully_stale_standalone_pragma() {
        let got = fix_line(
            "// lint:allow(L001): bounded by warm-up",
            &["L001".to_string()],
            false,
        );
        assert_eq!(got, Some(None));
    }

    #[test]
    fn trailing_pragma_keeps_the_code() {
        let got = fix_line(
            "let v = xs.to_vec(); // lint:allow(L001): bounded",
            &["L001".to_string()],
            false,
        );
        assert_eq!(got, Some(Some("let v = xs.to_vec();".to_string())));
    }

    #[test]
    fn canonicalizes_malformed_ids_and_missing_colon() {
        let got = fix_line("// lint:allow(l1, L02) bounded by warm-up", &[], true);
        assert_eq!(
            got,
            Some(Some(
                "// lint:allow(L001, L002): bounded by warm-up".to_string()
            ))
        );
    }

    #[test]
    fn reasonless_pragma_is_deleted_not_invented() {
        assert_eq!(fix_line("// lint:allow(L001):", &[], true), Some(None));
        assert_eq!(fix_line("// lint:allow(L001)", &[], true), Some(None));
    }

    #[test]
    fn untouched_line_yields_no_edit() {
        assert_eq!(
            fix_line("// lint:allow(L001): fine as-is", &[], false),
            None
        );
    }
}
